#!/usr/bin/env python3
"""Whole-program concurrency and layering analyzer.

`tools/sttr_lint.py` enforces single-file invariants; Clang's
`-Wthread-safety` proves, per translation unit, that every GUARDED_BY field
is touched under its mutex. Neither sees *cross-TU* properties: the order
locks are taken across files, blocking work performed while a lock is held,
or an include slipping upward through the layering. This analyzer builds a
lightweight whole-program model of src/ (functions, lock scopes, call graph,
include graph) and gates four properties at build time:

  lock-order           Build the global acquired-while-held graph over every
                       sttr::Mutex in the tree (MutexLock scopes, explicit
                       Lock/Unlock pairs, REQUIRES entry capabilities,
                       propagated through resolvable calls). Any cycle is a
                       potential deadlock and fails the run. The blessed
                       order is dumpable via --dump-graph.
  blocking-under-lock  A blocking operation — sttr::net::* syscall wrappers,
                       Env file IO, raw ::poll/::send/..., sleeps,
                       future/thread waits — reached while holding a mutex
                       in src/serve/ or src/stream/ stalls every thread
                       queued on that mutex. Flagged transitively: a call
                       chain from a lock scope to a blocking primitive is
                       reported with the chain.
  alloc-under-lock     Explicit heap allocation (new / make_unique /
                       make_shared) inside a lock scope in src/serve/ or
                       src/stream/ — the static complement of the runtime
                       alloc_hook counters the zero-alloc tests assert on.
                       (Container growth is deliberately out of scope; the
                       runtime counters own that.)
  layering             #include edges between src/ subdirectories must
                       follow the blessed DAG (util at the bottom, serve at
                       the top; see LAYERS below) and the file-level include
                       graph must be acyclic everywhere in src/.
  status-discipline    sttr::Status / StatusOr are declared [[nodiscard]]
                       and no statement discards a Status-returning call's
                       result — an ignored Status is an error path that
                       silently never happens.

Waivers mirror the NO_THREAD_SAFETY_ANALYSIS policy: a one-line
justification comment, on the offending line or the line above:

    // sttr-analyze: allow-blocking: bounded 1ms sleep; poller-only thread
    // sttr-analyze: allow-alloc: cold path, runs once per reload
    // sttr-analyze: allow-discard: best-effort cleanup, failure is benign
    // sttr-analyze: allow-layering: <why this include is sound>

Lock-order waivers name the edge (either endpoint class-qualified), and may
sit at any acquisition site involved in the cycle:

    // sttr-analyze: allow-lock-order(A::mu_ -> B::mu_): <why no deadlock>

A waiver with an empty justification is itself a violation. Registered as
the tier-1 ctests `sttr_analyze` (the real tree) and
`sttr_analyze_selftest` (fixture trees under tests/lint_fixtures/analyze/,
one per check x pass/fail/waiver). See tools/README.md.

Honest limits (documented, not hidden): the model is built from stripped
source text, not a compiler AST. Calls through std::function, virtual
dispatch, and lambdas handed across threads are not traced; an edge the
analyzer cannot see is an edge it cannot check. The codebase convention
that makes this sound in practice: callbacks are invoked with locks
dropped (see ModelBundle::Swap), which is itself what the blocking check
pushes code toward.
"""

import json
import os
import re
import sys
from collections import defaultdict

# Reuse the comment/string stripper (raw strings, digit separators) so both
# tools agree on what is code.
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from sttr_lint import strip_comments_and_strings  # noqa: E402

CHECKS = {
    "lock-order": "cycle in the global acquired-while-held mutex graph",
    "blocking-under-lock":
        "blocking call reachable inside a lock scope in src/serve|src/stream",
    "alloc-under-lock":
        "explicit heap allocation inside a lock scope in src/serve|src/stream",
    "layering": "include edge violating the blessed src/ layering DAG",
    "status-discipline":
        "Status not [[nodiscard]] or a call site discarding a Status result",
    "waiver-syntax": "malformed or unjustified sttr-analyze waiver comment",
}

# -- Blessed layering DAG ---------------------------------------------------------
# Direct dependencies each src/ subdirectory may include from; the allowed
# set is the transitive closure (depending on a lower layer's foundation is
# always fine). The README appendix renders this same table.
LAYERS = {
    "util": [],
    "tensor": ["util"],
    "text": ["util"],
    "geo": ["util"],
    "autograd": ["tensor"],
    "nn": ["autograd"],
    "transfer": ["autograd"],
    "data": ["geo", "text"],
    "eval": ["data"],
    "core": ["nn", "eval", "transfer"],
    "stream": ["core"],
    "baselines": ["core"],
    "serve": ["core", "stream"],
}

# Calls whose *name* alone marks them blocking. Env's file-IO method names
# are distinctive enough to match bare; CondVar::Wait* is deliberately
# absent (a condvar wait releases the lock — that is the fix this check
# pushes sleep loops toward).
BLOCKING_NAMES = {
    # sttr::net syscall wrappers (and their raw forms, should one slip past
    # sttr_lint's raw-socket rule).
    "Send", "Recv", "Connect", "Poll",
    "poll", "select", "accept", "accept4", "connect", "send", "recv",
    "sendto", "recvfrom", "epoll_wait",
    # Sleeps and condvar-free waits.
    "sleep_for", "sleep_until", "usleep", "nanosleep",
    # Env / fs.h file IO (util/fs.h).
    "WriteFile", "ReadFile", "Fsync", "Rename", "Remove", "CreateDir",
    "ListDir", "SyncDir", "AtomicWriteFile",
}
# These only block when the receiver is what they look like; gated on the
# resolved receiver type mentioning the std vocabulary type.
RECEIVER_BLOCKING = {
    "get": "future",
    "wait": "future",
    "join": "thread",
}
# Names in BLOCKING_NAMES that are safe when *not* called on the blocking
# vocabulary (e.g. a container's own Remove). Kept empty: the names above
# were chosen to not collide in this tree; a collision should be waived
# with a justification, not silently dropped.

ALLOC_RE = re.compile(
    r"(?<![\w:])new\b(?!\s*\()|"        # new T / new T[n] (not operator new())
    r"(?<![\w:])new\s*\(|"              # new (std::nothrow) T
    r"\bmake_shared\s*<|\bmake_unique\s*<")

WAIVER_RE = re.compile(
    r"sttr-analyze:\s*allow-([\w-]+)\s*(?:\(([^)]*)\))?\s*:?\s*(.*)")

CALL_RE = re.compile(r"((?:[A-Za-z_]\w*(?:\.|->|::)|\(\)\.|\]\.)*)"
                     r"([A-Za-z_]\w*)\s*\(")
CALL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "new", "delete", "throw", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "defined", "assert", "decltype", "noexcept",
    "static_assert", "alignas", "co_await", "co_return", "co_yield",
}

# ':' is a boundary too: access specifiers (`private:`) end without ';', so
# the first declaration after one would otherwise hide inside the label.
MUTEX_DECL_RE = re.compile(
    r"(?:^|[;{}:])\s*(?:mutable\s+)?(?:sttr::)?Mutex\s+(\w+)"
    r"\s*(?:\[\s*\d*\s*\])?\s*(?:GUARDED_BY\s*\([^)]*\))?\s*[;=]")

ANNOT_RE = re.compile(r"\b(REQUIRES|ACQUIRE|RELEASE|EXCLUDES)\s*\(([^()]*)\)")

MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*[({]\s*([^(){}]+?)\s*[)}]")
EXPLICIT_LOCK_RE = re.compile(
    r"([A-Za-z_][\w\.\[\]>-]*?)\s*(?:\.|->)\s*(Lock|Unlock|TryLock)\s*\(\s*\)")

LOCAL_DECL_RE = re.compile(
    r"(?:^|[;{}()])\s*(?:const\s+)?([A-Z]\w*(?:::\w+)*)\s*[&*]?\s+"
    r"(\w+)\s*[=({;]")

MEMBER_DECL_RE = re.compile(
    r"(?:^|[;{}:])\s*(?:mutable\s+|static\s+|const\s+|constexpr\s+)*"
    r"([A-Za-z_][\w:<>,\s*&]*?)\s+([a-z_]\w*)\s*"
    r"(?:\[\s*\d*\s*\])?\s*(?:GUARDED_BY\s*\([^)]*\)\s*)?(?:=[^;]*|\{[^;{}]*\})?;")

STATUS_RETURN_RE = re.compile(r"\b(?:sttr::)?(Status|StatusOr\s*<)")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)


class Finding:
    def __init__(self, check, path, line, text):
        self.check = check
        self.path = path
        self.line = line
        self.text = text

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.text}"


class Waiver:
    """One `// sttr-analyze: allow-<check>...` comment and its anchor."""

    def __init__(self, check, arg, why, path, line):
        self.check = check
        self.arg = arg        # edge spec for lock-order, else ""
        self.why = why
        self.path = path
        self.line = line      # the waiver covers this line and the next
        self.used = False


class Function:
    def __init__(self, qual, cls, name, path, sig, body, body_line):
        self.qual = qual          # e.g. "ModelBundle::ApplyDeltaIfNewer"
        self.cls = cls            # enclosing class qual name or ""
        self.name = name
        self.path = path          # repo-relative
        self.sig = sig            # signature text (for annotations/params)
        self.body = body          # stripped body text, braces included
        self.body_line = body_line  # 1-based line of the opening brace
        self.requires = []        # mutex exprs from REQUIRES(...)
        self.calls = []           # (recv_chain, name, line)
        self.acquire_events = []  # ordered scan events, filled by ScanBody
        self.summary_acquires = set()   # mutex nodes acquired inside (any depth)
        self.summary_blocking = {}      # primitive -> shortest chain (list of quals)


class Class:
    def __init__(self, qual, path):
        self.qual = qual
        self.path = path
        self.mutexes = []         # member names
        self.members = {}         # member name -> type string
        self.method_sigs = {}     # method name -> sig text (for REQUIRES)
        self.method_returns = {}  # method name -> return text


class Model:
    """Whole-program model: classes, functions, mutex nodes, includes."""

    def __init__(self):
        self.classes = {}             # qual -> Class
        self.short_classes = defaultdict(list)  # short name -> [qual]
        self.functions = []           # Function
        self.funcs_by_name = defaultdict(list)  # bare name -> [Function]
        self.funcs_by_qual = defaultdict(list)  # qual -> [Function]
        self.mutex_owner = defaultdict(list)    # member name -> [class qual]
        self.includes = {}            # rel path -> [included rel paths]
        self.waivers = []             # Waiver
        self.free_status_fns = set()  # bare names of Status-returning free fns
        self.status_methods = defaultdict(set)  # class qual -> {method}
        self.status_name_votes = defaultdict(lambda: [0, 0])  # name -> [status, other]
        self.raw_lines = {}           # rel path -> raw source lines


# -- Pass 1: scope walk -----------------------------------------------------------

SCOPE_CLASS_RE = re.compile(r"\b(class|struct)\b")
NAME_TOKEN_RE = re.compile(r"[A-Za-z_]\w*(?:::~?\w+)*")


def _head_kind(head, scope_kind):
    """Classifies the construct a `{` opens, from the text since the last
    `;`/`{`/`}` (`head`). Only called at namespace/class scope."""
    h = head.strip()
    if h.startswith("namespace") or h == "extern":
        return "namespace"
    if re.search(r"\b(enum)\b", h):
        return "skip"
    # Strip a template intro so `template <...> class Foo` classifies right.
    h = re.sub(r"^template\s*<[^{}]*?>", "", h, count=1).strip()
    if re.match(r"(class|struct|union)\b", h):
        # A declaration like `struct Foo* p = ...` never opens a brace at
        # this scope in this codebase; treat as a type definition.
        return "class"
    if "(" in h:
        return "function"
    if h.endswith("=") or h == "":
        return "skip"
    return "skip"  # brace-init member / array initializer


def _class_name(head):
    h = re.sub(r"^template\s*<[^{}]*?>", "", head.strip(), count=1).strip()
    # Cut the base-clause at a top-level single ':' (ignore '::').
    depth = 0
    for i, c in enumerate(h):
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth -= 1
        elif (c == ":" and depth == 0 and
              (i + 1 >= len(h) or h[i + 1] != ":") and
              (i == 0 or h[i - 1] != ":")):
            h = h[:i]
            break
    names = NAME_TOKEN_RE.findall(h)
    names = [n for n in names
             if n not in ("class", "struct", "union", "final", "public",
                          "private", "protected", "typename")]
    return names[-1] if names else ""


def _function_name(head):
    """Name of the function a head defines, or "" when unparsable."""
    h = head.strip()
    h = re.sub(r"\[\[[^\]]*\]\]", "", h)
    h = re.sub(r"^template\s*<[^{}]*?>", "", h, count=1).strip()
    # The defining paren is the first '(' OUTSIDE template angle brackets —
    # a return type like std::vector<std::function<void(...)>> carries
    # parens of its own. Operators (operator<, operator()) would confuse
    # the angle tracking; none in this tree return templated types, so they
    # take the plain first-paren path.
    i = -1
    if "operator" in h:
        i = h.find("(")
    else:
        angle = 0
        for j, c in enumerate(h):
            if c == "<":
                angle += 1
            elif c == ">":
                angle = max(0, angle - 1)
            elif c == "(" and angle == 0:
                i = j
                break
    if i < 0:
        return ""
    pre = h[:i].rstrip()
    m = re.search(r"((?:~?\w+::)*~?(?:operator\s*[^\s\w]{0,3}|\w+))\s*$", pre)
    if not m:
        return ""
    return m.group(1)


def _line_of(text, pos):
    return text.count("\n", 0, pos) + 1


PREPROC_RE = re.compile(r"^[ \t]*#[^\n]*(?:\\\n[^\n]*)*", re.MULTILINE)


def _blank_preprocessor(text):
    """Preprocessor lines carry no scope but also no terminating ';', so
    they would otherwise pollute the next brace's head; blank them (keeping
    newlines so line numbers survive)."""
    def repl(m):
        return re.sub(r"[^\n]", " ", m.group(0))
    return PREPROC_RE.sub(repl, text)


def parse_file(model, rel, raw):
    stripped = _blank_preprocessor(strip_comments_and_strings(raw))
    model.raw_lines[rel] = raw.splitlines()
    model.includes[rel] = INCLUDE_RE.findall(raw)
    collect_waivers(model, rel, raw)

    n = len(stripped)
    scope = [("namespace", "", None)]  # (kind, name, Class or None)
    head_start = 0
    i = 0
    while i < n:
        c = stripped[i]
        if c in ";":
            handle_statement(model, scope, stripped[head_start:i + 1], rel)
            head_start = i + 1
        elif c == "}":
            scope_kind = scope[-1][0] if scope else "namespace"
            if len(scope) > 1:
                scope.pop()
            head_start = i + 1
        elif c == "{":
            head = stripped[head_start:i]
            kind = _head_kind(head, scope[-1][0])
            if kind == "namespace":
                names = NAME_TOKEN_RE.findall(head)
                names = [x for x in names if x not in ("namespace", "extern")]
                nm = names[-1] if names else ""
                scope.append(("namespace", nm, None))
                head_start = i + 1
            elif kind == "class":
                name = _class_name(head)
                qual = "::".join([s[1] for s in scope[1:] if s[0] == "class"]
                                 + [name])
                cls = model.classes.get(qual)
                if cls is None:
                    cls = Class(qual, rel)
                    model.classes[qual] = cls
                    model.short_classes[name].append(qual)
                scope.append(("class", name, cls))
                head_start = i + 1
            elif kind == "function":
                end = _match_brace(stripped, i)
                body = stripped[i:end + 1]
                name = _function_name(head)
                register_function(model, scope, rel, head, name, body,
                                  _line_of(stripped, i))
                i = end
                head_start = i + 1
            else:  # skip: enum / brace-init / array initializer
                end = _match_brace(stripped, i)
                i = end
                head_start = i + 1
        i += 1


def _match_brace(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def handle_statement(model, scope, stmt, rel):
    """Member/method declarations inside a class body (no brace opened)."""
    kind, _name, cls = scope[-1]
    if kind != "class" or cls is None:
        # Free-function declarations at namespace scope still vote on
        # Status-returning names.
        m = re.search(r"(\w+)\s*\([^;]*\)\s*(?:REQUIRES\s*\([^)]*\)\s*)?;",
                      stmt)
        if m and not stmt.strip().startswith("#"):
            ret = stmt[:stmt.find(m.group(1))]
            vote_status(model, None, m.group(1), ret)
        return
    for dm in MUTEX_DECL_RE.finditer(stmt):
        if dm.group(1) not in cls.mutexes:
            cls.mutexes.append(dm.group(1))
            model.mutex_owner[dm.group(1)].append(cls.qual)
    # Method declaration: `Ret Name(args) [const] [annotations];`
    mm = re.search(r"(~?\w+)\s*\(", stmt)
    if mm is not None:
        name = mm.group(1)
        ret = stmt[:mm.start()].strip()
        cls.method_sigs.setdefault(name, stmt)
        cls.method_returns.setdefault(name, ret)
        vote_status(model, cls, name, ret)
    # Data member: type + name.
    for dm in MEMBER_DECL_RE.finditer(stmt):
        type_str, member = dm.group(1), dm.group(2)
        if member not in cls.members and "(" not in type_str:
            cls.members[member] = type_str


def vote_status(model, cls, name, ret):
    if not ret or name in ("if", "while", "for", "switch", "return"):
        return
    is_status = bool(STATUS_RETURN_RE.search(ret))
    votes = model.status_name_votes[name]
    votes[0 if is_status else 1] += 1
    if is_status and cls is not None:
        model.status_methods[cls.qual].add(name)
    elif is_status:
        model.free_status_fns.add(name)


LAMBDA_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\))?\s*(?:mutable\b\s*)?"
    r"(?:noexcept\b\s*)?(?:->\s*[\w:<>&*\s]+?)?\s*\{")


def _extract_lambdas(model, fn):
    """Lambdas in this codebase are deferred bodies — thread entry points
    and callbacks invoked with locks dropped — so a lock held where the
    lambda is *written* is not held where it *runs*. Split each lambda body
    out as its own anonymous function (same class context, empty entry held
    set) and blank it from the parent so the parent's scan does not charge
    the enclosing lock scope for the lambda's work. The cost, documented in
    the module docstring: an immediately-invoked lambda under a lock is not
    charged either."""
    out = []
    body = fn.body
    while True:
        m = LAMBDA_RE.search(body)
        if m is None:
            break
        open_pos = m.end() - 1
        close = _match_brace(body, open_pos)
        inner = body[open_pos:close + 1]
        line = fn.body_line + body.count("\n", 0, open_pos)
        child = Function(f"{fn.qual}::<lambda:{line}>", fn.cls,
                         f"<lambda:{line}>", fn.path, "", inner, line)
        out.append(child)
        blanked = re.sub(r"[^\n]", " ", body[m.start():close + 1])
        body = body[:m.start()] + blanked + body[close + 1:]
    fn.body = body
    for child in out:
        grand = _extract_lambdas(model, child)
        model.functions.append(child)
        model.functions.extend(grand)
    return out


def register_function(model, scope, rel, head, name, body, body_line):
    cls_quals = [s[1] for s in scope[1:] if s[0] == "class"]
    cls = "::".join(cls_quals)
    # Qualified definitions out of line: `void ModelBundle::Stop() {`.
    if "::" in name:
        parts = name.split("::")
        name = parts[-1]
        cls = "::".join(parts[:-1]) if not cls else cls + "::" + \
            "::".join(parts[:-1])
    qual = (cls + "::" + name) if cls else name
    fn = Function(qual, cls, name, rel, head, body, body_line)
    for am in ANNOT_RE.finditer(head):
        if am.group(1) == "REQUIRES":
            fn.requires = [a.strip() for a in am.group(2).split(",")
                           if a.strip() and a.strip() != "!"]
    model.functions.append(fn)
    model.funcs_by_name[name].append(fn)
    model.funcs_by_qual[qual].append(fn)
    _extract_lambdas(model, fn)
    # Inline definitions in a class body also declare the method.
    if cls and cls in model.classes:
        c = model.classes[cls]
        c.method_sigs.setdefault(name, head)
        paren = head.find("(")
        pre = head[:paren] if paren > 0 else ""
        ret = pre.rstrip()
        ret = ret[:ret.rfind(name)] if name in ret else ret
        c.method_returns.setdefault(name, ret)
        vote_status(model, c, name, ret)
    else:
        paren = head.find("(")
        if paren > 0 and "::" not in head[:paren].rstrip().split()[-1:][0:1]:
            pass
        vote_status(model, None, name, head[:head.find(name)]
                    if name in head else "")


def collect_waivers(model, rel, raw):
    for lineno, line in enumerate(raw.splitlines(), start=1):
        m = WAIVER_RE.search(line)
        if m is None:
            continue
        check, arg, why = m.group(1), m.group(2) or "", m.group(3).strip()
        model.waivers.append(Waiver("allow-" + check
                                    if not check.startswith("allow-")
                                    else check, arg, why, rel, lineno))


# -- Mutex / call resolution ------------------------------------------------------

def resolve_mutex(model, fn, expr):
    """Resolves a lock expression to a node "Class::member" (or None)."""
    expr = expr.strip()
    parts = re.split(r"\.|->", expr)
    parts = [re.sub(r"\[.*?\]|\(\)", "", p).strip() for p in parts if p.strip()]
    if not parts:
        return None
    leaf = parts[-1]
    if len(parts) == 1:
        # Plain member of the enclosing class chain, innermost first.
        cls = fn.cls
        while cls:
            c = model.classes.get(cls)
            if c is not None and leaf in c.mutexes:
                return f"{cls}::{leaf}"
            cls = cls.rsplit("::", 1)[0] if "::" in cls else ""
        owners = model.mutex_owner.get(leaf, [])
        if len(owners) == 1:
            return f"{owners[0]}::{leaf}"
        if not owners:
            # A local/global Mutex (fixtures); key it by file for stability.
            return f"{os.path.basename(fn.path)}::{leaf}"
        return None
    # obj.member / obj->member: resolve obj's type, then the member.
    base = parts[0]
    type_cls = resolve_var_type(model, fn, base)
    if type_cls is not None:
        c = model.classes.get(type_cls)
        if c is not None and leaf in c.mutexes:
            return f"{type_cls}::{leaf}"
    owners = model.mutex_owner.get(leaf, [])
    if len(owners) == 1:
        return f"{owners[0]}::{leaf}"
    return None


def resolve_var_type(model, fn, var):
    """Type (class qual) of `var` in fn: locals/params first, then members."""
    for m in LOCAL_DECL_RE.finditer(fn.body):
        if m.group(2) == var:
            t = class_by_short(model, fn, m.group(1))
            if t:
                return t
    for m in LOCAL_DECL_RE.finditer(fn.sig):
        if m.group(2) == var:
            t = class_by_short(model, fn, m.group(1))
            if t:
                return t
    cls = fn.cls
    while cls:
        c = model.classes.get(cls)
        if c is not None and var in c.members:
            return type_to_class(model, fn, c.members[var])
        cls = cls.rsplit("::", 1)[0] if "::" in cls else ""
    return None


def type_to_class(model, fn, type_str):
    """Best-effort: the unique known class named inside a member's type."""
    hits = []
    for tok in NAME_TOKEN_RE.findall(type_str):
        short = tok.rsplit("::", 1)[-1]
        q = class_by_short(model, fn, short)
        if q and q not in hits:
            hits.append(q)
    return hits[0] if len(hits) == 1 else (hits[-1] if hits else None)


def class_by_short(model, fn, short):
    short = short.rsplit("::", 1)[-1]
    cands = model.short_classes.get(short, [])
    if not cands:
        return None
    if len(cands) == 1:
        return cands[0]
    # Prefer a class nested in (or equal to) the enclosing class chain.
    cls = fn.cls
    while cls:
        for q in cands:
            if q == cls or q.startswith(cls + "::"):
                return q
        cls = cls.rsplit("::", 1)[0] if "::" in cls else ""
    return cands[0]


def resolve_call(model, fn, chain, name):
    """Candidate Functions for a call site, or [] when unresolvable."""
    chain = chain.rstrip()
    if chain.endswith("::") and not chain.endswith("std::"):
        qual = chain[:-2].rsplit("::", 1)[-1] + "::" + name
        # Try full qual, then short-class qual.
        if qual in model.funcs_by_qual:
            return model.funcs_by_qual[qual]
        short = chain[:-2].rsplit("::", 1)[-1]
        q = class_by_short(model, fn, short)
        if q and (q + "::" + name) in model.funcs_by_qual:
            return model.funcs_by_qual[q + "::" + name]
        cands = model.funcs_by_name.get(name, [])
        return [f for f in cands if f.cls.endswith(short)] if cands else []
    if chain.endswith(".") or chain.endswith("->"):
        base = re.sub(r"\.$|->$", "", chain)
        base = re.split(r"\.|->", base)[-1]
        base = re.sub(r"\[.*?\]|\(\)", "", base).strip()
        t = resolve_var_type(model, fn, base) if base else None
        if t:
            while t:
                if (t + "::" + name) in model.funcs_by_qual:
                    return model.funcs_by_qual[t + "::" + name]
                t = t.rsplit("::", 1)[0] if "::" in t else ""
        return []
    # Unqualified: method of the enclosing class chain, else a unique free
    # function. Never a cross-class name union (false cycles beat coverage).
    cls = fn.cls
    while cls:
        if (cls + "::" + name) in model.funcs_by_qual:
            return model.funcs_by_qual[cls + "::" + name]
        cls = cls.rsplit("::", 1)[0] if "::" in cls else ""
    cands = model.funcs_by_name.get(name, [])
    free = [f for f in cands if not f.cls]
    if len(free) == 1:
        return free
    if len({f.qual for f in cands}) == 1:
        return cands
    return []


# -- Pass 2: body scan ------------------------------------------------------------

class Acquire:
    def __init__(self, node, depth, line, raii):
        self.node = node
        self.depth = depth   # brace depth at the MutexLock declaration
        self.line = line
        self.raii = raii


def scan_body(model, fn):
    """Linear scan of one body: lock scopes, calls, allocs, primitives.

    Produces fn.events: ordered list of
      ("acquire", node, line) / ("release", node, line)
      ("call", chain, name, line, held: tuple of nodes)
      ("alloc", line, held)
    Linear (control flow ignored): in this codebase explicit Lock/Unlock
    pairs bracket straight-line sections, which a linear scan tracks
    exactly; RAII scopes are tracked by brace depth.
    """
    body = fn.body
    base_line = fn.body_line
    held = []  # Acquire, in acquisition order
    events = []
    depth = 0
    consumed = set()  # char positions already claimed by a specific matcher

    # Pre-index interesting positions.
    marks = []
    for m in MUTEXLOCK_RE.finditer(body):
        marks.append((m.start(), "raii", m))
        consumed.add(m.start())
    for m in EXPLICIT_LOCK_RE.finditer(body):
        marks.append((m.start(), "explicit", m))
    for m in CALL_RE.finditer(body):
        marks.append((m.start(), "call", m))
    for m in ALLOC_RE.finditer(body):
        marks.append((m.start(), "alloc", m))
    for i, ch in enumerate(body):
        if ch == "{":
            marks.append((i, "open", None))
        elif ch == "}":
            marks.append((i, "close", None))
    marks.sort(key=lambda t: (t[0], 0 if t[1] in ("open", "close") else 1))

    for pos, kind, m in marks:
        line = base_line + body.count("\n", 0, pos)
        if kind == "open":
            depth += 1
        elif kind == "close":
            depth -= 1
            still = []
            for a in held:
                if a.raii and a.depth > depth:
                    events.append(("release", a.node, line))
                else:
                    still.append(a)
            held = still
        elif kind == "raii":
            node = resolve_mutex(model, fn, m.group(1))
            if node is not None:
                held.append(Acquire(node, depth, line, raii=True))
                events.append(("acquire", node, line))
        elif kind == "explicit":
            node = resolve_mutex(model, fn, m.group(1))
            if node is None:
                continue
            op = m.group(2)
            if op in ("Lock", "TryLock"):
                held.append(Acquire(node, depth, line, raii=False))
                events.append(("acquire", node, line))
            else:
                for i in range(len(held) - 1, -1, -1):
                    if held[i].node == node:
                        del held[i]
                        break
                events.append(("release", node, line))
        elif kind == "call":
            chain, name = m.group(1), m.group(2)
            if name in CALL_KEYWORDS or m.start() in consumed:
                continue
            if name in ("Lock", "Unlock", "TryLock") and chain:
                continue  # handled by the explicit matcher
            events.append(("call", chain, name, line,
                           tuple(a.node for a in held)))
        elif kind == "alloc":
            events.append(("alloc", line, tuple(a.node for a in held)))
    fn.events = events


# -- Pass 3: summaries (fixpoint) -------------------------------------------------

def is_blocking_call(model, fn, chain, name):
    """(primitive-description or None) for a direct call site."""
    if name in BLOCKING_NAMES:
        # CondVar waits and stats counters never collide with these names;
        # `Send`/`Recv`/`Connect`/`Poll` are the net:: wrappers or raw
        # syscalls either way.
        return f"{chain}{name}()"
    if name in RECEIVER_BLOCKING:
        want = RECEIVER_BLOCKING[name]
        base = re.split(r"\.|->", chain.rstrip(".->"))[-1] if chain else ""
        base = re.sub(r"\[.*?\]|\(\)", "", base).strip()
        type_str = find_var_type_string(model, fn, base) if base else ""
        if want in type_str:
            return f"{chain}{name}() [{want}]"
    return None


def find_var_type_string(model, fn, var):
    for m in LOCAL_DECL_RE.finditer(fn.body):
        if m.group(2) == var:
            return m.group(1)
    for m in re.finditer(r"([\w:<>]+)\s*[&*]?\s+(\w+)\s*[,)=;({]", fn.sig):
        if m.group(2) == var:
            return m.group(1)
    cls = fn.cls
    while cls:
        c = model.classes.get(cls)
        if c is not None and var in c.members:
            return c.members[var]
        cls = cls.rsplit("::", 1)[0] if "::" in cls else ""
    # std::thread locals are declared `std::thread to_join;` — covered by
    # LOCAL_DECL_RE only when initialized; retry plain declarations.
    m = re.search(r"([\w:<>]+)\s+" + re.escape(var) + r"\s*;", fn.body)
    return m.group(1) if m else ""


def compute_summaries(model):
    changed = True
    rounds = 0
    while changed and rounds < 50:
        changed = False
        rounds += 1
        for fn in model.functions:
            for ev in fn.events:
                if ev[0] == "acquire":
                    node = ev[1]
                    if node not in fn.summary_acquires and \
                            node not in requires_nodes(model, fn):
                        fn.summary_acquires.add(node)
                        changed = True
                elif ev[0] == "call":
                    _, chain, name, line, _held = ev
                    prim = is_blocking_call(model, fn, chain, name)
                    if prim is not None and prim not in fn.summary_blocking:
                        fn.summary_blocking[prim] = [fn.qual]
                        changed = True
                    for callee in resolve_call(model, fn, chain, name):
                        for node in callee.summary_acquires:
                            if node not in fn.summary_acquires and \
                                    node not in requires_nodes(model, fn):
                                fn.summary_acquires.add(node)
                                changed = True
                        for prim, via in callee.summary_blocking.items():
                            if prim not in fn.summary_blocking and \
                                    len(via) < 6:
                                fn.summary_blocking[prim] = [fn.qual] + via
                                changed = True


def requires_nodes(model, fn):
    nodes = set()
    # REQUIRES annotations live on the declaration (header); merge them in.
    reqs = list(fn.requires)
    c = model.classes.get(fn.cls)
    if c is not None and fn.name in c.method_sigs:
        for am in ANNOT_RE.finditer(c.method_sigs[fn.name]):
            if am.group(1) == "REQUIRES":
                reqs.extend(a.strip() for a in am.group(2).split(",")
                            if a.strip())
    for expr in reqs:
        node = resolve_mutex(model, fn, expr)
        if node is not None:
            nodes.add(node)
    return nodes


# -- Checks -----------------------------------------------------------------------

def line_is_waived(model, check, path, line):
    for w in model.waivers:
        if w.path == path and w.check == "allow-" + check and \
                w.line in (line, line - 1):
            if not w.why:
                continue  # unjustified waivers never waive anything
            w.used = True
            return True
    return False


def edge_waived(model, a, b):
    spec = None
    for w in model.waivers:
        if w.check != "allow-lock-order" or not w.arg or not w.why:
            continue
        m = re.match(r"\s*(\S+)\s*->\s*(\S+)\s*$", w.arg)
        if m is None:
            continue
        if node_matches(m.group(1), a) and node_matches(m.group(2), b):
            w.used = True
            return True
        spec = w
    _ = spec
    return False


def node_matches(pat, node):
    return node == pat or node.endswith("::" + pat) or \
        node.rsplit("::", 1)[-1] == pat.rsplit("::", 1)[-1] and \
        pat.rsplit("::", 1)[0] in node


def check_lock_order(model, findings, dump=None):
    edges = {}    # (a, b) -> (path, line, note)
    waived = []
    for fn in model.functions:
        entry = tuple(sorted(requires_nodes(model, fn)))
        held_map_events(model, fn, entry, edges, waived)
    graph = defaultdict(set)
    for (a, b) in edges:
        graph[a].add(b)
    if dump is not None:
        dump["nodes"] = sorted({n for e in edges for n in e} |
                               {n for e in waived for n in e[0]})
        dump["edges"] = [
            {"from": a, "to": b, "site": f"{p}:{ln}", "note": note}
            for (a, b), (p, ln, note) in sorted(edges.items())]
        dump["waived_edges"] = [
            {"from": a, "to": b, "site": f"{p}:{ln}"}
            for (a, b), (p, ln) in sorted(
                {(e, (p, ln)) for e, p, ln in waived})]
    # Cycle detection (iterative DFS, reporting one representative cycle).
    color = {}
    stack_path = []

    def dfs(u):
        color[u] = 1
        stack_path.append(u)
        for v in sorted(graph.get(u, ())):
            if color.get(v, 0) == 0:
                cyc = dfs(v)
                if cyc:
                    return cyc
            elif color.get(v) == 1:
                return stack_path[stack_path.index(v):] + [v]
        stack_path.pop()
        color[u] = 2
        return None

    for node in sorted(graph):
        if color.get(node, 0) == 0:
            cyc = dfs(node)
            if cyc:
                sites = []
                for a, b in zip(cyc, cyc[1:]):
                    p, ln, note = edges[(a, b)]
                    sites.append(f"    {a} -> {b}  at {p}:{ln}  ({note})")
                first = edges[(cyc[0], cyc[1])]
                findings.append(Finding(
                    "lock-order", first[0], first[1],
                    "potential deadlock: lock-order cycle\n" +
                    "\n".join(sites) +
                    "\n    (waive a deliberately-ordered edge with "
                    "// sttr-analyze: allow-lock-order(A -> B): <why>)"))
                return  # one cycle per run keeps the report readable


def held_map_events(model, fn, entry, edges, waived):
    held = list(entry)
    for ev in fn.events:
        if ev[0] == "acquire":
            node, line = ev[1], ev[2]
            for h in held:
                if h == node:
                    continue
                record_edge(model, edges, waived, h, node, fn.path, line,
                            f"in {fn.qual}")
            held.append(node)
        elif ev[0] == "release":
            node = ev[1]
            if node in held:
                held.remove(node)
        elif ev[0] == "call":
            _, chain, name, line, held_at = ev
            context = set(entry) | set(held_at)
            if not context:
                continue
            for callee in resolve_call(model, fn, chain, name):
                for node in sorted(callee.summary_acquires):
                    for h in context:
                        if h == node:
                            continue
                        record_edge(model, edges, waived, h, node, fn.path,
                                    line,
                                    f"{fn.qual} -> {callee.qual}")


def record_edge(model, edges, waived, a, b, path, line, note):
    if edge_waived(model, a, b):
        waived.append(((a, b), path, line))
        return
    edges.setdefault((a, b), (path, line, note))


def check_blocking(model, findings):
    for fn in model.functions:
        if not (fn.path.startswith("src/serve/") or
                fn.path.startswith("src/stream/")):
            continue
        entry = requires_nodes(model, fn)
        for ev in fn.events:
            if ev[0] == "alloc":
                line, held = ev[1], ev[2]
                if (held or entry) and not line_is_waived(
                        model, "alloc", fn.path, line):
                    lock = held[-1] if held else sorted(entry)[0]
                    findings.append(Finding(
                        "alloc-under-lock", fn.path, line,
                        f"heap allocation while holding {lock} "
                        f"(in {fn.qual}; hoist it out of the lock scope or "
                        "waive with // sttr-analyze: allow-alloc: <why>)"))
            elif ev[0] == "call":
                _, chain, name, line, held = ev
                context = set(held) | entry
                if not context:
                    continue
                prim = is_blocking_call(model, fn, chain, name)
                chains = []
                if prim is not None:
                    chains.append((prim, [fn.qual]))
                else:
                    for callee in resolve_call(model, fn, chain, name):
                        for p, via in sorted(callee.summary_blocking.items()):
                            chains.append((p, [fn.qual] + via))
                if not chains:
                    continue
                if line_is_waived(model, "blocking", fn.path, line):
                    continue
                prim, via = chains[0]
                lock = sorted(context)[0]
                findings.append(Finding(
                    "blocking-under-lock", fn.path, line,
                    f"blocking call {prim} reachable while holding {lock} "
                    f"(chain: {' -> '.join(via)}; move the IO out of the "
                    "lock scope or waive with "
                    "// sttr-analyze: allow-blocking: <why>)"))


def check_layering(model, findings, src_prefix="src/"):
    closure = {}

    def close(d, seen=()):
        if d in closure:
            return closure[d]
        out = set()
        for dep in LAYERS.get(d, []):
            if dep in seen:
                continue
            out.add(dep)
            out |= close(dep, seen + (d,))
        closure[d] = out
        return out

    for d in LAYERS:
        close(d)
    for rel, incs in sorted(model.includes.items()):
        if not rel.startswith(src_prefix):
            continue
        parts = rel[len(src_prefix):].split("/")
        d = parts[0] if len(parts) > 1 else ""
        raw_lines = model.raw_lines.get(rel, [])
        for inc in incs:
            tgt = inc.split("/")[0] if "/" in inc else ""
            if not tgt or tgt == d or tgt not in LAYERS:
                continue
            line = next((i + 1 for i, l in enumerate(raw_lines)
                         if inc in l and "#include" in l), 1)
            if d not in LAYERS:
                findings.append(Finding(
                    "layering", rel, line,
                    f"directory src/{d}/ is not in the blessed layering "
                    "DAG (add it to LAYERS in tools/sttr_analyze.py with "
                    "its dependencies)"))
                continue
            if tgt not in closure[d]:
                if line_is_waived(model, "layering", rel, line):
                    continue
                findings.append(Finding(
                    "layering", rel, line,
                    f'#include "{inc}": src/{d}/ may not depend on '
                    f"src/{tgt}/ (blessed order: "
                    f"{d} -> {{{', '.join(sorted(closure[d])) or 'nothing'}}})"))
    # File-level include cycles anywhere under src/.
    graph = {rel: [i for i in incs
                   if (src_prefix + i) in model.includes]
             for rel, incs in model.includes.items()
             if rel.startswith(src_prefix)}
    graph = {rel: [src_prefix + i for i in incs]
             for rel, incs in graph.items()}
    color = {}
    stack = []

    def dfs(u):
        color[u] = 1
        stack.append(u)
        for v in graph.get(u, ()):
            if color.get(v, 0) == 0:
                c = dfs(v)
                if c:
                    return c
            elif color.get(v) == 1:
                return stack[stack.index(v):] + [v]
        stack.pop()
        color[u] = 2
        return None

    for rel in sorted(graph):
        if color.get(rel, 0) == 0:
            cyc = dfs(rel)
            if cyc:
                findings.append(Finding(
                    "layering", cyc[0], 1,
                    "include cycle: " + " -> ".join(cyc)))
                break


def check_status_discipline(model, findings):
    # 1. The Status/StatusOr declarations themselves must be [[nodiscard]].
    for rel, lines in model.raw_lines.items():
        if not rel.endswith("status.h"):
            continue
        src = "\n".join(lines)
        for cls in ("Status", "StatusOr"):
            m = re.search(r"^\s*(?:template\s*<[^>]*>\s*)?class\s+"
                          r"(\[\[nodiscard\]\]\s+)?" + cls + r"\b[^;]*?\{",
                          src, re.MULTILINE | re.DOTALL)
            if m is not None and not m.group(1):
                findings.append(Finding(
                    "status-discipline", rel,
                    src[:m.start()].count("\n") + 1,
                    f"class {cls} must be declared [[nodiscard]] so the "
                    "compiler flags every discarded result"))
    # 2. No statement-level discard of a Status-returning call.
    ambiguous = {name for name, (s, o) in model.status_name_votes.items()
                 if s > 0 and o > 0}
    for fn in model.functions:
        if not fn.path.startswith("src/"):
            continue
        for stmt, line in iter_statements(fn):
            m = re.match(r"((?:[\w\]\[\.\->:]+(?:\.|->|::))?)(\w+)\s*\(",
                         stmt)
            if m is None:
                continue
            name, chain = m.group(2), m.group(1)
            if not is_status_call(model, fn, chain, name, ambiguous):
                continue
            close = match_paren(stmt, m.end() - 1)
            if close is None or stmt[close + 1:].strip():
                continue  # result is consumed (member access, chaining, ...)
            if line_is_waived(model, "discard", fn.path, line):
                continue
            findings.append(Finding(
                "status-discipline", fn.path, line,
                f"result of Status-returning {name}() is discarded "
                "(check it, assign it, or waive with "
                "// sttr-analyze: allow-discard: <why>)"))


def is_status_call(model, fn, chain, name, ambiguous):
    if name in ambiguous:
        # Mixed-return name: only a receiver-resolved call is trustworthy.
        cands = resolve_call(model, fn, chain, name)
        if len(cands) != 1:
            return False
        c = model.classes.get(cands[0].cls)
        return c is not None and name in model.status_methods.get(c.qual, ())
    votes = model.status_name_votes.get(name)
    return votes is not None and votes[0] > 0 and votes[1] == 0


def iter_statements(fn):
    """(statement text, line) for each `;`-terminated top-paren-level chunk."""
    body = fn.body[1:-1] if fn.body.startswith("{") else fn.body
    base = fn.body_line
    start = 0
    depth = 0
    for i, c in enumerate(body):
        if c in "([":
            depth += 1
        elif c in ")]":
            depth -= 1
        elif c in ";{}" and depth <= 0:
            stmt = body[start:i].strip()
            if stmt:
                line = base + fn.body[1:].count("\n", 0, start)
                # Line of the statement's first non-blank char.
                lead = body[start:i]
                line = base + fn.body[1:].count(
                    "\n", 0, start + (len(lead) - len(lead.lstrip())))
                yield stmt, line
            start = i + 1
    return


def match_paren(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return None


def check_waiver_syntax(model, findings):
    for w in model.waivers:
        known = {"allow-lock-order", "allow-blocking", "allow-alloc",
                 "allow-layering", "allow-discard"}
        if w.check not in known:
            findings.append(Finding(
                "waiver-syntax", w.path, w.line,
                f"unknown waiver '{w.check}' (known: "
                f"{', '.join(sorted(known))})"))
        elif not w.why:
            findings.append(Finding(
                "waiver-syntax", w.path, w.line,
                f"waiver '{w.check}' needs a one-line justification after "
                "the colon"))
        elif w.check == "allow-lock-order" and (
                not w.arg or "->" not in w.arg):
            findings.append(Finding(
                "waiver-syntax", w.path, w.line,
                "allow-lock-order must name the edge: "
                "allow-lock-order(A::mu -> B::mu): <why>"))


def report_unused_waivers(model, findings):
    for w in model.waivers:
        if w.why and not w.used and w.check in (
                "allow-lock-order", "allow-blocking", "allow-alloc",
                "allow-layering", "allow-discard"):
            # An unused waiver is stale documentation; keep the tree honest.
            findings.append(Finding(
                "waiver-syntax", w.path, w.line,
                f"waiver '{w.check}' no longer matches anything — the "
                "finding it justified is gone; delete the comment"))


# -- Driver -----------------------------------------------------------------------

def iter_source_files(root, compile_commands=None):
    """repo-relative source paths, honouring --compile-commands if given."""
    src_root = os.path.join(root, "src")
    if compile_commands:
        with open(compile_commands, encoding="utf-8") as f:
            tus = json.load(f)
        rels = set()
        for tu in tus:
            p = os.path.normpath(os.path.join(tu.get("directory", ""),
                                              tu["file"]))
            rel = os.path.relpath(p, root).replace(os.sep, "/")
            if rel.startswith("src/"):
                rels.add(rel)
        # Headers ride along: every src/ header is in some TU's include set.
        for dirpath, _dirs, files in os.walk(src_root):
            for name in sorted(files):
                if name.endswith((".h", ".hpp")):
                    rels.add(os.path.relpath(
                        os.path.join(dirpath, name), root).replace(os.sep,
                                                                   "/"))
        return sorted(rels)
    rels = []
    for dirpath, _dirs, files in os.walk(src_root):
        for name in sorted(files):
            if name.endswith((".h", ".hpp", ".cc", ".cpp")):
                rels.append(os.path.relpath(
                    os.path.join(dirpath, name), root).replace(os.sep, "/"))
    return sorted(rels)


def build_model(root, compile_commands=None):
    model = Model()
    for rel in iter_source_files(root, compile_commands):
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            raw = f.read()
        parse_file(model, rel, raw)
    for fn in model.functions:
        scan_body(model, fn)
    compute_summaries(model)
    return model


def analyze(root, compile_commands=None, dump=None):
    model = build_model(root, compile_commands)
    findings = []
    check_waiver_syntax(model, findings)
    check_lock_order(model, findings, dump)
    check_blocking(model, findings)
    check_layering(model, findings)
    check_status_discipline(model, findings)
    report_unused_waivers(model, findings)
    return model, findings


# -- Self-test --------------------------------------------------------------------

FIXTURE_ROOT = "tests/lint_fixtures/analyze"


def self_test(repo_root):
    """Each tests/lint_fixtures/analyze/<case>/ is a mini repo (its own
    src/ tree); an EXPECT file lists the checks that must fire (one per
    line, empty or absent = must analyze clean). The fired set must match
    exactly — a fixture that trips an unrelated check is itself a bug."""
    fixture_root = os.path.join(repo_root, FIXTURE_ROOT)
    if not os.path.isdir(fixture_root):
        print(f"self-test: no fixtures under {FIXTURE_ROOT}",
              file=sys.stderr)
        return 1
    cases = sorted(d for d in os.listdir(fixture_root)
                   if os.path.isdir(os.path.join(fixture_root, d)))
    if not cases:
        print("self-test: fixture directory is empty", file=sys.stderr)
        return 1
    failures = 0
    for case in cases:
        case_dir = os.path.join(fixture_root, case)
        expect_path = os.path.join(case_dir, "EXPECT")
        expected = []
        if os.path.exists(expect_path):
            with open(expect_path, encoding="utf-8") as f:
                expected = sorted({ln.strip() for ln in f
                                   if ln.strip() and not
                                   ln.strip().startswith("#")})
        _model, findings = analyze(case_dir)
        fired = sorted({f.check for f in findings})
        if fired != expected:
            failures += 1
            print(f"self-test FAIL {case}:\n"
                  f"  expected checks: {expected or ['<clean>']}\n"
                  f"  fired checks:    {fired or ['<clean>']}",
                  file=sys.stderr)
            for f in findings:
                print(f"    {f}", file=sys.stderr)
        else:
            print(f"self-test ok    {case}: "
                  f"{', '.join(expected) if expected else 'clean'}")
    if failures:
        print(f"self-test: {failures} failure(s)", file=sys.stderr)
        return 1
    print(f"self-test: all {len(cases)} fixture cases passed.")
    return 0


def usage():
    return """\
usage: tools/sttr_analyze.py [--root=DIR] [--compile-commands=FILE]
                             [--self-test] [--dump-graph] [--list-checks]

Whole-program concurrency/layering analyzer; any finding fails the run.
Registered as the tier-1 ctests sttr_analyze and sttr_analyze_selftest.

flags:
  --root=DIR               repository root to analyze (default: repo of this
                           script)
  --compile-commands=FILE  restrict the .cc set to the TUs in a
                           compile_commands.json (headers always included)
  --self-test              run every check against its fixture trees under
                           tests/lint_fixtures/analyze/ and exit
  --dump-graph             print the global lock-order graph (nodes, edges
                           with one example site each, waived edges) as JSON
                           and exit 0 regardless of other checks' findings
  --list-checks            print every check with its rationale and exit
  --help                   print this help and exit
"""


def main(argv):
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    compile_commands = None
    run_self_test = False
    dump_graph = False
    for arg in argv[1:]:
        if arg.startswith("--root="):
            repo_root = arg[len("--root="):]
        elif arg.startswith("--compile-commands="):
            compile_commands = arg[len("--compile-commands="):]
        elif arg == "--self-test":
            run_self_test = True
        elif arg == "--dump-graph":
            dump_graph = True
        elif arg == "--list-checks":
            width = max(len(c) for c in CHECKS)
            for check, why in CHECKS.items():
                print(f"  {check}{' ' * (width - len(check) + 2)}{why}")
            return 0
        elif arg in ("--help", "-h"):
            sys.stdout.write(usage())
            return 0
        else:
            print(f"error: unknown flag '{arg}' (see --help)",
                  file=sys.stderr)
            return 2

    if run_self_test:
        return self_test(repo_root)

    dump = {} if dump_graph else None
    _model, findings = analyze(repo_root, compile_commands, dump)
    if dump_graph:
        json.dump(dump, sys.stdout, indent=2)
        print()
        return 0
    if findings:
        for f in findings:
            print(f, file=sys.stderr)
        print(f"sttr_analyze: {len(findings)} finding(s).", file=sys.stderr)
        return 1
    print("sttr_analyze: clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
