#!/usr/bin/env bash
# Batch clang-tidy runner over compile_commands.json: configures (if needed)
# a build tree with CMAKE_EXPORT_COMPILE_COMMANDS=ON — the default since the
# static-analysis PR — and runs the curated .clang-tidy check set
# (bugprone-*, concurrency-*, performance-*, selected cppcoreguidelines)
# over every project translation unit. Findings are errors
# (WarningsAsErrors: '*'); a clean exit means zero findings.
# The per-compile variant is cmake -DSTTR_TIDY=ON; the sanitizer siblings
# are tools/run_asan.sh and tools/run_tsan.sh.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-tidy"
fix=0

usage() {
  cat <<EOF
usage: tools/run_tidy.sh [--build-dir=DIR] [--fix]

Runs clang-tidy (config: .clang-tidy) over every src/, tools/, bench/ and
examples/ translation unit listed in DIR/compile_commands.json, configuring
DIR first when it does not exist. Any finding fails the run.

flags:
  --build-dir=${repo_root}/build-tidy  build tree providing compile_commands.json
  --fix                                apply clang-tidy's suggested fixes in place
  --help                               print this help and exit
EOF
}

for arg in "$@"; do
  case "${arg}" in
    --build-dir=*) build_dir="${arg#--build-dir=}" ;;
    --build-dir) echo "error: --build-dir needs =DIR" >&2; exit 2 ;;
    --fix) fix=1 ;;
    --help|-h) usage; exit 0 ;;
    *) echo "error: unknown flag '${arg}' (see --help)" >&2; exit 2 ;;
  esac
done

# Gate on the tool rather than hard-failing: dev containers without LLVM
# still run the rest of the analysis stack (sttr_lint, sanitizers); CI's
# clang-tidy job installs the real thing and does gate on findings.
tidy=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "${candidate}" > /dev/null 2>&1; then
    tidy="${candidate}"
    break
  fi
done
if [[ -z "${tidy}" ]]; then
  echo "run_tidy.sh: SKIPPED — no clang-tidy binary on PATH." >&2
  echo "Install clang-tidy (LLVM >= 14) to run this check locally." >&2
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  # -march=native off: clang-tidy chokes on GCC-tuned native flags when the
  # database was produced by a different compiler.
  cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSTTR_NATIVE_ARCH=OFF -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi

# Project TUs only: third-party-free tree, so everything under these roots
# is ours. Headers are covered via HeaderFilterRegex in .clang-tidy.
# while-read instead of mapfile: macOS ships /bin/bash 3.2, which lacks it.
sources=()
while IFS= read -r line; do
  sources+=("${line}")
done < <(cd "${repo_root}" &&
  find src tools bench examples -name '*.cc' -o -name '*.cpp' | sort)

fix_args=()
if [[ "${fix}" == "1" ]]; then
  fix_args+=(--fix --fix-errors)
fi

echo "run_tidy.sh: ${tidy} over ${#sources[@]} translation units"
failed=0
# ${arr[@]+...} guards: under set -u, expanding an empty array is an error
# before bash 4.4.
for source in ${sources[@]+"${sources[@]}"}; do
  if ! "${tidy}" -p "${build_dir}" --quiet ${fix_args[@]+"${fix_args[@]}"} \
      "${repo_root}/${source}"; then
    echo "clang-tidy FAILED: ${source}" >&2
    failed=1
  fi
done

if [[ "${failed}" != "0" ]]; then
  echo "run_tidy.sh: findings above must be fixed (or suppressed with a" >&2
  echo "// NOLINT(check-name) carrying a reason)." >&2
  exit 1
fi
echo "clang-tidy run clean."
