// Offline post-training quantizer: converts the newest fp32 training
// checkpoint in --ckpt_dir into an int8 serving artifact (v2 container,
// core/quantized_model.h) under --out_dir, and optionally measures ranking
// fidelity against the fp32 model it came from.
//
// The world + model config must match what produced the checkpoint (the
// config fingerprint is compared, like sttr_serve). Typical flow:
//
//   sttr_serve    --ckpt_dir=/tmp/ckpt --train      # produce fp32 ckpt
//   sttr_quantize --ckpt_dir=/tmp/ckpt --fidelity   # emit /tmp/ckpt/quant
//   sttr_serve    --ckpt_dir=/tmp/ckpt --precision=auto
//
// A server running --precision=auto (or int8) hot-swaps to the artifact the
// moment it lands, because the quantized epoch ties (or beats) the fp32 one.

#include <cstdio>
#include <sstream>
#include <string>

#include "bench/bench_util.h"
#include "core/checkpoint.h"
#include "core/quantized_model.h"
#include "core/st_transrec.h"
#include "eval/fidelity.h"
#include "util/check.h"
#include "util/logging.h"

namespace sttr {
namespace {

void DefineFlags(FlagParser& flags) {
  flags.Define("ckpt_dir", "fp32 checkpoint directory to quantize (required)");
  flags.Define("out_dir",
               "output directory of the quantized artifact "
               "(default: <ckpt_dir>/quant)");
  flags.Define("dataset", "world preset: foursquare | yelp", "foursquare");
  flags.Define("scale", "world size: tiny | small | paper", "small");
  flags.Define("seed", "world seed override (0 = preset default)", "0");
  flags.Define("scheme", "embedding-table scheme: affine | symmetric",
               "affine");
  flags.Define("fp32_tail",
               "keep the MLP tail fp32 in the artifact (default stores fp16)");
  flags.Define("fidelity",
               "rank the target city under fp32 and int8 and report "
               "HR/NDCG deltas + top-k overlap");
  flags.Define("fidelity_users",
               "cap on test users in the fidelity sweep (0 = all)", "0");
}

int Main(int argc, char** argv) {
  FlagParser flags;
  DefineFlags(flags);
  STTR_CHECK_OK(flags.Parse(argc, argv));
  if (flags.Has("help")) {
    std::fputs(flags.HelpText("sttr_quantize", "--ckpt_dir=DIR [flags]",
                              "Quantizes the newest fp32 checkpoint into an "
                              "int8 serving artifact\n(v2 container) and "
                              "optionally measures ranking fidelity.")
                   .c_str(),
               stdout);
    return 0;
  }
  const std::string ckpt_dir = flags.GetString("ckpt_dir", "");
  if (ckpt_dir.empty()) {
    std::fprintf(stderr, "--ckpt_dir is required (try --help)\n");
    return 2;
  }
  const std::string out_dir =
      flags.GetString("out_dir", ckpt_dir + "/quant");

  QuantizationConfig quant_cfg;
  const std::string scheme = flags.GetString("scheme", "affine");
  if (scheme == "symmetric") {
    quant_cfg.embedding_scheme = QuantScheme::kSymmetric;
  } else if (scheme != "affine") {
    std::fprintf(stderr, "unknown --scheme=%s (affine | symmetric)\n",
                 scheme.c_str());
    return 2;
  }
  quant_cfg.fp16_tail = !flags.GetBool("fp32_tail", false);

  // Same world + architecture recipe as sttr_serve: the checkpoint's config
  // fingerprint covers both, so any mismatch is caught below.
  const bench::BenchOptions opts = bench::BenchOptions::Parse(argc, argv);
  const std::string dataset_name = flags.GetString("dataset", "foursquare");
  bench::WorldAndSplit ws = bench::MakeWorld(dataset_name, opts);
  StTransRecConfig model_cfg = opts.DeepConfig();
  bench::ApplyPaperArchitecture(dataset_name, model_cfg);
  model_cfg.checkpoint_dir.clear();  // this tool never writes v1 checkpoints

  Env& env = *Env::Default();
  auto ckpt_path = FindLatestValidCheckpoint(env, ckpt_dir);
  if (!ckpt_path.ok()) {
    std::fprintf(stderr, "no valid checkpoint in %s: %s\n", ckpt_dir.c_str(),
                 ckpt_path.status().ToString().c_str());
    return 1;
  }
  auto reader = CheckpointReader::Open(env, *ckpt_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", ckpt_path->c_str(),
                 reader.status().ToString().c_str());
    return 1;
  }
  if (reader->version() != kCheckpointFormatVersion) {
    std::fprintf(stderr,
                 "%s is a v%u artifact, not an fp32 training checkpoint\n",
                 ckpt_path->c_str(), reader->version());
    return 1;
  }

  StTransRec model(model_cfg);
  STTR_CHECK_OK(model.Prepare(ws.world.dataset, ws.split));
  auto config_section = reader->Section("config");
  if (!config_section.ok() || *config_section != model.ConfigFingerprint()) {
    std::fprintf(stderr,
                 "config fingerprint mismatch: checkpoint %s was written "
                 "under a different config or dataset\n",
                 ckpt_path->c_str());
    return 1;
  }
  auto model_section = reader->Section("model");
  if (!model_section.ok()) {
    std::fprintf(stderr, "%s: %s\n", ckpt_path->c_str(),
                 model_section.status().ToString().c_str());
    return 1;
  }
  {
    std::istringstream in(*model_section, std::ios::binary);
    STTR_CHECK_OK(model.Load(in));
  }
  // Load() restores parameters but not the loss history, so the completed-
  // epoch count is carried over from the source checkpoint's meta section.
  uint64_t epoch = 0;
  if (auto meta = reader->Section("meta"); meta.ok()) {
    std::string_view in(*meta);
    ReadU64(in, &epoch);
  }
  quant_cfg.epoch = static_cast<int64_t>(epoch);

  auto quant = QuantizedModel::Quantize(model, quant_cfg);
  STTR_CHECK_OK(quant.status());

  STTR_CHECK_OK(env.CreateDir(out_dir));
  const std::string out_path =
      out_dir + "/" + CheckpointFileName(static_cast<size_t>(epoch));
  STTR_CHECK_OK(quant->WriteCheckpointFile(env, out_path));

  const size_t fp32_table_bytes =
      (quant->num_users() + quant->num_pois()) * quant->embedding_dim() *
      sizeof(float);
  std::printf("quantized %s (epoch %llu) -> %s\n", ckpt_path->c_str(),
              static_cast<unsigned long long>(epoch), out_path.c_str());
  std::printf("  embeddings: %zu bytes int8 (%s) vs %zu fp32 (%.2fx smaller)\n",
              quant->EmbeddingBytes(), QuantSchemeName(quant->embedding_scheme()),
              fp32_table_bytes,
              static_cast<double>(fp32_table_bytes) /
                  static_cast<double>(quant->EmbeddingBytes()));
  std::printf("  scorer resident: ~%zu bytes (tail %s)\n", quant->ApproxBytes(),
              quant->fp16_tail() ? "stored fp16" : "stored fp32");

  if (flags.GetBool("fidelity", false)) {
    FidelityConfig fid_cfg;
    fid_cfg.max_users =
        static_cast<size_t>(flags.GetInt("fidelity_users", 0));
    const FidelityReport report =
        CompareScorers(ws.world.dataset, ws.split, model, *quant, fid_cfg);
    std::fputs(report.ToString().c_str(), stdout);
  }
  return 0;
}

}  // namespace
}  // namespace sttr

int main(int argc, char** argv) { return sttr::Main(argc, argv); }
