#!/usr/bin/env python3
"""Project-invariant linter: the rules the compilers cannot see.

Four invariants, each load-bearing for the reproduction's contract
(bit-identical results under any worker count, tier-1 gating in CI):

  banned-randomness   All randomness flows through src/util/rng.* (sttr::Rng,
                      seedable xoshiro256**). rand()/std::random_device/
                      mt19937/time()-seeding anywhere else silently breaks
                      run-to-run determinism.
  raw-mutex           std::mutex / std::condition_variable / std::lock_guard
                      may appear only inside src/util/mutex.h. Everything
                      else uses sttr::Mutex + MutexLock + CondVar so Clang's
                      -Wthread-safety analysis sees every lock in the tree.
  test-include        src/ must never #include from tests/ (library code
                      cannot depend on test scaffolding).
  tier1-label         Every tests/**/*_test.cc is registered through
                      sttr_test() in tests/CMakeLists.txt, which applies the
                      tier1 ctest label CI gates on — an unregistered test
                      is a test that silently never runs.
  no-analysis-escape  NO_THREAD_SAFETY_ANALYSIS is forbidden in src/serve/
                      and src/stream/ (the concurrent serving + ingestion
                      layers must stay fully analyzed) and requires a
                      one-line justification comment everywhere else in
                      src/.
  raw-socket          ::connect / ::send / ::recv / ::poll / ::accept4
                      may appear only inside src/util/socket_io.*
                      (sttr::net::{Connect,Send,Recv,Poll}). A raw call
                      anywhere else bypasses the fault-injection seam the
                      chaos suites rely on, so the fault paths it takes are
                      exactly the ones that never get tested. (::poll was
                      added when the router's fan-out loop was found to
                      escape the seam; ::accept4 preemptively with it.)

Runs as a tier-1 ctest (sttr_lint) plus a fixture-driven self-test
(sttr_lint_selftest); see tools/README.md.
"""

import os
import re
import sys

RULES = {
    "banned-randomness": "non-Rng randomness source in src/ (determinism)",
    "raw-mutex": "raw std mutex primitive outside src/util/mutex.h",
    "test-include": "src/ file #includes test scaffolding from tests/",
    "tier1-label": "test file not registered with the tier1 ctest label",
    "no-analysis-escape":
        "NO_THREAD_SAFETY_ANALYSIS in src/serve/ or src/stream/, or "
        "without justification",
    "raw-socket":
        "raw ::connect/::send/::recv/::poll/::accept4 outside "
        "src/util/socket_io.*",
}

# Randomness sources that bypass sttr::Rng. \b guards keep identifiers like
# `operand(` or `grand_total` from matching.
BANNED_RANDOMNESS = re.compile(
    r"\b(?:s?rand|s?random|drand48|[lm]rand48)\s*\(|"
    r"\brandom_device\b|\bmt19937(?:_64)?\b|\bminstd_rand0?\b|"
    r"\bdefault_random_engine\b|\branlux\d+\b|"
    r"(?:std::)?\btime\s*\(\s*(?:nullptr|NULL|0)?\s*\)")

# Raw standard primitives that would be invisible to -Wthread-safety.
RAW_MUTEX = re.compile(
    r"\bstd::(?:recursive_|shared_|timed_)?mutex\b|"
    r"\bstd::condition_variable(?:_any)?\b|"
    r"\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b|"
    r"\bpthread_(?:mutex|cond|rwlock)_t\b")

# Matched against the raw line (the comment/string stripper blanks the
# quoted path); the ^ anchor keeps commented-out includes from firing.
TEST_INCLUDE = re.compile(r'^\s*#\s*include\s*[<"](?:\.\./)*tests/')

# Globally-qualified socket syscalls that would bypass sttr::net's
# fault-injection seam. Requiring the leading :: is deliberate: net::Send /
# any_object.send(...) stay legal, and the wrappers themselves are the only
# place a bare ::send belongs.
RAW_SOCKET = re.compile(r"(?<![\w:])::(?:connect|send|recv|poll|accept4)\s*\(")

ESCAPE_MACRO = "NO_THREAD_SAFETY_ANALYSIS"

# Files whose existence defines the allowed homes of the banned constructs.
RNG_HOME = ("src/util/rng.h", "src/util/rng.cc")
MUTEX_HOME = ("src/util/mutex.h",)
ANNOTATIONS_HOME = ("src/util/thread_annotations.h",)
SOCKET_HOME = ("src/util/socket_io.h", "src/util/socket_io.cc")

FIXTURE_DIR = "tests/lint_fixtures"


class Violation:
    def __init__(self, rule, path, line, text):
        self.rule = rule
        self.path = path
        self.line = line
        self.text = text

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.text.strip()}"


# R"delim( possibly preceded by an encoding prefix, anchored so the check
# below can demand the prefix is a whole token (FOOR"x" is the identifier
# FOOR followed by an ordinary string, not a raw string).
RAW_STRING_INTRO = re.compile(r"(?:u8|[uUL])?R$")


def _is_digit_separator(source, i):
    """True when source[i] == "'" separates digits of one numeric literal

    (1'000'000, 0xdead'beef) rather than opening a char literal."""
    prev_c = source[i - 1] if i > 0 else ""
    next_c = source[i + 1] if i + 1 < len(source) else ""
    hexdigits = "0123456789abcdefABCDEF"
    if prev_c not in hexdigits or next_c not in hexdigits:
        return False
    # Walk back over the token: a separator only exists inside a literal
    # that *starts* with a digit, so u8'a' / L'a' stay char literals even
    # though 'a' and '8' are hex digits.
    j = i - 1
    while j >= 0 and (source[j].isalnum() or source[j] in "'."):
        j -= 1
    return source[j + 1].isdigit()


def strip_comments_and_strings(source):
    """Blanks comments and string/char literals, preserving line structure,

    so a rule regex never fires on documentation or log text. Knows C++14
    digit separators (1'000'000 is code, not a char literal) and raw string
    literals (R"delim(...)delim", where escapes and quotes are inert)."""
    out = []
    i, n = 0, len(source)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = source[i]
        nxt = source[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                intro = RAW_STRING_INTRO.search(source, max(0, i - 3), i)
                if intro is not None and (
                        intro.start() == 0 or
                        not (source[intro.start() - 1].isalnum()
                             or source[intro.start() - 1] == "_")):
                    # Raw string: blank through the matching )delim" in one
                    # step — no escape or quote handling applies inside.
                    open_paren = source.find("(", i + 1)
                    delim = source[i + 1:open_paren] if open_paren != -1 else ""
                    terminator = ')' + delim + '"'
                    end = (source.find(terminator, open_paren + 1)
                           if open_paren != -1 else -1)
                    end = n if end == -1 else end + len(terminator)
                    out.extend("\n" if ch == "\n" else " "
                               for ch in source[i:end])
                    i = end
                    continue
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                if _is_digit_separator(source, i):
                    out.append(c)
                    i += 1
                    continue
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def lint_source_file(rel_path, source):
    """Rules over one src/ file; `rel_path` uses forward slashes."""
    violations = []
    stripped = strip_comments_and_strings(source).splitlines()
    raw = source.splitlines()

    for lineno, line in enumerate(stripped, start=1):
        if rel_path not in RNG_HOME and BANNED_RANDOMNESS.search(line):
            violations.append(
                Violation("banned-randomness", rel_path, lineno,
                          raw[lineno - 1]))
        if (rel_path not in MUTEX_HOME and rel_path not in ANNOTATIONS_HOME
                and RAW_MUTEX.search(line)):
            violations.append(
                Violation("raw-mutex", rel_path, lineno, raw[lineno - 1]))
        if TEST_INCLUDE.search(raw[lineno - 1]):
            violations.append(
                Violation("test-include", rel_path, lineno, raw[lineno - 1]))
        if rel_path not in SOCKET_HOME and RAW_SOCKET.search(line):
            violations.append(
                Violation("raw-socket", rel_path, lineno, raw[lineno - 1]))

    if rel_path not in ANNOTATIONS_HOME:
        for lineno, line in enumerate(stripped, start=1):
            if ESCAPE_MACRO not in line:
                continue
            if rel_path.startswith(("src/serve/", "src/stream/")):
                violations.append(
                    Violation("no-analysis-escape", rel_path, lineno,
                              "escape hatch is forbidden in src/serve/ and "
                              "src/stream/"))
                continue
            # Elsewhere: demand a justification comment on the same line or
            # the line above (the raw text still has the comments).
            same = "//" in raw[lineno - 1].split(ESCAPE_MACRO, 1)[1]
            above = lineno >= 2 and raw[lineno - 2].lstrip().startswith("//")
            if not (same or above):
                violations.append(
                    Violation("no-analysis-escape", rel_path, lineno,
                              "add a one-line justification comment"))
    return violations


def lint_tier1_registration(tests_dir, cmakelists_path):
    """Every *_test.cc under `tests_dir` must be named in an sttr_test()

    call in `cmakelists_path` (sttr_test applies LABELS tier1)."""
    violations = []
    try:
        with open(cmakelists_path, encoding="utf-8") as f:
            cmake = strip_cmake_comments(f.read())
    except OSError:
        return [Violation("tier1-label", cmakelists_path, 1,
                          "tests/CMakeLists.txt is missing")]
    registered = set(re.findall(r"sttr_test\s*\(\s*[\w-]+\s+([^\s)]+)", cmake))
    for root, _dirs, files in os.walk(tests_dir):
        rel_root = os.path.relpath(root, tests_dir).replace(os.sep, "/")
        if rel_root.startswith("lint_fixtures"):
            continue
        for name in sorted(files):
            if not name.endswith("_test.cc"):
                continue
            rel = name if rel_root == "." else f"{rel_root}/{name}"
            if rel not in registered:
                violations.append(
                    Violation("tier1-label", f"tests/{rel}", 1,
                              "not registered via sttr_test() in "
                              "tests/CMakeLists.txt"))
    return violations


def strip_cmake_comments(text):
    return "\n".join(line.split("#", 1)[0] for line in text.splitlines())


def iter_source_files(src_dir):
    for root, _dirs, files in os.walk(src_dir):
        for name in sorted(files):
            if name.endswith((".h", ".hpp", ".cc", ".cpp")):
                yield os.path.join(root, name)


def lint_repo(repo_root):
    violations = []
    src_dir = os.path.join(repo_root, "src")
    for path in iter_source_files(src_dir):
        rel = os.path.relpath(path, repo_root).replace(os.sep, "/")
        with open(path, encoding="utf-8") as f:
            violations.extend(lint_source_file(rel, f.read()))
    violations.extend(
        lint_tier1_registration(
            os.path.join(repo_root, "tests"),
            os.path.join(repo_root, "tests", "CMakeLists.txt")))
    return violations


FIXTURE_AS = re.compile(r"lint-fixture-as:\s*(\S+)")
EXPECT = re.compile(r"expect-violation:\s*([\w-]+)")


def self_test(repo_root):
    """Fixture-driven check that each rule actually fires (and only where

    expected). Each tests/lint_fixtures/*.cc declares, in comments:
      // lint-fixture-as: src/serve/foo.cc   (path the rule should see)
      // expect-violation: raw-mutex         (zero or more)
    A fixture with no expect-violation lines must lint clean."""
    fixture_dir = os.path.join(repo_root, FIXTURE_DIR)
    fixtures = sorted(
        f for f in os.listdir(fixture_dir) if f.endswith((".cc", ".h")))
    if not fixtures:
        print(f"self-test: no fixtures in {FIXTURE_DIR}", file=sys.stderr)
        return 1
    failures = 0
    for name in fixtures:
        with open(os.path.join(fixture_dir, name), encoding="utf-8") as f:
            source = f.read()
        as_match = FIXTURE_AS.search(source)
        rel_path = as_match.group(1) if as_match else f"src/{name}"
        expected = sorted(EXPECT.findall(source))
        got = sorted({v.rule for v in lint_source_file(rel_path, source)})
        if got != expected:
            failures += 1
            print(f"self-test FAIL {name} (as {rel_path}):\n"
                  f"  expected rules: {expected or ['<clean>']}\n"
                  f"  fired rules:    {got or ['<clean>']}", file=sys.stderr)
        else:
            print(f"self-test ok    {name}: "
                  f"{', '.join(expected) if expected else 'clean'}")

    # tier1-label is path-structural, so it gets directory fixtures: a tests
    # tree whose CMakeLists misses one test must trip, a complete one not.
    for case, want in (("tier1_bad", True), ("tier1_good", False)):
        case_dir = os.path.join(fixture_dir, case)
        got = lint_tier1_registration(
            os.path.join(case_dir, "tests"),
            os.path.join(case_dir, "tests", "CMakeLists.txt"))
        fired = any(v.rule == "tier1-label" for v in got)
        if fired != want:
            failures += 1
            print(f"self-test FAIL {case}: tier1-label "
                  f"{'did not fire' if want else 'fired'}", file=sys.stderr)
        else:
            print(f"self-test ok    {case}: "
                  f"tier1-label {'fired' if want else 'clean'}")

    if failures:
        print(f"self-test: {failures} failure(s)", file=sys.stderr)
        return 1
    print(f"self-test: all {len(fixtures) + 2} fixture cases passed.")
    return 0


def usage():
    rows = [
        (f"--root={os.path.dirname(os.path.dirname(os.path.abspath(__file__)))}",
         "repository root to lint"),
        ("--self-test", "run the rules against tests/lint_fixtures/ and exit"),
        ("--list-rules", "print every rule with its rationale and exit"),
        ("--help", "print this help and exit"),
    ]
    width = max(len(flag) for flag, _ in rows)
    lines = [
        "usage: tools/sttr_lint.py [--root=DIR] [--self-test] [--list-rules]",
        "",
        "Enforces the project invariants the compilers cannot see; any",
        "violation fails the run. Registered as the tier-1 ctests sttr_lint",
        "and sttr_lint_selftest.",
        "",
        "flags:",
    ]
    for flag, desc in rows:
        lines.append(f"  {flag}{' ' * (width - len(flag) + 2)}{desc}")
    return "\n".join(lines) + "\n"


def main(argv):
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    run_self_test = False
    for arg in argv[1:]:
        if arg.startswith("--root="):
            repo_root = arg[len("--root="):]
        elif arg == "--self-test":
            run_self_test = True
        elif arg == "--list-rules":
            width = max(len(r) for r in RULES)
            for rule, why in RULES.items():
                print(f"  {rule}{' ' * (width - len(rule) + 2)}{why}")
            return 0
        elif arg in ("--help", "-h"):
            sys.stdout.write(usage())
            return 0
        else:
            print(f"error: unknown flag '{arg}' (see --help)",
                  file=sys.stderr)
            return 2

    if run_self_test:
        return self_test(repo_root)

    violations = lint_repo(repo_root)
    if violations:
        for v in violations:
            print(v, file=sys.stderr)
        print(f"sttr_lint: {len(violations)} violation(s).", file=sys.stderr)
        return 1
    print("sttr_lint: clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
