#!/usr/bin/env bash
# Time-boxed libFuzzer smoke run over the tests/fuzz/ harnesses: configures
# a Clang build tree with -DSTTR_FUZZ=ON (libFuzzer + ASan), then runs each
# fuzzer seeded from its committed corpus for a bounded wall-clock budget.
# This is a smoke test — it catches shallow regressions in the parsers on
# every CI run; long-running fuzz campaigns happen out of band. The replay
# side of the same harnesses (fuzz_driver.h) runs as tier-1 ctests in every
# ordinary build, so the committed seeds gate even without Clang.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-fuzz"
budget_s=20

usage() {
  cat <<EOF
usage: tools/run_fuzz_smoke.sh [--build-dir=DIR] [--budget=SECONDS]

Builds the tests/fuzz/ harnesses with -DSTTR_FUZZ=ON (Clang + libFuzzer +
ASan) and runs each for SECONDS of fuzzing seeded from tests/fuzz/corpus/.
Any crash or FUZZ_CHECK failure fails the run.

flags:
  --build-dir=${repo_root}/build-fuzz  libFuzzer build tree (created if absent)
  --budget=20                          per-harness fuzz time in seconds
  --help                               print this help and exit
EOF
}

for arg in "$@"; do
  case "${arg}" in
    --build-dir=*) build_dir="${arg#--build-dir=}" ;;
    --budget=*) budget_s="${arg#--budget=}" ;;
    --help|-h) usage; exit 0 ;;
    *) echo "error: unknown flag '${arg}' (see --help)" >&2; exit 2 ;;
  esac
done

# Gate on the toolchain rather than hard-failing: libFuzzer needs Clang, and
# dev containers that only ship GCC still exercise these harnesses through
# the tier-1 corpus-replay tests. CI's fuzz-smoke job installs Clang and
# does gate on crashes. Same skip-with-notice contract as run_tidy.sh.
clangxx=""
for candidate in clang++ clang++-18 clang++-17 clang++-16 clang++-15 \
                 clang++-14; do
  if command -v "${candidate}" > /dev/null 2>&1; then
    clangxx="${candidate}"
    break
  fi
done
if [[ -z "${clangxx}" ]]; then
  echo "run_fuzz_smoke.sh: SKIPPED — no clang++ binary on PATH." >&2
  echo "Install Clang (>= 14) to run the libFuzzer smoke locally; the" >&2
  echo "corpus-replay tier-1 tests still cover the committed seeds." >&2
  exit 0
fi

if [[ ! -f "${build_dir}/CMakeCache.txt" ]]; then
  # -march=native off for parity with the other analysis trees; warnings
  # stay on but -Werror off — Clang and GCC disagree on a few diagnostics
  # and this tree exists to find memory bugs, not warning drift.
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_CXX_COMPILER="${clangxx}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSTTR_FUZZ=ON -DSTTR_NATIVE_ARCH=OFF -DSTTR_WERROR=OFF
fi

cmake --build "${build_dir}" -j "$(nproc)" \
  --target fuzz_http_parser fuzz_shard_frame fuzz_checkpoint_reader

declare -A corpus=(
  [fuzz_http_parser]=http
  [fuzz_shard_frame]=shard
  [fuzz_checkpoint_reader]=ckpt
)

failed=0
for harness in fuzz_http_parser fuzz_shard_frame fuzz_checkpoint_reader; do
  seed_dir="${repo_root}/tests/fuzz/corpus/${corpus[${harness}]}"
  work_dir="${build_dir}/corpus-${harness}"
  mkdir -p "${work_dir}"
  echo "run_fuzz_smoke.sh: ${harness} for ${budget_s}s (seeds: ${seed_dir})"
  # Work dir first so new coverage-increasing inputs land there, seeds are
  # read-only starting points. -timeout guards single-input hangs.
  if ! "${build_dir}/tests/fuzz/${harness}" \
      -max_total_time="${budget_s}" -timeout=10 -print_final_stats=1 \
      "${work_dir}" "${seed_dir}"; then
    echo "run_fuzz_smoke.sh: ${harness} FAILED — reproducer in $(pwd)" >&2
    failed=1
  fi
done

if [[ "${failed}" != "0" ]]; then
  echo "run_fuzz_smoke.sh: crashes above — triage the crash-* file, fix," >&2
  echo "then commit the input under tests/fuzz/corpus/ as a regression." >&2
  exit 1
fi
echo "fuzz smoke clean (${budget_s}s per harness)."
