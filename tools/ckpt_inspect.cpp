// Checkpoint inspector: lists sections of a checkpoint container, verifies
// its checksums, diffs two checkpoints, and locates the newest valid
// checkpoint in a directory. The debugging companion to the crash-safe
// checkpointing in core/checkpoint.h.
//
// Usage:
//   ckpt_inspect list <file>       print sections with sizes and CRCs
//   ckpt_inspect verify <file>     verify magic/lengths/checksums (exit 1 on
//                                  corruption)
//   ckpt_inspect diff <a> <b>      section-by-section comparison; tensor-level
//                                  stats for the model section
//   ckpt_inspect latest <dir>      print the newest checkpoint that verifies
//   ckpt_inspect latest-delta <dir>  print the newest v3 delta that verifies
//   ckpt_inspect --help            full usage

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/delta.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/flags.h"

using namespace sttr;

namespace {

std::string HelpText(const FlagParser& flags) {
  return flags.HelpText(
      "ckpt_inspect", "<command> <args>",
      "Inspects crash-safe checkpoint containers (core/checkpoint.h).\n"
      "\ncommands:\n"
      "  list <file>    print sections with sizes and CRCs\n"
      "  verify <file>  verify magic/lengths/checksums (exit 1 on "
      "corruption)\n"
      "  diff <a> <b>   section-by-section comparison; tensor-level stats\n"
      "                 for the model section. With one v3 delta and one v1\n"
      "                 base, shows the rows the delta changes — refused\n"
      "                 when the delta targets a different base\n"
      "  latest <dir>   print the newest checkpoint that verifies\n"
      "  latest-delta <dir>  print the newest v3 delta that verifies");
}

int Usage(const FlagParser& flags) {
  std::fputs(HelpText(flags).c_str(), stderr);
  return 2;
}

StatusOr<CheckpointReader> OpenOrExplain(const std::string& path) {
  auto reader = CheckpointReader::Open(*Env::Default(), path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 reader.status().ToString().c_str());
  }
  return reader;
}

/// Decodes a "model"/optimizer-style payload of concatenated tensors.
std::vector<Tensor> DecodeTensors(const std::string& payload) {
  std::istringstream in(payload, std::ios::binary);
  std::vector<Tensor> out;
  while (in.peek() != EOF) {
    StatusOr<Tensor> t = Tensor::Deserialize(in);
    if (!t.ok()) break;
    out.push_back(std::move(t).value());
  }
  return out;
}

bool IsQuantMatrixSection(const std::string& name) {
  return name == "quant_user" || name == "quant_poi" || name == "quant_mlp0";
}

/// Prints the shape/scheme of a quantized-matrix section and how its bytes
/// compare to the fp32 table it replaced.
void PrintQuantSection(const std::string& name, const std::string& payload) {
  std::istringstream in(payload, std::ios::binary);
  StatusOr<RowQuantizedMatrix> m = RowQuantizedMatrix::Deserialize(in);
  if (!m.ok()) {
    std::printf("%s: <undecodable: %s>\n", name.c_str(),
                m.status().ToString().c_str());
    return;
  }
  const size_t fp32_bytes = m->rows * m->cols * sizeof(float);
  std::printf("%s: %zux%zu int8 (%s), %zu bytes resident vs %zu fp32 "
              "(%.2fx smaller)\n",
              name.c_str(), m->rows, m->cols, QuantSchemeName(m->scheme),
              m->ByteSize(), fp32_bytes,
              m->ByteSize() > 0
                  ? static_cast<double>(fp32_bytes) /
                        static_cast<double>(m->ByteSize())
                  : 0.0);
}

/// Total section payload bytes of a parsed container.
size_t PayloadBytes(const CheckpointReader& reader) {
  size_t total = 0;
  for (const CheckpointSection& s : reader.sections()) {
    total += s.payload.size();
  }
  return total;
}

int List(const std::string& path) {
  auto reader = OpenOrExplain(path);
  if (!reader.ok()) return 1;
  std::printf("%s: format v%u, %zu sections\n", path.c_str(),
              reader->version(), reader->sections().size());
  std::printf("%-16s %12s  %s\n", "section", "bytes", "crc32");
  for (const CheckpointSection& s : reader->sections()) {
    std::printf("%-16s %12zu  %08x\n", s.name.c_str(), s.payload.size(),
                s.crc);
  }
  std::printf("%-16s %12zu  (%.2f MiB)\n", "total", PayloadBytes(*reader),
              static_cast<double>(PayloadBytes(*reader)) / (1024.0 * 1024.0));
  for (const CheckpointSection& s : reader->sections()) {
    if (s.name == "meta") {
      std::string_view in(s.payload);
      uint64_t epoch = 0;
      if (ReadU64(in, &epoch)) {
        std::printf("meta: %llu completed epochs\n",
                    static_cast<unsigned long long>(epoch));
      }
    } else if (s.name == "config") {
      std::printf("config: %s\n", s.payload.c_str());
    } else if (s.name == "model") {
      const auto tensors = DecodeTensors(s.payload);
      std::printf("model: %zu tensors:", tensors.size());
      for (const Tensor& t : tensors) {
        std::printf(" %s", ShapeToString(t.shape()).c_str());
      }
      std::printf("\n");
    } else if (IsQuantMatrixSection(s.name)) {
      PrintQuantSection(s.name, s.payload);
    } else if (s.name == "delta_meta") {
      std::string_view in(s.payload);
      uint64_t base_epoch = 0, seq = 0, events = 0;
      uint32_t base_crc = 0;
      if (ReadU64(in, &base_epoch) && ReadU32(in, &base_crc) &&
          ReadU64(in, &seq) && ReadU64(in, &events)) {
        std::printf(
            "delta_meta: seq %llu, %llu events, targets base epoch %llu "
            "(model crc %08x)\n",
            static_cast<unsigned long long>(seq),
            static_cast<unsigned long long>(events),
            static_cast<unsigned long long>(base_epoch), base_crc);
      }
    } else if (s.name.rfind("delta_rows_", 0) == 0) {
      std::string_view in(s.payload);
      uint64_t dim = 0, count = 0;
      if (ReadU64(in, &dim) && ReadU64(in, &count)) {
        std::printf("%s: %llu changed rows x dim %llu\n", s.name.c_str(),
                    static_cast<unsigned long long>(count),
                    static_cast<unsigned long long>(dim));
      }
    } else if (s.name == "delta_dense") {
      std::printf("delta_dense: full dense-parameter refresh (%zu bytes)\n",
                  s.payload.size());
    } else if (s.name == "loss_history") {
      std::string_view in(s.payload);
      uint64_t n = 0;
      if (ReadU64(in, &n)) {
        std::printf("loss_history: %llu epochs",
                    static_cast<unsigned long long>(n));
        double last = 0;
        for (uint64_t i = 0; i < n; ++i) {
          if (!ReadDouble(in, &last)) break;
        }
        if (n > 0) std::printf(", last mean loss %.6f", last);
        std::printf("\n");
      }
    }
  }
  return 0;
}

int Verify(const std::string& path) {
  auto reader = OpenOrExplain(path);
  if (!reader.ok()) return 1;
  std::printf("%s: OK (%zu sections, all checksums verified)\n", path.c_str(),
              reader->sections().size());
  return 0;
}

/// Delta-vs-base diff: shows exactly which embedding rows the delta rewrites
/// and by how much. Refuses (exit 2) when the delta's recorded provenance
/// (base epoch + model-section CRC) does not match the given base — a diff
/// against the wrong base would print deltas that were never trained from it.
int DiffDeltaAgainstBase(const CheckpointReader& delta_reader,
                         const std::string& delta_path,
                         const CheckpointReader& base_reader,
                         const std::string& base_path) {
  StatusOr<DeltaCheckpoint> delta = ParseDeltaCheckpoint(delta_reader);
  if (!delta.ok()) {
    std::fprintf(stderr, "%s: %s\n", delta_path.c_str(),
                 delta.status().ToString().c_str());
    return 1;
  }
  if (base_reader.version() != kCheckpointFormatVersion) {
    std::fprintf(stderr,
                 "%s: format v%u is not an fp32 training checkpoint; a "
                 "delta can only be diffed against its v%u base\n",
                 base_path.c_str(), base_reader.version(),
                 kCheckpointFormatVersion);
    return 2;
  }
  uint64_t base_epoch = 0;
  if (StatusOr<std::string> meta = base_reader.Section("meta"); meta.ok()) {
    std::string_view in(*meta);
    ReadU64(in, &base_epoch);
  }
  uint32_t base_crc = 0;
  for (const CheckpointSection& s : base_reader.sections()) {
    if (s.name == "model") base_crc = s.crc;
  }
  if (delta->base_epoch != base_epoch || delta->base_model_crc != base_crc) {
    std::fprintf(stderr,
                 "refusing to diff: %s targets base epoch %llu / model crc "
                 "%08x, but %s is epoch %llu / model crc %08x — this delta "
                 "was not trained from that base\n",
                 delta_path.c_str(),
                 static_cast<unsigned long long>(delta->base_epoch),
                 delta->base_model_crc, base_path.c_str(),
                 static_cast<unsigned long long>(base_epoch), base_crc);
    return 2;
  }
  std::printf("%s: delta seq %llu (%llu events) onto %s (epoch %llu)\n",
              delta_path.c_str(),
              static_cast<unsigned long long>(delta->seq),
              static_cast<unsigned long long>(delta->events_applied),
              base_path.c_str(),
              static_cast<unsigned long long>(base_epoch));
  StatusOr<std::string> model = base_reader.Section("model");
  const std::vector<Tensor> tensors =
      model.ok() ? DecodeTensors(*model) : std::vector<Tensor>{};
  const struct {
    const char* name;
    const EmbeddingRowDelta* rows;
    size_t tensor_index;
  } tables[] = {{"user", &delta->user, 0},
                {"poi", &delta->poi, 1},
                {"word", &delta->word, 2}};
  for (const auto& table : tables) {
    std::printf("%-6s %zu changed rows", table.name,
                table.rows->num_rows());
    // Against the matching base the per-row drift is well-defined; show it.
    if (table.tensor_index < tensors.size() && table.rows->num_rows() > 0) {
      const Tensor& t = tensors[table.tensor_index];
      double max_diff = 0.0;
      size_t comparable = 0;
      for (size_t i = 0; i < table.rows->num_rows(); ++i) {
        const int64_t r = table.rows->rows[i];
        if (r < 0 || static_cast<size_t>(r) >= t.rows() ||
            table.rows->dim != t.cols()) {
          continue;
        }
        ++comparable;
        const float* base_row = t.row(static_cast<size_t>(r));
        const float* new_row = table.rows->row_values(i);
        for (size_t j = 0; j < table.rows->dim; ++j) {
          max_diff = std::max(
              max_diff, std::abs(static_cast<double>(new_row[j]) -
                                 static_cast<double>(base_row[j])));
        }
      }
      std::printf(" (%zu comparable, max |delta| %.3e)", comparable,
                  max_diff);
    }
    std::printf("\n");
  }
  std::printf("dense  %s\n", delta->dense_params.empty()
                                 ? "unchanged"
                                 : "full refresh");
  return 0;
}

int Diff(const std::string& a_path, const std::string& b_path) {
  auto a = OpenOrExplain(a_path);
  auto b = OpenOrExplain(b_path);
  if (!a.ok() || !b.ok()) return 1;
  const bool a_delta = a->version() == kDeltaCheckpointFormatVersion;
  const bool b_delta = b->version() == kDeltaCheckpointFormatVersion;
  if (a_delta != b_delta) {
    // Exactly one side is a streaming delta: diff it against the base it
    // names (argument order doesn't matter).
    return a_delta ? DiffDeltaAgainstBase(*a, a_path, *b, b_path)
                   : DiffDeltaAgainstBase(*b, b_path, *a, a_path);
  }
  int differences = 0;
  std::vector<std::string> names;
  for (const CheckpointSection& s : a->sections()) names.push_back(s.name);
  for (const CheckpointSection& s : b->sections()) {
    if (!a->HasSection(s.name)) names.push_back(s.name);
  }
  for (const std::string& name : names) {
    if (!a->HasSection(name) || !b->HasSection(name)) {
      std::printf("%-16s only in %s\n", name.c_str(),
                  a->HasSection(name) ? a_path.c_str() : b_path.c_str());
      ++differences;
      continue;
    }
    const std::string pa = a->Section(name).value();
    const std::string pb = b->Section(name).value();
    if (pa == pb) {
      std::printf("%-16s identical (%zu bytes)\n", name.c_str(), pa.size());
      continue;
    }
    ++differences;
    if (name == "model") {
      const auto ta = DecodeTensors(pa);
      const auto tb = DecodeTensors(pb);
      if (ta.size() != tb.size()) {
        std::printf("%-16s differs: %zu vs %zu tensors\n", name.c_str(),
                    ta.size(), tb.size());
        continue;
      }
      std::printf("%-16s differs in values:\n", name.c_str());
      for (size_t i = 0; i < ta.size(); ++i) {
        if (!ta[i].SameShape(tb[i])) {
          std::printf("  tensor %zu: shape %s vs %s\n", i,
                      ShapeToString(ta[i].shape()).c_str(),
                      ShapeToString(tb[i].shape()).c_str());
          continue;
        }
        double max_diff = 0;
        size_t changed = 0;
        for (size_t j = 0; j < ta[i].size(); ++j) {
          const double d = std::abs(static_cast<double>(ta[i][j]) - tb[i][j]);
          if (d > 0) ++changed;
          if (d > max_diff) max_diff = d;
        }
        std::printf("  tensor %zu %s: %zu/%zu values differ, max |delta| %.3e\n",
                    i, ShapeToString(ta[i].shape()).c_str(), changed,
                    ta[i].size(), max_diff);
      }
    } else {
      std::printf("%-16s differs (%zu vs %zu bytes)\n", name.c_str(),
                  pa.size(), pb.size());
    }
  }
  // Footprint summary: with one fp32 checkpoint and one quantized artifact
  // this line is the bytes-shrink headline across precisions.
  const size_t bytes_a = PayloadBytes(*a);
  const size_t bytes_b = PayloadBytes(*b);
  std::printf("footprint: v%u %zu bytes vs v%u %zu bytes (%.2fx)\n",
              a->version(), bytes_a, b->version(), bytes_b,
              bytes_b > 0 ? static_cast<double>(bytes_a) /
                                static_cast<double>(bytes_b)
                          : 0.0);
  std::printf("%d section(s) differ\n", differences);
  return differences == 0 ? 0 : 1;
}

int Latest(const std::string& dir) {
  auto path = FindLatestValidCheckpoint(*Env::Default(), dir);
  if (!path.ok()) {
    std::fprintf(stderr, "%s\n", path.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", path->c_str());
  return 0;
}

int LatestDelta(const std::string& dir) {
  auto path = FindLatestValidDelta(*Env::Default(), dir);
  if (!path.ok()) {
    std::fprintf(stderr, "%s\n", path.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", path->c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return Usage(flags);
  if (flags.Has("help")) {
    std::fputs(HelpText(flags).c_str(), stdout);
    return 0;
  }
  const auto& args = flags.positional();
  if (args.empty()) return Usage(flags);
  const std::string& cmd = args[0];
  if (cmd == "list" && args.size() == 2) return List(args[1]);
  if (cmd == "verify" && args.size() == 2) return Verify(args[1]);
  if (cmd == "diff" && args.size() == 3) return Diff(args[1], args[2]);
  if (cmd == "latest" && args.size() == 2) return Latest(args[1]);
  if (cmd == "latest-delta" && args.size() == 2) return LatestDelta(args[1]);
  return Usage(flags);
}
