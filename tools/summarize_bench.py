#!/usr/bin/env python3
"""Summarises bench output into the headline numbers EXPERIMENTS.md cites.

Usage: tools/summarize_bench.py [bench_output.txt | micro_*.json ...]

Text arguments are parsed as figure/table bench transcripts; ``.json``
arguments are the micro-benchmark emissions of bench/micro_matmul and
bench/micro_topk (``--out=<prefix>`` writes ``<prefix>micro_*.json``).
Purely a convenience for maintaining the paper-vs-measured tables; the
canonical data is the bench output itself.
"""
import json
import re
import sys


def summarize_micro(path: str, data: dict) -> None:
    """Prints per-kernel throughput and the serial-vs-parallel speedups of a
    micro-benchmark JSON file."""
    print(f"\n### {data.get('bench', path)} (threads={data.get('threads', '?')})")
    for row in data.get("results", []):
        # Shape columns vary per bench: GEMM uses n/k/m, the all-reduce bench
        # rows/dim/touched, table2 workers, micro_quant pairs.
        shape = "x".join(
            str(row[d])
            for d in ("n", "k", "m", "rows", "dim", "touched", "workers", "pairs")
            if d in row
        )
        line = f"  {row['kernel']:<16} {shape:<20}"
        if "gflops" in row:
            line += f" {row['gflops']:9.2f} GFLOP/s"
        line += f" {row['seconds']:.6f}s"
        for key, value in row.items():
            if key.startswith("speedup_vs_"):
                line += f"  {value:6.2f}x vs {key[len('speedup_vs_'):]}"
        print(line)
    # micro_quant extras: footprint shrink and quantization fidelity.
    if "bytes" in data:
        b = data["bytes"]
        print(
            f"  embeddings: {b['int8_embeddings']} bytes int8"
            f" vs {b['fp32_embeddings']} fp32 ({b['shrink']:.2f}x smaller)"
        )
    if "fidelity" in data:
        f = data["fidelity"]
        ks = sorted(
            int(k[len("overlap"):]) for k in f if k.startswith("overlap")
        )
        for k in ks:
            print(
                f"  @{k}: HR {f[f'hr{k}_ref']:.4f} -> {f[f'hr{k}_cand']:.4f}"
                f"  NDCG {f[f'ndcg{k}_ref']:.4f} -> {f[f'ndcg{k}_cand']:.4f}"
                f"  overlap {f[f'overlap{k}']:.4f}"
            )
        print(
            f"  score delta: max {f['max_abs_score_delta']:.3e}"
            f" mean {f['mean_abs_score_delta']:.3e}"
        )


def summarize_serve(path: str, data: dict) -> None:
    """Prints the serve_loadgen rows: throughput/latency per serving mode,
    plus the epoll core's allocation and syscall rates and the open-loop
    dropped/late accounting."""
    print(f"\n### {data.get('bench', path)} (threads={data.get('threads', '?')})")
    for row in data.get("results", []):
        line = (
            f"  {row['kernel']:<18} [{row.get('mode', '?'):<8}]"
            f" conns={row.get('connections', row.get('clients', '?')):<5}"
            f" {row['qps']:>9.1f} qps"
            f"  p50 {row['p50_ms']:7.3f}ms  p99 {row['p99_ms']:7.3f}ms"
        )
        if "allocs_per_req" in row:
            line += f"  {row['allocs_per_req']:6.1f} alloc/req"
            line += f"  {row['sys_per_req']:5.2f} sys/req"
        if "hot_allocs_per_hit" in row:
            line += f"  hot={row['hot_allocs_per_hit']:.2f} alloc/hit"
        if "dropped" in row:
            line += f"  dropped={row['dropped']} late={row['late']}"
        if "speedup_vs_nobatch" in row:
            line += f"  {row['speedup_vs_nobatch']:5.2f}x vs nobatch"
        print(line)


def main() -> None:
    paths = sys.argv[1:] if len(sys.argv) > 1 else ["bench_output.txt"]
    json_paths = [p for p in paths if p.endswith(".json")]
    for p in json_paths:
        with open(p) as f:
            data = json.load(f)
        if data.get("bench") == "serve_loadgen":
            summarize_serve(p, data)
        else:
            summarize_micro(p, data)
    text_paths = [p for p in paths if not p.endswith(".json")]
    if not text_paths:
        return
    text = "".join(open(p).read() for p in text_paths)

    # Per-figure Recall tables: "== Recall ==" blocks under each [figN] tag.
    for tag in re.findall(r"^\[(\w+)\].*$", text, re.M):
        pass

    sections = re.split(r"^(\[[\w]+\].*)$", text, flags=re.M)
    current = None
    for chunk in sections:
        if chunk.startswith("["):
            current = chunk.strip()
            print(f"\n### {current}")
            continue
        if current is None:
            continue
        m = re.search(r"== Recall ==\n(.*?)\n\n", chunk, re.S)
        if m:
            lines = m.group(1).strip().splitlines()
            print("  Recall@10 ranking:")
            rows = []
            for line in lines[2:]:
                parts = line.split()
                if len(parts) >= 6:
                    rows.append((parts[0], float(parts[-1])))
            for name, r10 in sorted(rows, key=lambda t: -t[1]):
                print(f"    {name:<16} {r10:.4f}")
        m = re.search(r"best \w+ per metric.*?\n((?:  .*\n)+)", chunk)
        if m:
            print("  optima:")
            print(m.group(1).rstrip())


if __name__ == "__main__":
    main()
