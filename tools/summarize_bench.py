#!/usr/bin/env python3
"""Summarises bench_output.txt into the headline numbers EXPERIMENTS.md cites.

Usage: tools/summarize_bench.py [bench_output.txt]

Purely a convenience for maintaining the paper-vs-measured tables; the
canonical data is the bench output itself.
"""
import re
import sys


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    text = open(path).read()

    # Per-figure Recall tables: "== Recall ==" blocks under each [figN] tag.
    for tag in re.findall(r"^\[(\w+)\].*$", text, re.M):
        pass

    sections = re.split(r"^(\[[\w]+\].*)$", text, flags=re.M)
    current = None
    for chunk in sections:
        if chunk.startswith("["):
            current = chunk.strip()
            print(f"\n### {current}")
            continue
        if current is None:
            continue
        m = re.search(r"== Recall ==\n(.*?)\n\n", chunk, re.S)
        if m:
            lines = m.group(1).strip().splitlines()
            print("  Recall@10 ranking:")
            rows = []
            for line in lines[2:]:
                parts = line.split()
                if len(parts) >= 6:
                    rows.append((parts[0], float(parts[-1])))
            for name, r10 in sorted(rows, key=lambda t: -t[1]):
                print(f"    {name:<16} {r10:.4f}")
        m = re.search(r"best \w+ per metric.*?\n((?:  .*\n)+)", chunk)
        if m:
            print("  optima:")
            print(m.group(1).rstrip())


if __name__ == "__main__":
    main()
