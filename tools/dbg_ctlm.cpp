
#include <cstdio>
#include "baselines/ctlm.h"
#include "baselines/st_lda.h"
#include "bench/bench_util.h"
using namespace sttr;

// Scores with pluggable formula to isolate the CTLM defect.
class CtlmProbe : public PoiScorer {
 public:
  CtlmProbe(const baselines::Ctlm& m, const Dataset& d, int mode)
      : m_(m), d_(d), mode_(mode) {}
  double Score(UserId user, PoiId poi) const override {
    const auto& words = d_.poi(poi).words;
    const auto& theta = m_.user_topics()[static_cast<size_t>(user)];
    const size_t K = theta.size();
    double score = 0;
    for (size_t z = 0; z < K; ++z) {
      double mean_word = 0;
      for (WordId w : words) {
        const size_t wi = static_cast<size_t>(w);
        double phi = 0;
        if (mode_ == 0) {                       // common only
          phi = m_.common_phi()[z][wi];
        } else if (mode_ == 1) {                // spec only (target city 0)
          phi = m_.specific_phi()[0][z][wi];
        } else {                                // blend
          const double pc = m_.CommonProbability(z, 0);
          phi = pc * m_.common_phi()[z][wi] +
                (1 - pc) * m_.specific_phi()[0][z][wi];
        }
        mean_word += phi;
      }
      mean_word /= static_cast<double>(words.size());
      const double mix = 0.7 * theta[z] + 0.3 * m_.crowd()[z];
      score += mix * mean_word;
    }
    return score;
  }
 private:
  const baselines::Ctlm& m_;
  const Dataset& d_;
  int mode_;
};

int main(int argc, char** argv) {
  auto opts = bench::BenchOptions::Parse(argc, argv);
  auto ws = bench::MakeWorld("foursquare", opts);
  EvalConfig ec;
  baselines::Ctlm m(16, 120);
  STTR_CHECK_OK(m.Fit(ws.world.dataset, ws.split));
  for (int mode : {0, 1, 2}) {
    CtlmProbe probe(m, ws.world.dataset, mode);
    auto r = EvaluateRanking(ws.world.dataset, ws.split, probe, ec);
    std::printf("mode=%d R@10=%.4f\n", mode, r.At(10).recall);
  }
  // How much switch mass is common, per city?
  for (CityId c = 0; c < 2; ++c) {
    double avg = 0;
    for (size_t z = 0; z < 16; ++z) avg += m.CommonProbability(z, c);
    std::printf("city %d mean p_common = %.3f\n", c, avg / 16);
  }
  return 0;
}
