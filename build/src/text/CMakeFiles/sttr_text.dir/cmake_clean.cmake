file(REMOVE_RECURSE
  "CMakeFiles/sttr_text.dir/context_graph.cc.o"
  "CMakeFiles/sttr_text.dir/context_graph.cc.o.d"
  "CMakeFiles/sttr_text.dir/vocabulary.cc.o"
  "CMakeFiles/sttr_text.dir/vocabulary.cc.o.d"
  "libsttr_text.a"
  "libsttr_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttr_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
