# Empty compiler generated dependencies file for sttr_text.
# This may be replaced when dependencies are built.
