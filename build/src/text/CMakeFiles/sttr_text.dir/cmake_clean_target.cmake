file(REMOVE_RECURSE
  "libsttr_text.a"
)
