
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/context_graph.cc" "src/text/CMakeFiles/sttr_text.dir/context_graph.cc.o" "gcc" "src/text/CMakeFiles/sttr_text.dir/context_graph.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/text/CMakeFiles/sttr_text.dir/vocabulary.cc.o" "gcc" "src/text/CMakeFiles/sttr_text.dir/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sttr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
