# Empty compiler generated dependencies file for sttr_tensor.
# This may be replaced when dependencies are built.
