file(REMOVE_RECURSE
  "CMakeFiles/sttr_tensor.dir/tensor.cc.o"
  "CMakeFiles/sttr_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/sttr_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/sttr_tensor.dir/tensor_ops.cc.o.d"
  "libsttr_tensor.a"
  "libsttr_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttr_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
