file(REMOVE_RECURSE
  "libsttr_tensor.a"
)
