file(REMOVE_RECURSE
  "CMakeFiles/sttr_transfer.dir/mmd.cc.o"
  "CMakeFiles/sttr_transfer.dir/mmd.cc.o.d"
  "libsttr_transfer.a"
  "libsttr_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttr_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
