# Empty compiler generated dependencies file for sttr_transfer.
# This may be replaced when dependencies are built.
