file(REMOVE_RECURSE
  "libsttr_transfer.a"
)
