file(REMOVE_RECURSE
  "libsttr_util.a"
)
