# Empty compiler generated dependencies file for sttr_util.
# This may be replaced when dependencies are built.
