file(REMOVE_RECURSE
  "CMakeFiles/sttr_util.dir/check.cc.o"
  "CMakeFiles/sttr_util.dir/check.cc.o.d"
  "CMakeFiles/sttr_util.dir/flags.cc.o"
  "CMakeFiles/sttr_util.dir/flags.cc.o.d"
  "CMakeFiles/sttr_util.dir/logging.cc.o"
  "CMakeFiles/sttr_util.dir/logging.cc.o.d"
  "CMakeFiles/sttr_util.dir/rng.cc.o"
  "CMakeFiles/sttr_util.dir/rng.cc.o.d"
  "CMakeFiles/sttr_util.dir/status.cc.o"
  "CMakeFiles/sttr_util.dir/status.cc.o.d"
  "CMakeFiles/sttr_util.dir/string_util.cc.o"
  "CMakeFiles/sttr_util.dir/string_util.cc.o.d"
  "CMakeFiles/sttr_util.dir/svg_chart.cc.o"
  "CMakeFiles/sttr_util.dir/svg_chart.cc.o.d"
  "CMakeFiles/sttr_util.dir/table.cc.o"
  "CMakeFiles/sttr_util.dir/table.cc.o.d"
  "CMakeFiles/sttr_util.dir/thread_pool.cc.o"
  "CMakeFiles/sttr_util.dir/thread_pool.cc.o.d"
  "libsttr_util.a"
  "libsttr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
