file(REMOVE_RECURSE
  "libsttr_data.a"
)
