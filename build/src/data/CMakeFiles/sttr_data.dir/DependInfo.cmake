
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/sttr_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/sttr_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/io.cc" "src/data/CMakeFiles/sttr_data.dir/io.cc.o" "gcc" "src/data/CMakeFiles/sttr_data.dir/io.cc.o.d"
  "/root/repo/src/data/split.cc" "src/data/CMakeFiles/sttr_data.dir/split.cc.o" "gcc" "src/data/CMakeFiles/sttr_data.dir/split.cc.o.d"
  "/root/repo/src/data/synth/lexicon.cc" "src/data/CMakeFiles/sttr_data.dir/synth/lexicon.cc.o" "gcc" "src/data/CMakeFiles/sttr_data.dir/synth/lexicon.cc.o.d"
  "/root/repo/src/data/synth/world_generator.cc" "src/data/CMakeFiles/sttr_data.dir/synth/world_generator.cc.o" "gcc" "src/data/CMakeFiles/sttr_data.dir/synth/world_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/sttr_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sttr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sttr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
