# Empty dependencies file for sttr_data.
# This may be replaced when dependencies are built.
