file(REMOVE_RECURSE
  "CMakeFiles/sttr_data.dir/dataset.cc.o"
  "CMakeFiles/sttr_data.dir/dataset.cc.o.d"
  "CMakeFiles/sttr_data.dir/io.cc.o"
  "CMakeFiles/sttr_data.dir/io.cc.o.d"
  "CMakeFiles/sttr_data.dir/split.cc.o"
  "CMakeFiles/sttr_data.dir/split.cc.o.d"
  "CMakeFiles/sttr_data.dir/synth/lexicon.cc.o"
  "CMakeFiles/sttr_data.dir/synth/lexicon.cc.o.d"
  "CMakeFiles/sttr_data.dir/synth/world_generator.cc.o"
  "CMakeFiles/sttr_data.dir/synth/world_generator.cc.o.d"
  "libsttr_data.a"
  "libsttr_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttr_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
