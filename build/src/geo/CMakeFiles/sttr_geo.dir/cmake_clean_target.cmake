file(REMOVE_RECURSE
  "libsttr_geo.a"
)
