file(REMOVE_RECURSE
  "CMakeFiles/sttr_geo.dir/density_resampler.cc.o"
  "CMakeFiles/sttr_geo.dir/density_resampler.cc.o.d"
  "CMakeFiles/sttr_geo.dir/geo.cc.o"
  "CMakeFiles/sttr_geo.dir/geo.cc.o.d"
  "CMakeFiles/sttr_geo.dir/grid.cc.o"
  "CMakeFiles/sttr_geo.dir/grid.cc.o.d"
  "CMakeFiles/sttr_geo.dir/region_segmentation.cc.o"
  "CMakeFiles/sttr_geo.dir/region_segmentation.cc.o.d"
  "libsttr_geo.a"
  "libsttr_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttr_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
