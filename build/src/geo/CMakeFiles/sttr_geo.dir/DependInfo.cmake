
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/density_resampler.cc" "src/geo/CMakeFiles/sttr_geo.dir/density_resampler.cc.o" "gcc" "src/geo/CMakeFiles/sttr_geo.dir/density_resampler.cc.o.d"
  "/root/repo/src/geo/geo.cc" "src/geo/CMakeFiles/sttr_geo.dir/geo.cc.o" "gcc" "src/geo/CMakeFiles/sttr_geo.dir/geo.cc.o.d"
  "/root/repo/src/geo/grid.cc" "src/geo/CMakeFiles/sttr_geo.dir/grid.cc.o" "gcc" "src/geo/CMakeFiles/sttr_geo.dir/grid.cc.o.d"
  "/root/repo/src/geo/region_segmentation.cc" "src/geo/CMakeFiles/sttr_geo.dir/region_segmentation.cc.o" "gcc" "src/geo/CMakeFiles/sttr_geo.dir/region_segmentation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sttr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
