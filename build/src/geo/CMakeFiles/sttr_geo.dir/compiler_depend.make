# Empty compiler generated dependencies file for sttr_geo.
# This may be replaced when dependencies are built.
