# Empty compiler generated dependencies file for sttr_nn.
# This may be replaced when dependencies are built.
