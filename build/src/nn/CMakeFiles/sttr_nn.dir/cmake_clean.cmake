file(REMOVE_RECURSE
  "CMakeFiles/sttr_nn.dir/layers.cc.o"
  "CMakeFiles/sttr_nn.dir/layers.cc.o.d"
  "CMakeFiles/sttr_nn.dir/module.cc.o"
  "CMakeFiles/sttr_nn.dir/module.cc.o.d"
  "CMakeFiles/sttr_nn.dir/optimizer.cc.o"
  "CMakeFiles/sttr_nn.dir/optimizer.cc.o.d"
  "libsttr_nn.a"
  "libsttr_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttr_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
