
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/sttr_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/sttr_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/sttr_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/sttr_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/sttr_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/sttr_nn.dir/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/sttr_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sttr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sttr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
