file(REMOVE_RECURSE
  "libsttr_nn.a"
)
