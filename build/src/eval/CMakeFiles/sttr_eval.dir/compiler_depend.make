# Empty compiler generated dependencies file for sttr_eval.
# This may be replaced when dependencies are built.
