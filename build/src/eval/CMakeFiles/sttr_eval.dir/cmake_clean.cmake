file(REMOVE_RECURSE
  "CMakeFiles/sttr_eval.dir/metrics.cc.o"
  "CMakeFiles/sttr_eval.dir/metrics.cc.o.d"
  "CMakeFiles/sttr_eval.dir/protocol.cc.o"
  "CMakeFiles/sttr_eval.dir/protocol.cc.o.d"
  "libsttr_eval.a"
  "libsttr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
