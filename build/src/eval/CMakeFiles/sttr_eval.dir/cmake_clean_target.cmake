file(REMOVE_RECURSE
  "libsttr_eval.a"
)
