
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/sttr_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/sttr_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/protocol.cc" "src/eval/CMakeFiles/sttr_eval.dir/protocol.cc.o" "gcc" "src/eval/CMakeFiles/sttr_eval.dir/protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/sttr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sttr_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sttr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sttr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
