file(REMOVE_RECURSE
  "libsttr_baselines.a"
)
