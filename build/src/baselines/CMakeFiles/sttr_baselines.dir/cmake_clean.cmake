file(REMOVE_RECURSE
  "CMakeFiles/sttr_baselines.dir/common.cc.o"
  "CMakeFiles/sttr_baselines.dir/common.cc.o.d"
  "CMakeFiles/sttr_baselines.dir/crcf.cc.o"
  "CMakeFiles/sttr_baselines.dir/crcf.cc.o.d"
  "CMakeFiles/sttr_baselines.dir/ctlm.cc.o"
  "CMakeFiles/sttr_baselines.dir/ctlm.cc.o.d"
  "CMakeFiles/sttr_baselines.dir/item_pop.cc.o"
  "CMakeFiles/sttr_baselines.dir/item_pop.cc.o.d"
  "CMakeFiles/sttr_baselines.dir/lce.cc.o"
  "CMakeFiles/sttr_baselines.dir/lce.cc.o.d"
  "CMakeFiles/sttr_baselines.dir/pace.cc.o"
  "CMakeFiles/sttr_baselines.dir/pace.cc.o.d"
  "CMakeFiles/sttr_baselines.dir/pr_uidt.cc.o"
  "CMakeFiles/sttr_baselines.dir/pr_uidt.cc.o.d"
  "CMakeFiles/sttr_baselines.dir/registry.cc.o"
  "CMakeFiles/sttr_baselines.dir/registry.cc.o.d"
  "CMakeFiles/sttr_baselines.dir/sh_cdl.cc.o"
  "CMakeFiles/sttr_baselines.dir/sh_cdl.cc.o.d"
  "CMakeFiles/sttr_baselines.dir/st_lda.cc.o"
  "CMakeFiles/sttr_baselines.dir/st_lda.cc.o.d"
  "libsttr_baselines.a"
  "libsttr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
