
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/common.cc" "src/baselines/CMakeFiles/sttr_baselines.dir/common.cc.o" "gcc" "src/baselines/CMakeFiles/sttr_baselines.dir/common.cc.o.d"
  "/root/repo/src/baselines/crcf.cc" "src/baselines/CMakeFiles/sttr_baselines.dir/crcf.cc.o" "gcc" "src/baselines/CMakeFiles/sttr_baselines.dir/crcf.cc.o.d"
  "/root/repo/src/baselines/ctlm.cc" "src/baselines/CMakeFiles/sttr_baselines.dir/ctlm.cc.o" "gcc" "src/baselines/CMakeFiles/sttr_baselines.dir/ctlm.cc.o.d"
  "/root/repo/src/baselines/item_pop.cc" "src/baselines/CMakeFiles/sttr_baselines.dir/item_pop.cc.o" "gcc" "src/baselines/CMakeFiles/sttr_baselines.dir/item_pop.cc.o.d"
  "/root/repo/src/baselines/lce.cc" "src/baselines/CMakeFiles/sttr_baselines.dir/lce.cc.o" "gcc" "src/baselines/CMakeFiles/sttr_baselines.dir/lce.cc.o.d"
  "/root/repo/src/baselines/pace.cc" "src/baselines/CMakeFiles/sttr_baselines.dir/pace.cc.o" "gcc" "src/baselines/CMakeFiles/sttr_baselines.dir/pace.cc.o.d"
  "/root/repo/src/baselines/pr_uidt.cc" "src/baselines/CMakeFiles/sttr_baselines.dir/pr_uidt.cc.o" "gcc" "src/baselines/CMakeFiles/sttr_baselines.dir/pr_uidt.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/baselines/CMakeFiles/sttr_baselines.dir/registry.cc.o" "gcc" "src/baselines/CMakeFiles/sttr_baselines.dir/registry.cc.o.d"
  "/root/repo/src/baselines/sh_cdl.cc" "src/baselines/CMakeFiles/sttr_baselines.dir/sh_cdl.cc.o" "gcc" "src/baselines/CMakeFiles/sttr_baselines.dir/sh_cdl.cc.o.d"
  "/root/repo/src/baselines/st_lda.cc" "src/baselines/CMakeFiles/sttr_baselines.dir/st_lda.cc.o" "gcc" "src/baselines/CMakeFiles/sttr_baselines.dir/st_lda.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sttr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sttr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sttr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sttr_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sttr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sttr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/transfer/CMakeFiles/sttr_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/sttr_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sttr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sttr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
