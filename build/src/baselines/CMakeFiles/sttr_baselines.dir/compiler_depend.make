# Empty compiler generated dependencies file for sttr_baselines.
# This may be replaced when dependencies are built.
