# Empty compiler generated dependencies file for sttr_core.
# This may be replaced when dependencies are built.
