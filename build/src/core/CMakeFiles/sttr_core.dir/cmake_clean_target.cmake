file(REMOVE_RECURSE
  "libsttr_core.a"
)
