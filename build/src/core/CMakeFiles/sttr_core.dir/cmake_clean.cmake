file(REMOVE_RECURSE
  "CMakeFiles/sttr_core.dir/parallel_trainer.cc.o"
  "CMakeFiles/sttr_core.dir/parallel_trainer.cc.o.d"
  "CMakeFiles/sttr_core.dir/recommender.cc.o"
  "CMakeFiles/sttr_core.dir/recommender.cc.o.d"
  "CMakeFiles/sttr_core.dir/st_transrec.cc.o"
  "CMakeFiles/sttr_core.dir/st_transrec.cc.o.d"
  "libsttr_core.a"
  "libsttr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
