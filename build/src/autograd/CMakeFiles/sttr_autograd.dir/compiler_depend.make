# Empty compiler generated dependencies file for sttr_autograd.
# This may be replaced when dependencies are built.
