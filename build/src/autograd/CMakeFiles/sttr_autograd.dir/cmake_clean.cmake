file(REMOVE_RECURSE
  "CMakeFiles/sttr_autograd.dir/ops.cc.o"
  "CMakeFiles/sttr_autograd.dir/ops.cc.o.d"
  "CMakeFiles/sttr_autograd.dir/variable.cc.o"
  "CMakeFiles/sttr_autograd.dir/variable.cc.o.d"
  "libsttr_autograd.a"
  "libsttr_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttr_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
