file(REMOVE_RECURSE
  "libsttr_autograd.a"
)
