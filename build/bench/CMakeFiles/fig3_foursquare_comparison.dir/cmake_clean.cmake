file(REMOVE_RECURSE
  "CMakeFiles/fig3_foursquare_comparison.dir/fig3_foursquare_comparison.cpp.o"
  "CMakeFiles/fig3_foursquare_comparison.dir/fig3_foursquare_comparison.cpp.o.d"
  "fig3_foursquare_comparison"
  "fig3_foursquare_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_foursquare_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
