# Empty compiler generated dependencies file for fig3_foursquare_comparison.
# This may be replaced when dependencies are built.
