# Empty compiler generated dependencies file for table3_case_study.
# This may be replaced when dependencies are built.
