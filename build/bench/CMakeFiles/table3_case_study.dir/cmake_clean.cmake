file(REMOVE_RECURSE
  "CMakeFiles/table3_case_study.dir/table3_case_study.cpp.o"
  "CMakeFiles/table3_case_study.dir/table3_case_study.cpp.o.d"
  "table3_case_study"
  "table3_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
