# Empty dependencies file for fig8_resample_rate_yelp.
# This may be replaced when dependencies are built.
