file(REMOVE_RECURSE
  "CMakeFiles/fig8_resample_rate_yelp.dir/fig8_resample_rate_yelp.cpp.o"
  "CMakeFiles/fig8_resample_rate_yelp.dir/fig8_resample_rate_yelp.cpp.o.d"
  "fig8_resample_rate_yelp"
  "fig8_resample_rate_yelp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_resample_rate_yelp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
