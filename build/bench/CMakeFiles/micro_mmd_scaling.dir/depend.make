# Empty dependencies file for micro_mmd_scaling.
# This may be replaced when dependencies are built.
