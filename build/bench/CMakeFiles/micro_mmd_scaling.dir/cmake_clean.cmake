file(REMOVE_RECURSE
  "CMakeFiles/micro_mmd_scaling.dir/micro_mmd_scaling.cpp.o"
  "CMakeFiles/micro_mmd_scaling.dir/micro_mmd_scaling.cpp.o.d"
  "micro_mmd_scaling"
  "micro_mmd_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mmd_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
