file(REMOVE_RECURSE
  "CMakeFiles/table1_dataset_stats.dir/table1_dataset_stats.cpp.o"
  "CMakeFiles/table1_dataset_stats.dir/table1_dataset_stats.cpp.o.d"
  "table1_dataset_stats"
  "table1_dataset_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_dataset_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
