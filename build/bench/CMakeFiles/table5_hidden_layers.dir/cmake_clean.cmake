file(REMOVE_RECURSE
  "CMakeFiles/table5_hidden_layers.dir/table5_hidden_layers.cpp.o"
  "CMakeFiles/table5_hidden_layers.dir/table5_hidden_layers.cpp.o.d"
  "table5_hidden_layers"
  "table5_hidden_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_hidden_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
