# Empty dependencies file for table5_hidden_layers.
# This may be replaced when dependencies are built.
