# Empty compiler generated dependencies file for table2_parallel_training.
# This may be replaced when dependencies are built.
