file(REMOVE_RECURSE
  "CMakeFiles/table2_parallel_training.dir/table2_parallel_training.cpp.o"
  "CMakeFiles/table2_parallel_training.dir/table2_parallel_training.cpp.o.d"
  "table2_parallel_training"
  "table2_parallel_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_parallel_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
