file(REMOVE_RECURSE
  "CMakeFiles/extra_segmentation_ablation.dir/extra_segmentation_ablation.cpp.o"
  "CMakeFiles/extra_segmentation_ablation.dir/extra_segmentation_ablation.cpp.o.d"
  "extra_segmentation_ablation"
  "extra_segmentation_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_segmentation_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
