# Empty compiler generated dependencies file for extra_segmentation_ablation.
# This may be replaced when dependencies are built.
