# Empty compiler generated dependencies file for extra_embedding_alignment.
# This may be replaced when dependencies are built.
