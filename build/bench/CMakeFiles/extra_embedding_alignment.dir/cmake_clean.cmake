file(REMOVE_RECURSE
  "CMakeFiles/extra_embedding_alignment.dir/extra_embedding_alignment.cpp.o"
  "CMakeFiles/extra_embedding_alignment.dir/extra_embedding_alignment.cpp.o.d"
  "extra_embedding_alignment"
  "extra_embedding_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_embedding_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
