# Empty dependencies file for extra_embedding_alignment.
# This may be replaced when dependencies are built.
