file(REMOVE_RECURSE
  "../lib/libsttr_bench_util.a"
)
