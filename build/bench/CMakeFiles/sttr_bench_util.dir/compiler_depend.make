# Empty compiler generated dependencies file for sttr_bench_util.
# This may be replaced when dependencies are built.
