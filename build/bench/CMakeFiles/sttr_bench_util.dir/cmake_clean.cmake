file(REMOVE_RECURSE
  "../lib/libsttr_bench_util.a"
  "../lib/libsttr_bench_util.pdb"
  "CMakeFiles/sttr_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/sttr_bench_util.dir/bench_util.cc.o.d"
  "CMakeFiles/sttr_bench_util.dir/sweep_util.cc.o"
  "CMakeFiles/sttr_bench_util.dir/sweep_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttr_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
