# Empty compiler generated dependencies file for fig6_ablation_yelp.
# This may be replaced when dependencies are built.
