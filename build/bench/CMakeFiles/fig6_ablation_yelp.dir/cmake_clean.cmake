file(REMOVE_RECURSE
  "CMakeFiles/fig6_ablation_yelp.dir/fig6_ablation_yelp.cpp.o"
  "CMakeFiles/fig6_ablation_yelp.dir/fig6_ablation_yelp.cpp.o.d"
  "fig6_ablation_yelp"
  "fig6_ablation_yelp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ablation_yelp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
