# Empty compiler generated dependencies file for extra_transfer_ablation.
# This may be replaced when dependencies are built.
