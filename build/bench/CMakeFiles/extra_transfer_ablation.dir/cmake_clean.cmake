file(REMOVE_RECURSE
  "CMakeFiles/extra_transfer_ablation.dir/extra_transfer_ablation.cpp.o"
  "CMakeFiles/extra_transfer_ablation.dir/extra_transfer_ablation.cpp.o.d"
  "extra_transfer_ablation"
  "extra_transfer_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_transfer_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
