file(REMOVE_RECURSE
  "CMakeFiles/fig5_ablation_foursquare.dir/fig5_ablation_foursquare.cpp.o"
  "CMakeFiles/fig5_ablation_foursquare.dir/fig5_ablation_foursquare.cpp.o.d"
  "fig5_ablation_foursquare"
  "fig5_ablation_foursquare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ablation_foursquare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
