# Empty dependencies file for fig5_ablation_foursquare.
# This may be replaced when dependencies are built.
