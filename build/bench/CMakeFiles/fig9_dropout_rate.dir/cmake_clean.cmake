file(REMOVE_RECURSE
  "CMakeFiles/fig9_dropout_rate.dir/fig9_dropout_rate.cpp.o"
  "CMakeFiles/fig9_dropout_rate.dir/fig9_dropout_rate.cpp.o.d"
  "fig9_dropout_rate"
  "fig9_dropout_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_dropout_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
