# Empty compiler generated dependencies file for fig9_dropout_rate.
# This may be replaced when dependencies are built.
