file(REMOVE_RECURSE
  "CMakeFiles/extra_region_delta_sweep.dir/extra_region_delta_sweep.cpp.o"
  "CMakeFiles/extra_region_delta_sweep.dir/extra_region_delta_sweep.cpp.o.d"
  "extra_region_delta_sweep"
  "extra_region_delta_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_region_delta_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
