# Empty dependencies file for extra_region_delta_sweep.
# This may be replaced when dependencies are built.
