# Empty dependencies file for fig4_yelp_comparison.
# This may be replaced when dependencies are built.
