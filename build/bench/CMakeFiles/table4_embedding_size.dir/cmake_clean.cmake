file(REMOVE_RECURSE
  "CMakeFiles/table4_embedding_size.dir/table4_embedding_size.cpp.o"
  "CMakeFiles/table4_embedding_size.dir/table4_embedding_size.cpp.o.d"
  "table4_embedding_size"
  "table4_embedding_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_embedding_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
