# Empty dependencies file for table4_embedding_size.
# This may be replaced when dependencies are built.
