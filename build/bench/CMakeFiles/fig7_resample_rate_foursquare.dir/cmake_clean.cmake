file(REMOVE_RECURSE
  "CMakeFiles/fig7_resample_rate_foursquare.dir/fig7_resample_rate_foursquare.cpp.o"
  "CMakeFiles/fig7_resample_rate_foursquare.dir/fig7_resample_rate_foursquare.cpp.o.d"
  "fig7_resample_rate_foursquare"
  "fig7_resample_rate_foursquare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_resample_rate_foursquare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
