# Empty compiler generated dependencies file for fig7_resample_rate_foursquare.
# This may be replaced when dependencies are built.
