# Empty dependencies file for region_explorer.
# This may be replaced when dependencies are built.
