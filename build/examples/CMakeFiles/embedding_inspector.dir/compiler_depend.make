# Empty compiler generated dependencies file for embedding_inspector.
# This may be replaced when dependencies are built.
