file(REMOVE_RECURSE
  "CMakeFiles/embedding_inspector.dir/embedding_inspector.cpp.o"
  "CMakeFiles/embedding_inspector.dir/embedding_inspector.cpp.o.d"
  "embedding_inspector"
  "embedding_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
