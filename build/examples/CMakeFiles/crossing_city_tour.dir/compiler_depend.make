# Empty compiler generated dependencies file for crossing_city_tour.
# This may be replaced when dependencies are built.
