file(REMOVE_RECURSE
  "CMakeFiles/crossing_city_tour.dir/crossing_city_tour.cpp.o"
  "CMakeFiles/crossing_city_tour.dir/crossing_city_tour.cpp.o.d"
  "crossing_city_tour"
  "crossing_city_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossing_city_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
