file(REMOVE_RECURSE
  "CMakeFiles/dataset_workflow.dir/dataset_workflow.cpp.o"
  "CMakeFiles/dataset_workflow.dir/dataset_workflow.cpp.o.d"
  "dataset_workflow"
  "dataset_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
