# Empty compiler generated dependencies file for dataset_workflow.
# This may be replaced when dependencies are built.
