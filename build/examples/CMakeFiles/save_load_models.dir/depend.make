# Empty dependencies file for save_load_models.
# This may be replaced when dependencies are built.
