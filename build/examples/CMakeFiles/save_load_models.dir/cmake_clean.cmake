file(REMOVE_RECURSE
  "CMakeFiles/save_load_models.dir/save_load_models.cpp.o"
  "CMakeFiles/save_load_models.dir/save_load_models.cpp.o.d"
  "save_load_models"
  "save_load_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/save_load_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
