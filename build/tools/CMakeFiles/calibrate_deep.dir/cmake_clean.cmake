file(REMOVE_RECURSE
  "CMakeFiles/calibrate_deep.dir/calibrate_deep.cpp.o"
  "CMakeFiles/calibrate_deep.dir/calibrate_deep.cpp.o.d"
  "calibrate_deep"
  "calibrate_deep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_deep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
