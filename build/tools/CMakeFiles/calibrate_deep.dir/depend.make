# Empty dependencies file for calibrate_deep.
# This may be replaced when dependencies are built.
