# Empty dependencies file for eval_baselines.
# This may be replaced when dependencies are built.
