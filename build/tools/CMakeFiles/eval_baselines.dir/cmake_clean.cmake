file(REMOVE_RECURSE
  "CMakeFiles/eval_baselines.dir/eval_baselines.cpp.o"
  "CMakeFiles/eval_baselines.dir/eval_baselines.cpp.o.d"
  "eval_baselines"
  "eval_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
