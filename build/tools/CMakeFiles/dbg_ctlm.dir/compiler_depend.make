# Empty compiler generated dependencies file for dbg_ctlm.
# This may be replaced when dependencies are built.
