file(REMOVE_RECURSE
  "CMakeFiles/dbg_ctlm.dir/dbg_ctlm.cpp.o"
  "CMakeFiles/dbg_ctlm.dir/dbg_ctlm.cpp.o.d"
  "dbg_ctlm"
  "dbg_ctlm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbg_ctlm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
