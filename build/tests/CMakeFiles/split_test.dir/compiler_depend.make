# Empty compiler generated dependencies file for split_test.
# This may be replaced when dependencies are built.
