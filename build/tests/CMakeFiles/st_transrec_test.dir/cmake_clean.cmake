file(REMOVE_RECURSE
  "CMakeFiles/st_transrec_test.dir/core/st_transrec_test.cc.o"
  "CMakeFiles/st_transrec_test.dir/core/st_transrec_test.cc.o.d"
  "st_transrec_test"
  "st_transrec_test.pdb"
  "st_transrec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_transrec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
