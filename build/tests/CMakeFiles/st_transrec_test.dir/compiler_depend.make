# Empty compiler generated dependencies file for st_transrec_test.
# This may be replaced when dependencies are built.
