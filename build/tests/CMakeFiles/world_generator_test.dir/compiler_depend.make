# Empty compiler generated dependencies file for world_generator_test.
# This may be replaced when dependencies are built.
