# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for world_generator_test.
