file(REMOVE_RECURSE
  "CMakeFiles/world_generator_test.dir/data/world_generator_test.cc.o"
  "CMakeFiles/world_generator_test.dir/data/world_generator_test.cc.o.d"
  "world_generator_test"
  "world_generator_test.pdb"
  "world_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/world_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
