file(REMOVE_RECURSE
  "CMakeFiles/region_segmentation_test.dir/geo/region_segmentation_test.cc.o"
  "CMakeFiles/region_segmentation_test.dir/geo/region_segmentation_test.cc.o.d"
  "region_segmentation_test"
  "region_segmentation_test.pdb"
  "region_segmentation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_segmentation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
