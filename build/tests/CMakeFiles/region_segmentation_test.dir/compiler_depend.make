# Empty compiler generated dependencies file for region_segmentation_test.
# This may be replaced when dependencies are built.
