file(REMOVE_RECURSE
  "CMakeFiles/context_graph_test.dir/text/context_graph_test.cc.o"
  "CMakeFiles/context_graph_test.dir/text/context_graph_test.cc.o.d"
  "context_graph_test"
  "context_graph_test.pdb"
  "context_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
