# Empty dependencies file for context_graph_test.
# This may be replaced when dependencies are built.
