# Empty compiler generated dependencies file for density_resampler_test.
# This may be replaced when dependencies are built.
