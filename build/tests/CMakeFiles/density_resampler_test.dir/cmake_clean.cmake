file(REMOVE_RECURSE
  "CMakeFiles/density_resampler_test.dir/geo/density_resampler_test.cc.o"
  "CMakeFiles/density_resampler_test.dir/geo/density_resampler_test.cc.o.d"
  "density_resampler_test"
  "density_resampler_test.pdb"
  "density_resampler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/density_resampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
