file(REMOVE_RECURSE
  "CMakeFiles/save_load_test.dir/core/save_load_test.cc.o"
  "CMakeFiles/save_load_test.dir/core/save_load_test.cc.o.d"
  "save_load_test"
  "save_load_test.pdb"
  "save_load_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/save_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
