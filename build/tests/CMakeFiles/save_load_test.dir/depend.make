# Empty dependencies file for save_load_test.
# This may be replaced when dependencies are built.
