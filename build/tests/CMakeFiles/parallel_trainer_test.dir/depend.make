# Empty dependencies file for parallel_trainer_test.
# This may be replaced when dependencies are built.
