file(REMOVE_RECURSE
  "CMakeFiles/parallel_trainer_test.dir/core/parallel_trainer_test.cc.o"
  "CMakeFiles/parallel_trainer_test.dir/core/parallel_trainer_test.cc.o.d"
  "parallel_trainer_test"
  "parallel_trainer_test.pdb"
  "parallel_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
