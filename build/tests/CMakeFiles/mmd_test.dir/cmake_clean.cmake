file(REMOVE_RECURSE
  "CMakeFiles/mmd_test.dir/transfer/mmd_test.cc.o"
  "CMakeFiles/mmd_test.dir/transfer/mmd_test.cc.o.d"
  "mmd_test"
  "mmd_test.pdb"
  "mmd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
