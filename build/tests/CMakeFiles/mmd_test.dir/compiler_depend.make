# Empty compiler generated dependencies file for mmd_test.
# This may be replaced when dependencies are built.
