
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transfer/mmd_test.cc" "tests/CMakeFiles/mmd_test.dir/transfer/mmd_test.cc.o" "gcc" "tests/CMakeFiles/mmd_test.dir/transfer/mmd_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/sttr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/sttr_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sttr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sttr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sttr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sttr_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sttr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sttr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/transfer/CMakeFiles/sttr_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/sttr_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sttr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sttr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
