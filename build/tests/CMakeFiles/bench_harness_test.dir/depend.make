# Empty dependencies file for bench_harness_test.
# This may be replaced when dependencies are built.
