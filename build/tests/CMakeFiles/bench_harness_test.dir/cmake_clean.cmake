file(REMOVE_RECURSE
  "CMakeFiles/bench_harness_test.dir/bench/bench_harness_test.cc.o"
  "CMakeFiles/bench_harness_test.dir/bench/bench_harness_test.cc.o.d"
  "bench_harness_test"
  "bench_harness_test.pdb"
  "bench_harness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_harness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
