file(REMOVE_RECURSE
  "CMakeFiles/svg_chart_test.dir/util/svg_chart_test.cc.o"
  "CMakeFiles/svg_chart_test.dir/util/svg_chart_test.cc.o.d"
  "svg_chart_test"
  "svg_chart_test.pdb"
  "svg_chart_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svg_chart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
