# Empty compiler generated dependencies file for svg_chart_test.
# This may be replaced when dependencies are built.
