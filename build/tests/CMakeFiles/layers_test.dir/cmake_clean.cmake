file(REMOVE_RECURSE
  "CMakeFiles/layers_test.dir/nn/layers_test.cc.o"
  "CMakeFiles/layers_test.dir/nn/layers_test.cc.o.d"
  "layers_test"
  "layers_test.pdb"
  "layers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
