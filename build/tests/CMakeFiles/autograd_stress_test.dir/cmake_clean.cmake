file(REMOVE_RECURSE
  "CMakeFiles/autograd_stress_test.dir/autograd/stress_test.cc.o"
  "CMakeFiles/autograd_stress_test.dir/autograd/stress_test.cc.o.d"
  "autograd_stress_test"
  "autograd_stress_test.pdb"
  "autograd_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
