// Fuzz harness for the checkpoint container reader and the v3 delta
// decoder (core/checkpoint.h, core/delta.h). These parse bytes that
// survived torn writes, bit flips, and half-finished renames — the
// corruption matrix tests enumerate known failure shapes; fuzzing covers
// the ones nobody thought of. Properties:
//
//   * Arbitrary bytes never crash the reader: they parse OK or surface a
//     Status. A reader that parses OK serves every section it listed.
//   * A delta that decodes re-encodes into a container that decodes to the
//     same delta (round-trip identity over the fields the serving-side
//     apply path keys on).

#include <string>
#include <string_view>

#include "core/checkpoint.h"
#include "core/delta.h"
#include "fuzz_driver.h"
#include "util/status.h"

using sttr::CheckpointReader;
using sttr::DeltaCheckpoint;
using sttr::EncodeDeltaCheckpoint;
using sttr::ParseDeltaCheckpoint;
using sttr::StatusOr;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  StatusOr<CheckpointReader> reader = CheckpointReader::Parse(bytes);
  if (!reader.ok()) return 0;

  for (const auto& section : reader->sections()) {
    StatusOr<std::string> payload = reader->Section(section.name);
    FUZZ_CHECK(payload.ok());
    FUZZ_CHECK(reader->HasSection(section.name));
  }

  StatusOr<DeltaCheckpoint> delta = ParseDeltaCheckpoint(*reader);
  if (!delta.ok()) return 0;

  const std::string reencoded = EncodeDeltaCheckpoint(*delta);
  StatusOr<CheckpointReader> reader2 = CheckpointReader::Parse(reencoded);
  FUZZ_CHECK(reader2.ok());
  StatusOr<DeltaCheckpoint> delta2 = ParseDeltaCheckpoint(*reader2);
  FUZZ_CHECK(delta2.ok());
  FUZZ_CHECK(delta2->base_epoch == delta->base_epoch);
  FUZZ_CHECK(delta2->base_model_crc == delta->base_model_crc);
  FUZZ_CHECK(delta2->seq == delta->seq);
  FUZZ_CHECK(delta2->events_applied == delta->events_applied);
  FUZZ_CHECK(delta2->config_fingerprint == delta->config_fingerprint);
  FUZZ_CHECK(delta2->total_rows() == delta->total_rows());
  FUZZ_CHECK(delta2->user.rows == delta->user.rows);
  FUZZ_CHECK(delta2->poi.rows == delta->poi.rows);
  FUZZ_CHECK(delta2->word.rows == delta->word.rows);
  FUZZ_CHECK(delta2->dense_params == delta->dense_params);
  return 0;
}
