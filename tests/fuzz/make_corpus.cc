// Regenerates the committed seed corpora under tests/fuzz/corpus/ from the
// real encoders, so seeds track the wire/container formats instead of
// rotting as hand-maintained hex. Run after changing a format:
//
//   ./sttr_fuzz_make_corpus tests/fuzz/corpus
//
// and commit the result. Seeds are starting points, not coverage — the
// fuzzer mutates from here; the replay driver (fuzz_driver.h) additionally
// treats every committed file as a regression input on tier-1 runs.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "core/delta.h"
#include "serve/embedding_store.h"
#include "serve/shard_protocol.h"

namespace {

void WriteSeed(const std::filesystem::path& dir, const std::string& name,
               const std::string& bytes) {
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::cerr << "make_corpus: failed to write " << (dir / name) << "\n";
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: sttr_fuzz_make_corpus <corpus-dir>\n";
    return 2;
  }
  const std::filesystem::path root(argv[1]);

  // HTTP request heads: the shapes the serving port actually sees.
  WriteSeed(root / "http", "get_recommend.txt",
            "GET /recommend?user=42&city=7&k=10 HTTP/1.1\r\n"
            "Host: localhost\r\nConnection: keep-alive\r\n\r\n");
  WriteSeed(root / "http", "get_close.txt",
            "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
  WriteSeed(root / "http", "pipelined.txt",
            "GET /stats HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n");
  WriteSeed(root / "http", "torn_head.txt",
            "GET /recommend?user=1 HTTP/1.1\r\nHos");

  // Gather frames, straight from the encoders.
  {
    sttr::serve::GatherRequest req;
    req.request_id = 7;
    req.table = sttr::serve::EmbeddingTable::kPoi;
    req.deadline_ms = 250;
    req.ids = {0, 1, 5, 1024, 99991};
    std::string wire;
    sttr::serve::AppendGatherRequest(req, &wire);
    WriteSeed(root / "shard", "gather_request.bin", wire);
    WriteSeed(root / "shard", "gather_request_torn.bin",
              wire.substr(0, wire.size() / 2));
  }
  {
    const std::vector<float> rows = {0.5f, -1.25f, 3.0f, 0.0f,
                                     1.0f, 2.0f,   -2.5f, 0.125f};
    std::string wire;
    sttr::serve::AppendGatherResponse(11, sttr::serve::GatherStatus::kOk,
                                      /*dim=*/4,
                                      std::span<const float>(rows), &wire);
    WriteSeed(root / "shard", "gather_response.bin", wire);
    std::string degraded;
    sttr::serve::AppendGatherResponse(
        12, sttr::serve::GatherStatus::kShuttingDown, /*dim=*/0,
        std::span<const float>(), &degraded);
    WriteSeed(root / "shard", "gather_response_empty.bin", degraded);
  }

  // Delta checkpoint containers.
  {
    sttr::DeltaCheckpoint delta;
    delta.base_epoch = 3;
    delta.base_model_crc = 0xdeadbeef;
    delta.seq = 2;
    delta.events_applied = 128;
    delta.config_fingerprint = "fuzz-seed-fingerprint";
    delta.user.dim = 4;
    delta.user.rows = {1, 7};
    delta.user.values = {0.1f, 0.2f, 0.3f, 0.4f, -1.0f, -2.0f, -3.0f, -4.0f};
    delta.poi.dim = 4;
    delta.poi.rows = {3};
    delta.poi.values = {9.0f, 8.0f, 7.0f, 6.0f};
    delta.word.dim = 2;
    WriteSeed(root / "ckpt", "delta_small.bin",
              sttr::EncodeDeltaCheckpoint(delta));

    delta.dense_params = std::string(32, '\x42');
    std::string with_dense = sttr::EncodeDeltaCheckpoint(delta);
    WriteSeed(root / "ckpt", "delta_dense.bin", with_dense);
    WriteSeed(root / "ckpt", "delta_torn.bin",
              with_dense.substr(0, with_dense.size() / 2));
    // One deliberately corrupted container: parsing must fail cleanly.
    with_dense[with_dense.size() / 3] ^= 0x40;
    WriteSeed(root / "ckpt", "delta_bitflip.bin", with_dense);
  }

  std::cout << "make_corpus: wrote seeds under " << root << "\n";
  return 0;
}
