#ifndef STTR_TESTS_FUZZ_FUZZ_DRIVER_H_
#define STTR_TESTS_FUZZ_FUZZ_DRIVER_H_

// Dual-mode fuzz entry point. Each harness defines the libFuzzer signature
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
//
// and includes this header. Built with -DSTTR_FUZZ=ON (Clang only), the
// harness links against libFuzzer and this header adds nothing. In every
// other build the header supplies a main() that replays corpus files — the
// same TU doubles as a tier-1 regression test under GCC, so the seed
// corpus (and every crash input checked in after triage) is exercised on
// each run of the ordinary suite, not only when someone remembers to fuzz.
//
// Replay semantics: every argument is a corpus file or a directory
// (recursed); inputs run in sorted order for determinism, and the empty
// input always runs last. A harness signals failure by aborting (the
// FUZZ_CHECK below), exactly as under libFuzzer.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

// Invariant check for harness bodies: fuzzing is only as strong as the
// properties it asserts, and a plain assert() vanishes under NDEBUG.
#define FUZZ_CHECK(cond)                                                 \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "FUZZ_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#ifndef STTR_FUZZ_BUILD

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    const fs::path p(argv[i]);
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (fs::exists(p)) {
      files.push_back(p);
    } else {
      std::cerr << "fuzz driver: no such corpus input: " << p << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
  }
  const uint8_t empty = 0;
  LLVMFuzzerTestOneInput(&empty, 0);
  std::cout << "fuzz driver: replayed " << files.size()
            << " corpus input(s) + empty input\n";
  return 0;
}

#endif  // !STTR_FUZZ_BUILD
#endif  // STTR_TESTS_FUZZ_FUZZ_DRIVER_H_
