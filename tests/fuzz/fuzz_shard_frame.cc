// Fuzz harness for the gather-protocol frame parsers
// (serve/shard_protocol.h). Frames cross process boundaries between the
// router and shard servers, over sockets the chaos suite tears mid-send —
// so kNeedMore/kBad classification on arbitrary prefixes is load-bearing,
// not cosmetic. Properties:
//
//   * kComplete consumes (0, size] bytes and respects the protocol caps.
//   * Encode(Parse(x)) re-parses to the same frame (round-trip identity) —
//     and consumes exactly the re-encoded length.
//   * A strict prefix of a valid frame is kNeedMore, never kComplete or
//     kBad: the router accumulates partial reads and re-parses, so a
//     prefix misclassified as kBad would tear a healthy connection.

#include <cstring>
#include <span>
#include <string>
#include <string_view>

#include "fuzz_driver.h"
#include "serve/shard_protocol.h"

using sttr::serve::AppendGatherRequest;
using sttr::serve::AppendGatherResponse;
using sttr::serve::FrameParse;
using sttr::serve::GatherRequest;
using sttr::serve::GatherResponse;
using sttr::serve::kMaxGatherIds;
using sttr::serve::ParseGatherRequest;
using sttr::serve::ParseGatherResponse;

namespace {

void CheckPrefixesNeedMore(std::string_view wire, bool request) {
  // Spot-check a handful of strict prefixes (every length would make large
  // frames quadratic): truncating anywhere must yield kNeedMore.
  const size_t probes[] = {0, 1, wire.size() / 2, wire.size() - 1};
  for (size_t len : probes) {
    if (len >= wire.size()) continue;
    size_t consumed = 0;
    FrameParse st;
    if (request) {
      GatherRequest out;
      st = ParseGatherRequest(wire.substr(0, len), &out, &consumed);
    } else {
      GatherResponse out;
      st = ParseGatherResponse(wire.substr(0, len), &out, &consumed);
    }
    FUZZ_CHECK(st == FrameParse::kNeedMore);
  }
}

void RunRequest(std::string_view buffer) {
  GatherRequest req;
  size_t consumed = 0;
  if (ParseGatherRequest(buffer, &req, &consumed) != FrameParse::kComplete) {
    return;
  }
  FUZZ_CHECK(consumed > 0);
  FUZZ_CHECK(consumed <= buffer.size());
  FUZZ_CHECK(req.ids.size() <= kMaxGatherIds);

  std::string wire;
  AppendGatherRequest(req, &wire);
  GatherRequest back;
  size_t reconsumed = 0;
  FUZZ_CHECK(ParseGatherRequest(wire, &back, &reconsumed) ==
             FrameParse::kComplete);
  FUZZ_CHECK(reconsumed == wire.size());
  FUZZ_CHECK(back.request_id == req.request_id);
  FUZZ_CHECK(back.table == req.table);
  FUZZ_CHECK(back.deadline_ms == req.deadline_ms);
  FUZZ_CHECK(back.ids == req.ids);
  CheckPrefixesNeedMore(wire, /*request=*/true);
}

void RunResponse(std::string_view buffer) {
  GatherResponse resp;
  size_t consumed = 0;
  if (ParseGatherResponse(buffer, &resp, &consumed) != FrameParse::kComplete) {
    return;
  }
  FUZZ_CHECK(consumed > 0);
  FUZZ_CHECK(consumed <= buffer.size());
  FUZZ_CHECK(resp.rows.size() ==
             static_cast<size_t>(resp.count) * resp.dim);

  std::string wire;
  AppendGatherResponse(resp.request_id, resp.status, resp.dim,
                       std::span<const float>(resp.rows), &wire);
  GatherResponse back;
  size_t reconsumed = 0;
  FUZZ_CHECK(ParseGatherResponse(wire, &back, &reconsumed) ==
             FrameParse::kComplete);
  FUZZ_CHECK(reconsumed == wire.size());
  FUZZ_CHECK(back.request_id == resp.request_id);
  FUZZ_CHECK(back.status == resp.status);
  FUZZ_CHECK(back.dim == resp.dim);
  FUZZ_CHECK(back.count == resp.count);
  // Float payloads round-trip bit-exactly (raw little-endian copies), so
  // compare representations, not values — NaNs must survive too.
  FUZZ_CHECK(back.rows.size() == resp.rows.size());
  FUZZ_CHECK(std::memcmp(back.rows.data(), resp.rows.data(),
                         resp.rows.size() * sizeof(float)) == 0);
  CheckPrefixesNeedMore(wire, /*request=*/false);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view buffer(reinterpret_cast<const char*>(data), size);
  RunRequest(buffer);
  RunResponse(buffer);
  return 0;
}
