// Fuzz harness for the incremental HTTP/1.1 request-head parser
// (serve/conn.h). The parser runs against every byte an untrusted client
// sends the serving port, incrementally, under two different size caps —
// the properties asserted here are the ones the event loop depends on:
//
//   * kComplete consumes a positive number of bytes, never more than are
//     buffered, and every returned view points inside the buffer.
//   * Parsing is deterministic and prefix-stable: re-parsing exactly the
//     consumed bytes completes again with the same span (pipelining slices
//     the buffer at `consumed`, so a disagreement would tear requests).
//   * A strict prefix of a complete head never claims completion.

#include <string_view>

#include "fuzz_driver.h"
#include "serve/conn.h"

using sttr::serve::ParsedRequest;
using sttr::serve::ParseRequest;
using sttr::serve::ParseStatus;

namespace {

void CheckViewInside(std::string_view buffer, std::string_view view) {
  if (view.empty()) return;
  FUZZ_CHECK(view.data() >= buffer.data());
  FUZZ_CHECK(view.data() + view.size() <= buffer.data() + buffer.size());
}

void RunOne(std::string_view buffer, size_t max_request_bytes) {
  ParsedRequest out;
  const ParseStatus st = ParseRequest(buffer, max_request_bytes, &out);
  if (st != ParseStatus::kComplete) return;

  FUZZ_CHECK(out.consumed > 0);
  FUZZ_CHECK(out.consumed <= buffer.size());
  CheckViewInside(buffer, out.method);
  CheckViewInside(buffer, out.target);
  CheckViewInside(buffer, out.path);
  CheckViewInside(buffer, out.query);

  ParsedRequest again;
  const std::string_view head = buffer.substr(0, out.consumed);
  FUZZ_CHECK(ParseRequest(head, max_request_bytes, &again) ==
             ParseStatus::kComplete);
  FUZZ_CHECK(again.consumed == out.consumed);
  FUZZ_CHECK(again.method == out.method);
  FUZZ_CHECK(again.target == out.target);
  FUZZ_CHECK(again.keep_alive == out.keep_alive);

  ParsedRequest partial;
  FUZZ_CHECK(ParseRequest(head.substr(0, head.size() - 1), max_request_bytes,
                          &partial) != ParseStatus::kComplete);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view buffer(reinterpret_cast<const char*>(data), size);
  RunOne(buffer, /*max_request_bytes=*/64);      // exercises kTooLarge
  RunOne(buffer, /*max_request_bytes=*/1 << 14); // the server's real cap
  return 0;
}
