#include "text/vocabulary.h"

#include <gtest/gtest.h>

namespace sttr {
namespace {

TEST(VocabularyTest, AddAssignsDenseIds) {
  Vocabulary v;
  EXPECT_EQ(v.Add("park"), 0);
  EXPECT_EQ(v.Add("museum"), 1);
  EXPECT_EQ(v.Add("park"), 0);  // idempotent
  EXPECT_EQ(v.size(), 2u);
}

TEST(VocabularyTest, CountsAccumulate) {
  Vocabulary v;
  v.Add("a");
  v.Add("a");
  v.Add("b");
  EXPECT_EQ(v.CountOf(0), 2u);
  EXPECT_EQ(v.CountOf(1), 1u);
  EXPECT_EQ(v.Counts(), (std::vector<size_t>{2, 1}));
}

TEST(VocabularyTest, LookupBothDirections) {
  Vocabulary v;
  const int64_t id = v.Add("beach");
  EXPECT_EQ(v.WordOf(id), "beach");
  EXPECT_EQ(v.IdOf("beach"), id);
  EXPECT_EQ(v.IdOf("unknown"), -1);
  EXPECT_EQ(v.size(), 1u);  // IdOf must not intern
}

TEST(VocabularyDeathTest, WordOfOutOfRange) {
  Vocabulary v;
  EXPECT_DEATH(v.WordOf(0), "");
  EXPECT_DEATH(v.WordOf(-1), "");
}

TEST(TokenizeTest, LowercasesAndSplits) {
  EXPECT_EQ(Tokenize("Golden Gate Bridge!"),
            (std::vector<std::string>{"golden", "gate", "bridge"}));
}

TEST(TokenizeTest, DropsShortTokens) {
  EXPECT_EQ(Tokenize("a bc def", 2),
            (std::vector<std::string>{"bc", "def"}));
  EXPECT_EQ(Tokenize("a bc def", 1),
            (std::vector<std::string>{"a", "bc", "def"}));
}

TEST(TokenizeTest, KeepsDigits) {
  EXPECT_EQ(Tokenize("route 66 diner"),
            (std::vector<std::string>{"route", "66", "diner"}));
}

TEST(TokenizeTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("!!! ... ---").empty());
}

}  // namespace
}  // namespace sttr
