#include "text/context_graph.h"

#include <map>

#include <gtest/gtest.h>

namespace sttr {
namespace {

TEST(TextualContextGraphTest, AddEdgeDeduplicates) {
  TextualContextGraph g(3, 5);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.WordsOf(0), (std::vector<int64_t>{1, 2}));
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(TextualContextGraphTest, WordCountsKeepMultiplicity) {
  TextualContextGraph g(2, 4);
  g.AddEdge(0, 3);
  g.AddEdge(0, 3);
  g.AddEdge(1, 3);
  EXPECT_EQ(g.word_counts()[3], 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(TextualContextGraphTest, MeanPoiDegree) {
  TextualContextGraph g(2, 10);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(1, 4);
  EXPECT_DOUBLE_EQ(g.MeanPoiDegree(), 2.0);
}

TEST(TextualContextGraphTest, EdgeArraysAreParallel) {
  TextualContextGraph g(3, 3);
  g.AddEdge(2, 0);
  g.AddEdge(1, 2);
  ASSERT_EQ(g.edge_pois().size(), g.edge_words().size());
  EXPECT_EQ(g.edge_pois()[0], 2);
  EXPECT_EQ(g.edge_words()[0], 0);
}

TEST(TextualContextGraphDeathTest, RejectsOutOfRangeIds) {
  TextualContextGraph g(2, 2);
  EXPECT_DEATH(g.AddEdge(2, 0), "");
  EXPECT_DEATH(g.AddEdge(0, 2), "");
  EXPECT_DEATH(g.AddEdge(-1, 0), "");
}

TEST(UnigramNegativeSamplerTest, FollowsPowerLaw) {
  // Counts 1 and 16 with power 0.75: ratio 16^0.75 = 8.
  std::vector<size_t> counts = {1, 16};
  UnigramNegativeSampler sampler(counts, 0.75);
  Rng rng(1);
  int c1 = 0;
  const int n = 90000;
  for (int i = 0; i < n; ++i) c1 += (sampler.Sample(rng) == 1);
  EXPECT_NEAR(static_cast<double>(c1) / n, 8.0 / 9.0, 0.01);
}

TEST(UnigramNegativeSamplerTest, ZeroCountWordsNeverDrawn) {
  std::vector<size_t> counts = {5, 0, 3};
  UnigramNegativeSampler sampler(counts);
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) EXPECT_NE(sampler.Sample(rng), 1);
}

TEST(UnigramNegativeSamplerTest, SampleNegativeAvoidsPositives) {
  TextualContextGraph g(1, 4);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  std::vector<size_t> counts = {10, 10, 10, 10};
  UnigramNegativeSampler sampler(counts);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const int64_t w = sampler.SampleNegativeFor(g, 0, rng);
    EXPECT_TRUE(w == 2 || w == 3);
  }
}

TEST(UnigramNegativeSamplerTest, DegenerateVocabularyStillReturns) {
  // Every word is a positive context: the bounded retry must bail out
  // instead of looping forever.
  TextualContextGraph g(1, 2);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  std::vector<size_t> counts = {1, 1};
  UnigramNegativeSampler sampler(counts);
  Rng rng(4);
  const int64_t w = sampler.SampleNegativeFor(g, 0, rng);
  EXPECT_TRUE(w == 0 || w == 1);
}

TEST(UnigramNegativeSamplerTest, PowerZeroIsUniform) {
  std::vector<size_t> counts = {1, 1000};
  UnigramNegativeSampler sampler(counts, 0.0);
  Rng rng(5);
  int c0 = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) c0 += (sampler.Sample(rng) == 0);
  EXPECT_NEAR(static_cast<double>(c0) / n, 0.5, 0.02);
}

}  // namespace
}  // namespace sttr
