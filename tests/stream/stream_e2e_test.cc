// The end-to-end streaming invariant: ingest -> delta publish -> serving
// snapshot patch must be bit-identical to an offline retrain (a fresh
// trainer replaying the same event stream over the same base checkpoint),
// and the patch must actually shift recommendations. Also covers the
// serving-side guards: stale deltas are not re-applied, foreign-base deltas
// are refused, and row-level cache invalidation drops exactly the patched
// rows' entries.

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../serve/serve_test_util.h"
#include "core/checkpoint.h"
#include "core/delta.h"
#include "core/st_transrec.h"
#include "serve/model_bundle.h"
#include "serve/result_cache.h"
#include "stream/incremental_trainer.h"
#include "stream/ingest_service.h"

namespace sttr::stream {
namespace {

using serve::InvalidateForDelta;
using serve::MakeServeFixture;
using serve::ModelBundle;
using serve::ModelBundleConfig;
using serve::ModelSnapshot;
using serve::ResultCache;
using serve::ResultCacheConfig;
using serve::ServeFixture;
using serve::ServeTestDir;
using serve::SmallServeModelConfig;
using serve::TrainSmallModel;

class StreamE2ETest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ServeTestDir();
    fixture_ = MakeServeFixture();
    TrainSmallModel(fixture_, dir_ + "/ckpt");
  }

  std::unique_ptr<ModelBundle> MakeBundle(const std::string& delta_dir) {
    ModelBundleConfig cfg;
    cfg.checkpoint_dir = dir_ + "/ckpt";
    cfg.model = SmallServeModelConfig();
    cfg.delta_dir = delta_dir;
    auto bundle = std::make_unique<ModelBundle>(fixture_.world.dataset,
                                                fixture_.split, cfg);
    STTR_CHECK_OK(bundle->LoadInitial());
    return bundle;
  }

  std::unique_ptr<StTransRec> MakeStreamModel() {
    auto model = std::make_unique<StTransRec>(SmallServeModelConfig());
    STTR_CHECK_OK(model->Prepare(fixture_.world.dataset, fixture_.split));
    return model;
  }

  std::vector<CheckinEvent> Events(size_t n) const {
    std::vector<CheckinEvent> events;
    const auto& checkins = fixture_.world.dataset.checkins();
    for (size_t i = 0; i < n && i < checkins.size(); ++i) {
      CheckinEvent e;
      e.user = checkins[i].user;
      e.poi = checkins[i].poi;
      e.city = checkins[i].city;
      e.time = checkins[i].time;
      events.push_back(e);
    }
    return events;
  }

  std::string dir_;
  ServeFixture fixture_;
};

TEST_F(StreamE2ETest, IngestDeltaServeMatchesOfflineRetrainBitForBit) {
  constexpr size_t kWindow = 8;
  constexpr size_t kEvents = 44;  // 5 full windows + a partial flushed at Stop

  // --- Online path: HTTP-shaped ingest through the service loop. ---
  auto bundle = MakeBundle(dir_ + "/deltas");
  const std::string base_path = bundle->snapshot()->checkpoint_path;

  auto online_model = MakeStreamModel();
  IncrementalTrainerConfig tcfg;
  tcfg.delta_dir = dir_ + "/deltas";
  IncrementalTrainer trainer(tcfg);
  ASSERT_TRUE(
      trainer.Init(online_model.get(), fixture_.world.dataset, base_path)
          .ok());
  IngestServiceConfig icfg;
  icfg.window = kWindow;
  IngestService svc(fixture_.world.dataset, &trainer, nullptr, icfg);
  svc.Start();
  const std::vector<CheckinEvent> events = Events(kEvents);
  ASSERT_EQ(events.size(), kEvents);
  for (const CheckinEvent& e : events) {
    while (!svc.Submit(e).ok()) {
    }
  }
  svc.Stop();
  ASSERT_EQ(trainer.events_applied(), kEvents);
  ASSERT_GT(trainer.published_seq(), 0u);

  // --- The serving side consumes the published delta. ---
  StatusOr<bool> applied = bundle->ApplyDeltaIfNewer();
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  ASSERT_TRUE(*applied);
  std::shared_ptr<const ModelSnapshot> snapshot = bundle->snapshot();
  ASSERT_NE(snapshot->model, nullptr);
  EXPECT_EQ(snapshot->delta_seq, trainer.published_seq());
  // The base identity is unchanged — a delta patch is not a reload.
  EXPECT_EQ(snapshot->checkpoint_path, base_path);

  // --- Offline retrain: fresh trainer, same base, same stream, the same
  // deterministic windowing the service used. ---
  auto offline_model = MakeStreamModel();
  IncrementalTrainerConfig ocfg;
  ocfg.delta_dir = dir_ + "/deltas_offline";
  IncrementalTrainer offline(ocfg);
  ASSERT_TRUE(
      offline.Init(offline_model.get(), fixture_.world.dataset, base_path)
          .ok());
  for (size_t i = 0; i < events.size(); i += kWindow) {
    const size_t n = std::min(kWindow, events.size() - i);
    ASSERT_TRUE(
        offline.TrainWindow(std::span<const CheckinEvent>(events.data() + i,
                                                          n))
            .ok());
  }

  // --- The invariant: bit-identical embedding tables. ---
  const StTransRec& served = *snapshot->model;
  const Tensor* got[3] = {&served.UserEmbeddingTable(),
                          &served.PoiEmbeddingTable(),
                          &served.WordEmbeddingTable()};
  const Tensor* want[3] = {&offline_model->UserEmbeddingTable(),
                           &offline_model->PoiEmbeddingTable(),
                           &offline_model->WordEmbeddingTable()};
  for (int t = 0; t < 3; ++t) {
    ASSERT_EQ(got[t]->size(), want[t]->size());
    for (size_t i = 0; i < got[t]->size(); ++i) {
      ASSERT_EQ(got[t]->data()[i], want[t]->data()[i])
          << "table " << t << " diverges from the offline retrain at flat "
          << "index " << i;
    }
  }

  // --- And the patch shifted recommendations for a streamed user. ---
  auto base_model = MakeStreamModel();
  {
    StatusOr<CheckpointReader> reader =
        CheckpointReader::Open(*Env::Default(), base_path);
    ASSERT_TRUE(reader.ok());
    StatusOr<std::string> params = reader->Section("model");
    ASSERT_TRUE(params.ok());
    std::istringstream in(*params);
    ASSERT_TRUE(base_model->Load(in).ok());
  }
  const UserId user = events[0].user;
  const std::vector<PoiId>& candidates =
      fixture_.world.dataset.PoisInCity(events[0].city);
  const std::vector<double> before =
      base_model->ScoreBatch(user, candidates);
  const std::vector<double> after = served.ScoreBatch(user, candidates);
  EXPECT_NE(before, after);
}

TEST_F(StreamE2ETest, StaleAndForeignDeltasAreRefused) {
  auto bundle = MakeBundle(dir_ + "/deltas");
  const std::string base_path = bundle->snapshot()->checkpoint_path;

  auto model = MakeStreamModel();
  IncrementalTrainerConfig tcfg;
  tcfg.delta_dir = dir_ + "/deltas";
  IncrementalTrainer trainer(tcfg);
  ASSERT_TRUE(
      trainer.Init(model.get(), fixture_.world.dataset, base_path).ok());
  ASSERT_TRUE(trainer.TrainWindow(Events(16)).ok());
  ASSERT_TRUE(trainer.PublishDelta().ok());

  StatusOr<bool> first = bundle->ApplyDeltaIfNewer();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(*first);
  // Same delta again: recognized as already applied, no new swap.
  StatusOr<bool> again = bundle->ApplyDeltaIfNewer();
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);

  // A delta claiming a different base must never be patched in.
  StatusOr<std::string> path =
      FindLatestValidDelta(*Env::Default(), tcfg.delta_dir);
  ASSERT_TRUE(path.ok());
  StatusOr<DeltaCheckpoint> forged =
      ReadDeltaCheckpoint(*Env::Default(), *path);
  ASSERT_TRUE(forged.ok());
  forged->base_model_crc ^= 0xff;
  forged->seq += 1;
  ASSERT_TRUE(WriteDeltaCheckpoint(*Env::Default(),
                                   tcfg.delta_dir + "/" +
                                       DeltaFileName(forged->seq),
                                   *forged)
                  .ok());
  const uint64_t seq_before = bundle->snapshot()->delta_seq;
  StatusOr<bool> foreign = bundle->ApplyDeltaIfNewer();
  ASSERT_TRUE(foreign.ok()) << foreign.status().ToString();
  EXPECT_FALSE(*foreign);
  EXPECT_EQ(bundle->snapshot()->delta_seq, seq_before);
}

TEST_F(StreamE2ETest, DeltaListenerInvalidatesExactlyThePatchedRows) {
  auto bundle = MakeBundle(dir_ + "/deltas");
  ResultCache cache(ResultCacheConfig{});
  ResultCache* cache_ptr = &cache;
  const Dataset& dataset = fixture_.world.dataset;
  bundle->AddDeltaListener(
      [cache_ptr, &dataset](const ModelSnapshot&, const DeltaCheckpoint& d) {
        InvalidateForDelta(dataset, d, *cache_ptr);
      });

  auto model = MakeStreamModel();
  IncrementalTrainerConfig tcfg;
  tcfg.delta_dir = dir_ + "/deltas";
  IncrementalTrainer trainer(tcfg);
  ASSERT_TRUE(trainer
                  .Init(model.get(), fixture_.world.dataset,
                        bundle->snapshot()->checkpoint_path)
                  .ok());
  const std::vector<CheckinEvent> events = Events(12);
  ASSERT_TRUE(trainer.TrainWindow(events).ok());
  ASSERT_TRUE(trainer.PublishDelta().ok());
  const DeltaCheckpoint delta = trainer.BuildDelta();
  ASSERT_GT(delta.user.num_rows(), 0u);

  // Seed the cache: one entry for a streamed (patched) user in an
  // untouched city, one for an untouched user in an untouched city.
  const UserId touched_user = static_cast<UserId>(delta.user.rows[0]);
  UserId untouched_user = -1;
  for (UserId u = 0; u < static_cast<UserId>(dataset.num_users()); ++u) {
    bool in_delta = false;
    for (int64_t r : delta.user.rows) in_delta |= r == u;
    if (!in_delta) {
      untouched_user = u;
      break;
    }
  }
  ASSERT_GE(untouched_user, 0);
  // A city none of the patched POIs live in (city ids are small in the
  // tiny fixture; pick one outside the delta's poi-city set or fall back
  // to a synthetic id — city matching only, no dataset lookup involved).
  CityId untouched_city = static_cast<CityId>(dataset.cities().size()) + 7;

  serve::ResultCacheKey touched_key;
  touched_key.user = touched_user;
  touched_key.city = untouched_city;
  touched_key.k = 5;
  serve::ResultCacheKey untouched_key;
  untouched_key.user = untouched_user;
  untouched_key.city = untouched_city;
  untouched_key.k = 5;
  cache.Put(touched_key, {{1, 1.0}});
  cache.Put(untouched_key, {{2, 2.0}});

  StatusOr<bool> applied = bundle->ApplyDeltaIfNewer();
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  ASSERT_TRUE(*applied);

  // The patched user's entry is gone even in a city the delta never
  // touched; the untouched user's entry survives (row-level, not
  // wholesale).
  EXPECT_FALSE(cache.Get(touched_key).has_value());
  EXPECT_TRUE(cache.Get(untouched_key).has_value());
  EXPECT_EQ(cache.GetStats().row_invalidations, 1u);
  EXPECT_EQ(cache.GetStats().invalidations, 0u);
}

}  // namespace
}  // namespace sttr::stream
