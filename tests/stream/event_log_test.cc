// Tests for the bounded in-memory check-in event log: FIFO order, sequence
// assignment, backpressure when full, close semantics, and a
// producer/consumer stress shape for TSan.

#include "stream/event_log.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sttr::stream {
namespace {

CheckinEvent Ev(int64_t user, int64_t poi) {
  CheckinEvent e;
  e.user = user;
  e.poi = poi;
  e.city = 0;
  e.time = 12.0;
  return e;
}

TEST(EventLogTest, AppendAssignsMonotonicSeqAndPopsInOrder) {
  EventLog log(/*capacity=*/8);
  StatusOr<uint64_t> s1 = log.Append(Ev(1, 10));
  StatusOr<uint64_t> s2 = log.Append(Ev(2, 20));
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_LT(*s1, *s2);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.total_appended(), 2u);

  std::vector<CheckinEvent> out;
  EXPECT_EQ(log.WaitPop(4, &out), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].user, 1);
  EXPECT_EQ(out[0].seq, *s1);
  EXPECT_EQ(out[1].user, 2);
  EXPECT_EQ(out[1].seq, *s2);
  EXPECT_EQ(log.size(), 0u);
}

TEST(EventLogTest, FullLogReturnsResourceExhausted) {
  EventLog log(/*capacity=*/2);
  ASSERT_TRUE(log.Append(Ev(1, 1)).ok());
  ASSERT_TRUE(log.Append(Ev(2, 2)).ok());
  StatusOr<uint64_t> overflow = log.Append(Ev(3, 3));
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  // Draining makes room again.
  std::vector<CheckinEvent> out;
  ASSERT_EQ(log.TryPop(1, &out), 1u);
  EXPECT_TRUE(log.Append(Ev(3, 3)).ok());
}

TEST(EventLogTest, ClosedLogRejectsAppendAndDrains) {
  EventLog log(/*capacity=*/4);
  ASSERT_TRUE(log.Append(Ev(1, 1)).ok());
  log.Close();
  StatusOr<uint64_t> after = log.Append(Ev(2, 2));
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kFailedPrecondition);
  // Buffered events are still handed out after Close...
  std::vector<CheckinEvent> out;
  EXPECT_EQ(log.WaitPop(4, &out), 1u);
  // ...and once drained, WaitPop returns 0 instead of blocking forever.
  out.clear();
  EXPECT_EQ(log.WaitPop(4, &out), 0u);
  EXPECT_TRUE(log.closed());
}

TEST(EventLogTest, TryPopDoesNotBlockOnEmpty) {
  EventLog log(/*capacity=*/4);
  std::vector<CheckinEvent> out;
  EXPECT_EQ(log.TryPop(4, &out), 0u);
}

// Concurrency shape for TSan: several producers race Append against one
// consumer looping WaitPop until the log is closed and drained. Every event
// must come out exactly once, in globally seq-increasing order.
TEST(EventLogTest, ConcurrentProducersSingleConsumer) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  EventLog log(/*capacity=*/32);

  std::vector<CheckinEvent> consumed;
  std::thread consumer([&] {
    std::vector<CheckinEvent> batch;
    while (true) {
      batch.clear();
      if (log.WaitPop(16, &batch) == 0) break;
      consumed.insert(consumed.end(), batch.begin(), batch.end());
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Retry on backpressure: the log is deliberately smaller than the
        // workload.
        while (!log.Append(Ev(p, i)).ok()) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  log.Close();
  consumer.join();

  ASSERT_EQ(consumed.size(),
            static_cast<size_t>(kProducers) * kPerProducer);
  for (size_t i = 1; i < consumed.size(); ++i) {
    EXPECT_LT(consumed[i - 1].seq, consumed[i].seq);
  }
  EXPECT_EQ(log.total_appended(),
            static_cast<uint64_t>(kProducers) * kPerProducer);
}

}  // namespace
}  // namespace sttr::stream
