// HTTP-level tests of the streaming ingest endpoint and cold-start serving:
// /checkin semantics (validation, backpressure, lifecycle) pinned
// byte-identical across both serving modes, ingest counters on /statz, and
// the cold-start marker + word-bridge path on /recommend.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../serve/serve_test_util.h"
#include "../serve/test_http_client.h"
#include "core/checkpoint.h"
#include "core/st_transrec.h"
#include "serve/batcher.h"
#include "serve/candidate_index.h"
#include "serve/model_bundle.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "serve/stats.h"
#include "stream/cold_start.h"
#include "stream/incremental_trainer.h"
#include "stream/ingest_service.h"
#include "util/string_util.h"

namespace sttr::stream {
namespace {

using serve::MakeServeFixture;
using serve::ModelBundle;
using serve::ModelBundleConfig;
using serve::RecommendServer;
using serve::ResultCache;
using serve::ResultCacheConfig;
using serve::ScoreBatcher;
using serve::ServeFixture;
using serve::ServeMode;
using serve::ServerConfig;
using serve::ServeStats;
using serve::ServeTestDir;
using serve::SmallServeModelConfig;
using serve::TestHttpClient;
using serve::TrainSmallModel;

std::string Request(const std::string& method, const std::string& target) {
  return method + " " + target + " HTTP/1.1\r\nHost: t\r\n\r\n";
}

/// One serving stack with its own streaming pipeline (stream model, trainer,
/// ingest service) so the two modes never share mutable state.
struct Side {
  ServeStats stats;
  std::unique_ptr<ModelBundle> bundle;
  std::unique_ptr<ResultCache> cache;
  std::unique_ptr<ScoreBatcher> batcher;
  std::unique_ptr<StTransRec> stream_model;
  std::unique_ptr<IncrementalTrainer> trainer;
  std::unique_ptr<IngestService> ingest;
  std::unique_ptr<RecommendServer> server;

  ~Side() {
    if (server != nullptr) server->Shutdown();
    if (ingest != nullptr) ingest->Stop();
    if (batcher != nullptr) batcher->Stop();
  }
};

struct SideOptions {
  bool with_ingest = true;
  bool with_cold_start = true;
  bool start_ingest_loop = false;
  size_t queue_capacity = 256;
};

class IngestServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new ServeFixture(MakeServeFixture());
    ckpt_dir_ = new std::string(ServeTestDir());
    TrainSmallModel(*fixture_, *ckpt_dir_);
  }
  static void TearDownTestSuite() {
    delete ckpt_dir_;
    delete fixture_;
    ckpt_dir_ = nullptr;
    fixture_ = nullptr;
  }

  void SetUp() override {
    index_ = std::make_unique<serve::CandidateIndex>(
        fixture_->world.dataset, &fixture_->split,
        serve::CandidateIndexConfig{});
    cold_scorer_ =
        std::make_unique<ColdStartScorer>(fixture_->world.dataset,
                                          ColdStartConfig{});
  }

  std::unique_ptr<Side> MakeSide(ServeMode mode, const SideOptions& opt,
                                 const std::string& leaf) {
    auto side = std::make_unique<Side>();
    ModelBundleConfig bundle_config;
    bundle_config.checkpoint_dir = *ckpt_dir_;
    bundle_config.model = SmallServeModelConfig();
    side->bundle = std::make_unique<ModelBundle>(
        fixture_->world.dataset, fixture_->split, bundle_config);
    STTR_CHECK_OK(side->bundle->LoadInitial());
    side->cache = std::make_unique<ResultCache>(ResultCacheConfig{});
    side->batcher =
        std::make_unique<ScoreBatcher>(serve::BatcherConfig{}, &side->stats);
    side->batcher->Start();

    if (opt.with_ingest) {
      side->stream_model =
          std::make_unique<StTransRec>(SmallServeModelConfig());
      STTR_CHECK_OK(
          side->stream_model->Prepare(fixture_->world.dataset,
                                      fixture_->split));
      IncrementalTrainerConfig tcfg;
      tcfg.delta_dir = ServeTestDir() + "/delta_" + leaf;
      side->trainer = std::make_unique<IncrementalTrainer>(tcfg);
      STTR_CHECK_OK(side->trainer->Init(
          side->stream_model.get(), fixture_->world.dataset,
          side->bundle->snapshot()->checkpoint_path));
      IngestServiceConfig icfg;
      icfg.queue_capacity = opt.queue_capacity;
      icfg.window = 8;
      side->ingest = std::make_unique<IngestService>(
          fixture_->world.dataset, side->trainer.get(), &side->stats.ingest,
          icfg);
      if (opt.start_ingest_loop) side->ingest->Start();
    }

    ServerConfig config;
    config.mode = mode;
    config.num_workers = 2;
    config.default_city = fixture_->split.target_city;
    side->server = std::make_unique<RecommendServer>(
        config, fixture_->world.dataset, side->bundle.get(), index_.get(),
        side->batcher.get(), side->cache.get(), &side->stats,
        /*store=*/nullptr, side->ingest.get(),
        opt.with_cold_start ? cold_scorer_.get() : nullptr);
    STTR_CHECK_OK(side->server->Start());
    return side;
  }

  std::string CheckinTarget(size_t i, bool with_city = true,
                            bool with_time = true) const {
    const CheckinRecord& r = fixture_->world.dataset.checkins()[i];
    std::string target = "/checkin?user=" + std::to_string(r.user) +
                         "&poi=" + std::to_string(r.poi);
    if (with_city) target += "&city=" + std::to_string(r.city);
    if (with_time) target += "&t=" + StrFormat("%.4f", r.time);
    return target;
  }

  /// A well-formed check-in whose stated city contradicts the POI's.
  std::string MismatchedCityTarget() const {
    const CheckinRecord& r = fixture_->world.dataset.checkins()[0];
    const CityId wrong = r.city == 0 ? 1 : 0;
    return "/checkin?user=" + std::to_string(r.user) +
           "&poi=" + std::to_string(r.poi) +
           "&city=" + std::to_string(wrong);
  }

  std::string RecommendTarget(UserId user, const std::string& extra = "") {
    const auto& pois =
        fixture_->world.dataset.PoisInCity(fixture_->split.target_city);
    const GeoPoint loc = fixture_->world.dataset.poi(pois[0]).location;
    return "/recommend?user=" + std::to_string(user) +
           "&lat=" + StrFormat("%.8f", loc.lat) +
           "&lon=" + StrFormat("%.8f", loc.lon) + "&k=5" + extra;
  }

  /// A user with check-ins but none in the target city, or -1.
  UserId FindColdUser() const {
    const Dataset& ds = fixture_->world.dataset;
    const CityId target = fixture_->split.target_city;
    for (UserId u = 0; u < static_cast<UserId>(ds.num_users()); ++u) {
      const std::vector<size_t>& idx = ds.CheckinsOfUser(u);
      if (idx.empty()) continue;
      bool in_city = false;
      for (size_t i : idx) in_city |= ds.checkins()[i].city == target;
      if (!in_city) return u;
    }
    return -1;
  }

  UserId FindWarmUser() const {
    const Dataset& ds = fixture_->world.dataset;
    for (UserId u = 0; u < static_cast<UserId>(ds.num_users()); ++u) {
      for (size_t i : ds.CheckinsOfUser(u)) {
        if (ds.checkins()[i].city == fixture_->split.target_city) return u;
      }
    }
    return -1;
  }

  static ServeFixture* fixture_;
  static std::string* ckpt_dir_;

  std::unique_ptr<serve::CandidateIndex> index_;
  std::unique_ptr<ColdStartScorer> cold_scorer_;
};

ServeFixture* IngestServerTest::fixture_ = nullptr;
std::string* IngestServerTest::ckpt_dir_ = nullptr;

TEST_F(IngestServerTest, CheckinByteIdenticalAcrossModes) {
  auto epoll = MakeSide(ServeMode::kEventLoop, {}, "eq_epoll");
  auto blocking = MakeSide(ServeMode::kBlocking, {}, "eq_blocking");
  TestHttpClient a(epoll->server->port());
  TestHttpClient b(blocking->server->port());

  const std::vector<std::string> requests = {
      Request("POST", CheckinTarget(0)),
      Request("GET", CheckinTarget(1)),
      // Optional params omitted: city derived from the POI, unknown time.
      Request("POST", CheckinTarget(2, false, false)),
      // Parse-level errors, one per parameter.
      Request("POST", "/checkin?poi=1"),
      Request("POST", "/checkin?user=abc&poi=1"),
      Request("POST", "/checkin?user=1"),
      Request("POST", "/checkin?user=1&poi=zz"),
      Request("POST", "/checkin?user=1&poi=1&city=xx"),
      Request("POST", "/checkin?user=1&poi=1&t=-2"),
      Request("POST", "/checkin?user=1&poi=1&t=nope"),
      // Semantic errors (Submit's job): out-of-range ids, mismatched city,
      // and a city that would overflow CityId's range.
      Request("POST", "/checkin?user=999999&poi=1"),
      Request("POST", "/checkin?user=1&poi=999999"),
      Request("POST", MismatchedCityTarget()),
      Request("POST", "/checkin?user=1&poi=1&city=4294967296"),
  };
  for (const std::string& raw : requests) {
    const auto ra = a.Roundtrip(raw);
    const auto rb = b.Roundtrip(raw);
    EXPECT_EQ(ra.raw, rb.raw) << "request: " << raw;
  }
}

TEST_F(IngestServerTest, CheckinWithoutIngestIs404BothModes) {
  SideOptions opt;
  opt.with_ingest = false;
  auto epoll = MakeSide(ServeMode::kEventLoop, opt, "no_ingest_e");
  auto blocking = MakeSide(ServeMode::kBlocking, opt, "no_ingest_b");
  TestHttpClient a(epoll->server->port());
  TestHttpClient b(blocking->server->port());
  const std::string raw = Request("POST", CheckinTarget(0));
  const auto ra = a.Roundtrip(raw);
  const auto rb = b.Roundtrip(raw);
  EXPECT_EQ(ra.status, 404);
  EXPECT_NE(ra.body.find("ingest not enabled"), std::string::npos);
  EXPECT_EQ(ra.raw, rb.raw);
}

TEST_F(IngestServerTest, CheckinBackpressureAndStopAre503) {
  SideOptions opt;
  opt.queue_capacity = 2;  // loop not started: nothing drains
  auto side = MakeSide(ServeMode::kEventLoop, opt, "bp");
  TestHttpClient client(side->server->port());
  EXPECT_EQ(client.Roundtrip(Request("POST", CheckinTarget(0))).status, 200);
  EXPECT_EQ(client.Roundtrip(Request("POST", CheckinTarget(1))).status, 200);
  const auto full = client.Roundtrip(Request("POST", CheckinTarget(2)));
  EXPECT_EQ(full.status, 503);
  EXPECT_NE(full.body.find("ingest queue full"), std::string::npos);

  side->ingest->Stop();
  const auto stopped = client.Roundtrip(Request("POST", CheckinTarget(3)));
  EXPECT_EQ(stopped.status, 503);
  EXPECT_NE(stopped.body.find("ingest stopped"), std::string::npos);
}

TEST_F(IngestServerTest, AcceptedCheckinsReachTrainerAndStatz) {
  SideOptions opt;
  opt.start_ingest_loop = true;
  auto side = MakeSide(ServeMode::kEventLoop, opt, "train");
  TestHttpClient client(side->server->port());
  for (size_t i = 0; i < 10; ++i) {
    const auto r = client.Roundtrip(Request("POST", CheckinTarget(i)));
    ASSERT_EQ(r.status, 200) << r.body;
    EXPECT_NE(r.body.find("\"accepted\": true"), std::string::npos);
    EXPECT_NE(r.body.find("\"seq\": " + std::to_string(i + 1)),
              std::string::npos);
  }
  side->ingest->Stop();  // drains + trains the final partial window
  EXPECT_EQ(side->trainer->events_applied(), 10u);
  EXPECT_GT(side->trainer->published_seq(), 0u);

  const auto statz = client.Roundtrip(Request("GET", "/statz"));
  EXPECT_EQ(statz.status, 200);
  EXPECT_NE(statz.body.find("\"checkins_http\": 10"), std::string::npos);
  EXPECT_NE(statz.body.find("\"checkins_accepted\": 10"), std::string::npos);
  EXPECT_NE(statz.body.find("\"events_trained\": 10"), std::string::npos);
  EXPECT_NE(statz.body.find("\"deltas_published\""), std::string::npos);
  EXPECT_NE(statz.body.find("\"delta_apply_ms\""), std::string::npos);
}

TEST_F(IngestServerTest, ColdStartRecommendUsesWordBridge) {
  auto side = MakeSide(ServeMode::kEventLoop, {}, "cold");
  TestHttpClient client(side->server->port());
  const UserId cold = FindColdUser();
  const UserId warm = FindWarmUser();
  ASSERT_GE(cold, 0) << "fixture has no source-only user";
  ASSERT_GE(warm, 0);

  const auto cold_resp =
      client.Roundtrip(Request("GET", RecommendTarget(cold, "&hour=13.5")));
  ASSERT_EQ(cold_resp.status, 200) << cold_resp.body;
  EXPECT_NE(cold_resp.body.find("\"cold_start\": true"), std::string::npos);
  // Non-degraded: real ranked results, not an empty or error payload.
  EXPECT_NE(cold_resp.body.find("\"results\""), std::string::npos);
  EXPECT_NE(cold_resp.body.find("\"poi\""), std::string::npos);

  const auto warm_resp = client.Roundtrip(Request("GET",
                                                  RecommendTarget(warm)));
  ASSERT_EQ(warm_resp.status, 200);
  EXPECT_NE(warm_resp.body.find("\"cold_start\": false"), std::string::npos);

  const auto bad_hour =
      client.Roundtrip(Request("GET", RecommendTarget(cold, "&hour=-3")));
  EXPECT_EQ(bad_hour.status, 400);
  EXPECT_NE(bad_hour.body.find("invalid 'hour'"), std::string::npos);

  EXPECT_GE(side->stats.cold_start_requests.load(), 1u);
}

TEST_F(IngestServerTest, ColdStartMarkerAbsentWithoutScorer) {
  SideOptions opt;
  opt.with_cold_start = false;
  auto side = MakeSide(ServeMode::kEventLoop, opt, "nocold");
  TestHttpClient client(side->server->port());
  const auto resp =
      client.Roundtrip(Request("GET", RecommendTarget(FindColdUser())));
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.find("cold_start"), std::string::npos);
}

TEST_F(IngestServerTest, ColdStartByteIdenticalAcrossModes) {
  auto epoll = MakeSide(ServeMode::kEventLoop, {}, "cold_e");
  auto blocking = MakeSide(ServeMode::kBlocking, {}, "cold_b");
  TestHttpClient a(epoll->server->port());
  TestHttpClient b(blocking->server->port());
  const UserId cold = FindColdUser();
  ASSERT_GE(cold, 0);
  for (const std::string& target :
       {RecommendTarget(cold), RecommendTarget(cold, "&hour=8"),
        RecommendTarget(cold, "&hour=-1"),
        RecommendTarget(FindWarmUser(), "&hour=20")}) {
    const std::string raw = Request("GET", target);
    const auto ra = a.Roundtrip(raw);
    const auto rb = b.Roundtrip(raw);
    EXPECT_EQ(ra.raw, rb.raw) << "request: " << raw;
  }
}

}  // namespace
}  // namespace sttr::stream
