// Tests for the incremental (streaming) trainer: deterministic replay,
// frozen dense tower, row-level delta completeness, publish/rotation, and
// ApplyDelta reproducing the trainer's exact parameters — the unit-level
// half of the ingest -> delta -> serving bit-identity invariant.

#include "stream/incremental_trainer.h"

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../serve/serve_test_util.h"
#include "core/checkpoint.h"
#include "core/delta.h"
#include "core/st_transrec.h"

namespace sttr::stream {
namespace {

using serve::MakeServeFixture;
using serve::ServeFixture;
using serve::ServeTestDir;
using serve::SmallServeModelConfig;
using serve::TrainSmallModel;

/// A Prepare()d (untrained) model over the fixture, ready for trainer Init.
std::unique_ptr<StTransRec> MakeStreamModel(const ServeFixture& f) {
  auto model = std::make_unique<StTransRec>(SmallServeModelConfig());
  STTR_CHECK_OK(model->Prepare(f.world.dataset, f.split));
  return model;
}

/// Loads only the parameter bytes of a full checkpoint into a Prepare()d
/// model — the same thing IncrementalTrainer::Init does with its base.
void LoadBaseParams(StTransRec* model, const std::string& path) {
  StatusOr<CheckpointReader> reader = CheckpointReader::Open(*Env::Default(),
                                                             path);
  STTR_CHECK_OK(reader.status());
  StatusOr<std::string> params = reader->Section("model");
  STTR_CHECK_OK(params.status());
  std::istringstream in(*params);
  STTR_CHECK_OK(model->Load(in));
}

/// First `n` dataset check-ins as stream events, with log-style seqs.
std::vector<CheckinEvent> EventsFromDataset(const ServeFixture& f, size_t n) {
  std::vector<CheckinEvent> events;
  const auto& checkins = f.world.dataset.checkins();
  for (size_t i = 0; i < n && i < checkins.size(); ++i) {
    CheckinEvent e;
    e.user = checkins[i].user;
    e.poi = checkins[i].poi;
    e.city = checkins[i].city;
    e.time = checkins[i].time;
    e.seq = i + 1;
    events.push_back(e);
  }
  return events;
}

void ExpectTablesBitIdentical(const StTransRec& a, const StTransRec& b) {
  const Tensor* ta[3] = {&a.UserEmbeddingTable(), &a.PoiEmbeddingTable(),
                         &a.WordEmbeddingTable()};
  const Tensor* tb[3] = {&b.UserEmbeddingTable(), &b.PoiEmbeddingTable(),
                         &b.WordEmbeddingTable()};
  for (int t = 0; t < 3; ++t) {
    ASSERT_EQ(ta[t]->size(), tb[t]->size());
    for (size_t i = 0; i < ta[t]->size(); ++i) {
      ASSERT_EQ(ta[t]->data()[i], tb[t]->data()[i])
          << "table " << t << " diverges at flat index " << i;
    }
  }
}

class IncrementalTrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ServeTestDir();
    fixture_ = MakeServeFixture();
    TrainSmallModel(fixture_, dir_ + "/ckpt");
    StatusOr<std::string> base =
        FindLatestValidCheckpoint(*Env::Default(), dir_ + "/ckpt");
    STTR_CHECK_OK(base.status());
    base_path_ = *base;
  }

  IncrementalTrainerConfig Config(const std::string& leaf) const {
    IncrementalTrainerConfig cfg;
    cfg.delta_dir = dir_ + "/" + leaf;
    return cfg;
  }

  std::string dir_;
  ServeFixture fixture_;
  std::string base_path_;
};

TEST_F(IncrementalTrainerTest, ReplayIsBitIdentical) {
  const std::vector<CheckinEvent> events = EventsFromDataset(fixture_, 64);
  ASSERT_GE(events.size(), 2u);
  const size_t half = events.size() / 2;
  const std::span<const CheckinEvent> w1(events.data(), half);
  const std::span<const CheckinEvent> w2(events.data() + half,
                                         events.size() - half);

  auto model_a = MakeStreamModel(fixture_);
  IncrementalTrainer a(Config("delta_a"));
  ASSERT_TRUE(a.Init(model_a.get(), fixture_.world.dataset, base_path_).ok());
  ASSERT_TRUE(a.TrainWindow(w1).ok());
  ASSERT_TRUE(a.TrainWindow(w2).ok());

  auto model_b = MakeStreamModel(fixture_);
  IncrementalTrainer b(Config("delta_b"));
  ASSERT_TRUE(b.Init(model_b.get(), fixture_.world.dataset, base_path_).ok());
  ASSERT_TRUE(b.TrainWindow(w1).ok());
  ASSERT_TRUE(b.TrainWindow(w2).ok());

  EXPECT_EQ(a.events_applied(), events.size());
  ExpectTablesBitIdentical(*model_a, *model_b);
  // The cumulative deltas must agree byte-for-byte too.
  EXPECT_EQ(EncodeDeltaCheckpoint(a.BuildDelta()),
            EncodeDeltaCheckpoint(b.BuildDelta()));
}

TEST_F(IncrementalTrainerTest, WindowingDoesNotChangeTheResult) {
  // One window of N events vs. N windows of one event: different optimizer
  // step counts, so the parameters legitimately differ — but the trainer
  // must be deterministic for a FIXED windowing. Guard that two same-shape
  // replays agree while a different windowing is allowed to differ, which
  // documents that "the same event stream" in the invariant means the same
  // window boundaries as well.
  const std::vector<CheckinEvent> events = EventsFromDataset(fixture_, 16);
  auto model_a = MakeStreamModel(fixture_);
  IncrementalTrainer a(Config("delta_a"));
  ASSERT_TRUE(a.Init(model_a.get(), fixture_.world.dataset, base_path_).ok());
  ASSERT_TRUE(a.TrainWindow(events).ok());

  auto model_b = MakeStreamModel(fixture_);
  IncrementalTrainer b(Config("delta_b"));
  ASSERT_TRUE(b.Init(model_b.get(), fixture_.world.dataset, base_path_).ok());
  for (const CheckinEvent& e : events) {
    ASSERT_TRUE(b.TrainWindow(std::span<const CheckinEvent>(&e, 1)).ok());
  }
  EXPECT_EQ(a.events_applied(), b.events_applied());
}

TEST_F(IncrementalTrainerTest, DenseTowerIsFrozen) {
  auto model = MakeStreamModel(fixture_);
  IncrementalTrainer trainer(Config("delta"));
  ASSERT_TRUE(
      trainer.Init(model.get(), fixture_.world.dataset, base_path_).ok());

  // Params 0..2 are the embedding tables; everything after is the dense
  // tower the streaming trainer must never move.
  std::vector<ag::Variable> params = model->Parameters();
  ASSERT_GT(params.size(), 3u);
  std::vector<std::vector<float>> dense_before;
  for (size_t i = 3; i < params.size(); ++i) {
    const Tensor& v = params[i].value();
    dense_before.emplace_back(v.data(), v.data() + v.size());
  }

  ASSERT_TRUE(trainer.TrainWindow(EventsFromDataset(fixture_, 32)).ok());
  ASSERT_GT(trainer.dirty_user_rows() + trainer.dirty_poi_rows(), 0u);

  for (size_t i = 3; i < params.size(); ++i) {
    const Tensor& v = params[i].value();
    const std::vector<float>& before = dense_before[i - 3];
    ASSERT_EQ(before.size(), v.size());
    for (size_t j = 0; j < v.size(); ++j) {
      ASSERT_EQ(before[j], v.data()[j])
          << "dense param " << i << " moved at flat index " << j;
    }
  }
  // And the delta never carries a dense refresh.
  EXPECT_TRUE(trainer.BuildDelta().dense_params.empty());
}

TEST_F(IncrementalTrainerTest, DeltaCoversExactlyTheChangedRows) {
  auto base_model = MakeStreamModel(fixture_);
  LoadBaseParams(base_model.get(), base_path_);

  auto model = MakeStreamModel(fixture_);
  IncrementalTrainer trainer(Config("delta"));
  ASSERT_TRUE(
      trainer.Init(model.get(), fixture_.world.dataset, base_path_).ok());
  ASSERT_TRUE(trainer.TrainWindow(EventsFromDataset(fixture_, 32)).ok());

  const DeltaCheckpoint delta = trainer.BuildDelta();
  struct TableCase {
    const Tensor* before;
    const Tensor* after;
    const EmbeddingRowDelta* rows;
  };
  const TableCase cases[3] = {
      {&base_model->UserEmbeddingTable(), &model->UserEmbeddingTable(),
       &delta.user},
      {&base_model->PoiEmbeddingTable(), &model->PoiEmbeddingTable(),
       &delta.poi},
      {&base_model->WordEmbeddingTable(), &model->WordEmbeddingTable(),
       &delta.word}};
  for (const TableCase& c : cases) {
    const size_t dim = c.after->cols();
    ASSERT_EQ(c.rows->dim, dim);
    std::vector<bool> in_delta(c.after->rows(), false);
    for (int64_t r : c.rows->rows) in_delta[static_cast<size_t>(r)] = true;
    for (size_t r = 0; r < c.after->rows(); ++r) {
      bool changed = false;
      for (size_t j = 0; j < dim; ++j) {
        if (c.before->data()[r * dim + j] != c.after->data()[r * dim + j]) {
          changed = true;
          break;
        }
      }
      // Every bitwise-changed row is in the delta (rows the optimizer
      // touched without net movement may also be listed — that is harmless).
      if (changed) {
        EXPECT_TRUE(in_delta[r]) << "changed row " << r << " missing";
      }
    }
    // Delta payloads carry the post-training row contents.
    for (size_t i = 0; i < c.rows->num_rows(); ++i) {
      const size_t r = static_cast<size_t>(c.rows->rows[i]);
      for (size_t j = 0; j < dim; ++j) {
        ASSERT_EQ(c.rows->row_values(i)[j], c.after->data()[r * dim + j]);
      }
    }
  }
}

TEST_F(IncrementalTrainerTest, ApplyDeltaReproducesTrainerState) {
  auto model = MakeStreamModel(fixture_);
  IncrementalTrainer trainer(Config("delta"));
  ASSERT_TRUE(
      trainer.Init(model.get(), fixture_.world.dataset, base_path_).ok());
  ASSERT_TRUE(trainer.TrainWindow(EventsFromDataset(fixture_, 48)).ok());
  ASSERT_TRUE(trainer.PublishDelta().ok());
  EXPECT_EQ(trainer.published_seq(), 1u);

  StatusOr<std::string> path =
      FindLatestValidDelta(*Env::Default(), trainer.delta_dir());
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  StatusOr<DeltaCheckpoint> delta = ReadDeltaCheckpoint(*Env::Default(), *path);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();

  // A fresh base copy patched with the published delta matches the trainer
  // bit-for-bit: the delta IS the trainer's state relative to the base.
  auto patched = MakeStreamModel(fixture_);
  LoadBaseParams(patched.get(), base_path_);
  ASSERT_TRUE(patched->ApplyDelta(*delta).ok());
  ExpectTablesBitIdentical(*model, *patched);

  // Applying the same cumulative delta again is a no-op (idempotent), which
  // is what makes the serving side's double-buffer rotation safe.
  ASSERT_TRUE(patched->ApplyDelta(*delta).ok());
  ExpectTablesBitIdentical(*model, *patched);
}

TEST_F(IncrementalTrainerTest, PublishRotatesAndBumpsSeq) {
  auto model = MakeStreamModel(fixture_);
  IncrementalTrainerConfig cfg = Config("delta");
  cfg.delta_keep_last = 1;
  IncrementalTrainer trainer(cfg);
  ASSERT_TRUE(
      trainer.Init(model.get(), fixture_.world.dataset, base_path_).ok());

  // Publishing before any training is a no-op: no file appears.
  ASSERT_TRUE(trainer.PublishDelta().ok());
  EXPECT_EQ(trainer.published_seq(), 0u);
  EXPECT_FALSE(FindLatestValidDelta(*Env::Default(), cfg.delta_dir).ok());

  const std::vector<CheckinEvent> events = EventsFromDataset(fixture_, 32);
  ASSERT_TRUE(trainer.TrainWindow({events.data(), 16}).ok());
  ASSERT_TRUE(trainer.PublishDelta().ok());
  ASSERT_TRUE(trainer.TrainWindow({events.data() + 16, 16}).ok());
  ASSERT_TRUE(trainer.PublishDelta().ok());
  EXPECT_EQ(trainer.published_seq(), 2u);

  // keep_last=1: only the newest delta remains, and it carries the
  // provenance of the base it patches.
  StatusOr<std::vector<std::string>> names =
      Env::Default()->ListDir(cfg.delta_dir);
  ASSERT_TRUE(names.ok());
  size_t delta_files = 0;
  for (const std::string& n : *names) delta_files += ParseDeltaSeq(n).ok();
  EXPECT_EQ(delta_files, 1u);

  StatusOr<std::string> path = FindLatestValidDelta(*Env::Default(),
                                                    cfg.delta_dir);
  ASSERT_TRUE(path.ok());
  StatusOr<DeltaCheckpoint> delta = ReadDeltaCheckpoint(*Env::Default(), *path);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->seq, 2u);
  EXPECT_EQ(delta->events_applied, 32u);
  EXPECT_EQ(delta->config_fingerprint, model->ConfigFingerprint());

  // base_epoch / base_model_crc must name the exact base checkpoint.
  StatusOr<CheckpointReader> base =
      CheckpointReader::Open(*Env::Default(), base_path_);
  ASSERT_TRUE(base.ok());
  for (const CheckpointSection& s : base->sections()) {
    if (s.name == "model") {
      EXPECT_EQ(delta->base_model_crc, s.crc);
    }
  }
}

TEST_F(IncrementalTrainerTest, InitRejectsMismatchedBase) {
  // A base trained under a different config fingerprint must be refused.
  StTransRecConfig other = SmallServeModelConfig();
  other.embedding_dim = 16;
  other.checkpoint_dir = dir_ + "/other_ckpt";
  StTransRec other_model(other);
  STTR_CHECK_OK(other_model.Fit(fixture_.world.dataset, fixture_.split));
  StatusOr<std::string> other_base =
      FindLatestValidCheckpoint(*Env::Default(), other.checkpoint_dir);
  ASSERT_TRUE(other_base.ok());

  auto model = MakeStreamModel(fixture_);
  IncrementalTrainer trainer(Config("delta"));
  EXPECT_FALSE(
      trainer.Init(model.get(), fixture_.world.dataset, *other_base).ok());
}

}  // namespace
}  // namespace sttr::stream
