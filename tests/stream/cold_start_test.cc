// Tests for the crossing-city cold-start scorer: cold detection,
// time-of-day bucketing, and word-bridge scoring that is deterministic,
// non-degenerate, and actually driven by the live word embedding table.

#include "stream/cold_start.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "../serve/serve_test_util.h"
#include "core/st_transrec.h"

namespace sttr::stream {
namespace {

using serve::MakeServeFixture;
using serve::ServeFixture;
using serve::TrainSmallModel;

/// A user with check-ins, none of them in `city` (the cold case), or -1.
UserId FindColdUser(const Dataset& ds, CityId city) {
  for (UserId u = 0; u < static_cast<UserId>(ds.num_users()); ++u) {
    const std::vector<size_t>& idx = ds.CheckinsOfUser(u);
    if (idx.empty()) continue;
    bool in_city = false;
    for (size_t i : idx) in_city |= ds.checkins()[i].city == city;
    if (!in_city) return u;
  }
  return -1;
}

/// A user with at least one check-in in `city`, or -1.
UserId FindWarmUser(const Dataset& ds, CityId city) {
  for (UserId u = 0; u < static_cast<UserId>(ds.num_users()); ++u) {
    for (size_t i : ds.CheckinsOfUser(u)) {
      if (ds.checkins()[i].city == city) return u;
    }
  }
  return -1;
}

class ColdStartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = MakeServeFixture();
    const Dataset& ds = fixture_.world.dataset;
    target_ = fixture_.split.target_city;
    cold_user_ = FindColdUser(ds, target_);
    warm_user_ = FindWarmUser(ds, target_);
    ASSERT_GE(cold_user_, 0) << "fixture has no source-only user";
    ASSERT_GE(warm_user_, 0);
    candidates_ = ds.PoisInCity(target_);
    ASSERT_GE(candidates_.size(), 2u);
    model_ = TrainSmallModel(fixture_);
  }

  ServeFixture fixture_;
  CityId target_ = -1;
  UserId cold_user_ = -1;
  UserId warm_user_ = -1;
  std::vector<PoiId> candidates_;
  std::shared_ptr<StTransRec> model_;
};

TEST_F(ColdStartTest, ColdDetection) {
  ColdStartScorer scorer(fixture_.world.dataset, {});
  EXPECT_TRUE(scorer.IsColdIn(cold_user_, target_));
  EXPECT_FALSE(scorer.IsColdIn(warm_user_, target_));
  // Out-of-range users are NOT treated as cold: they fall through to the
  // normal scoring path (which owns invalid-id handling) instead of the
  // bridge.
  EXPECT_FALSE(scorer.IsColdIn(
      static_cast<UserId>(fixture_.world.dataset.num_users()) + 5, target_));
}

TEST_F(ColdStartTest, BucketOfWrapsTheClock) {
  ColdStartConfig cfg;
  cfg.time_buckets = 4;
  ColdStartScorer scorer(fixture_.world.dataset, cfg);
  EXPECT_EQ(scorer.BucketOf(0.0), 0);
  EXPECT_EQ(scorer.BucketOf(5.9), 0);
  EXPECT_EQ(scorer.BucketOf(6.0), 1);
  EXPECT_EQ(scorer.BucketOf(12.0), 2);
  EXPECT_EQ(scorer.BucketOf(23.9), 3);
  // time is hours since epoch; the wall clock wraps at 24.
  EXPECT_EQ(scorer.BucketOf(24.0), 0);
  EXPECT_EQ(scorer.BucketOf(24.0 * 7 + 13.0), 2);
  // Unknown time.
  EXPECT_EQ(scorer.BucketOf(-1.0), -1);
}

TEST_F(ColdStartTest, ScoresAreDeterministicAndNonDegenerate) {
  ColdStartScorer scorer(fixture_.world.dataset, {});
  const Tensor& words = model_->WordEmbeddingTable();
  std::vector<double> a, b;
  scorer.Score(words, cold_user_, /*bucket=*/1, candidates_, &a);
  scorer.Score(words, cold_user_, /*bucket=*/1, candidates_, &b);
  ASSERT_EQ(a.size(), candidates_.size());
  EXPECT_EQ(a, b);
  // Word-bridge scores must discriminate between candidates — a popularity
  // fallback or an all-zeros result would be degenerate.
  bool varies = false;
  for (size_t i = 1; i < a.size(); ++i) varies |= a[i] != a[0];
  EXPECT_TRUE(varies);
}

TEST_F(ColdStartTest, ScoresTrackTheWordTable) {
  // The scorer must read the word table it is handed (the serving
  // snapshot's), not anything precomputed: a different table gives
  // different scores. This is what makes cold-start answers follow
  // streaming word-row updates without any cache to invalidate.
  ColdStartScorer scorer(fixture_.world.dataset, {});
  const Tensor& trained = model_->WordEmbeddingTable();
  Tensor zeros = Tensor::Zeros({trained.rows(), trained.cols()});
  std::vector<double> with_trained, with_zeros;
  scorer.Score(trained, cold_user_, 1, candidates_, &with_trained);
  scorer.Score(zeros, cold_user_, 1, candidates_, &with_zeros);
  EXPECT_NE(with_trained, with_zeros);
}

TEST_F(ColdStartTest, TimeBucketShiftsScores) {
  ColdStartConfig cfg;
  cfg.time_weight = 0.5;
  ColdStartScorer scorer(fixture_.world.dataset, cfg);
  const Tensor& words = model_->WordEmbeddingTable();
  std::vector<double> no_time, bucketed;
  scorer.Score(words, cold_user_, /*bucket=*/-1, candidates_, &no_time);
  // Find some bucket whose popularity prior moves at least one candidate;
  // the fixture's check-ins are not uniform across the day.
  bool moved = false;
  for (size_t b = 0; b < cfg.time_buckets && !moved; ++b) {
    scorer.Score(words, cold_user_, static_cast<int>(b), candidates_,
                 &bucketed);
    moved = bucketed != no_time;
  }
  EXPECT_TRUE(moved);

  // With a zero weight the bucket is inert.
  ColdStartConfig flat;
  flat.time_weight = 0.0;
  ColdStartScorer flat_scorer(fixture_.world.dataset, flat);
  std::vector<double> a, c;
  flat_scorer.Score(words, cold_user_, -1, candidates_, &a);
  flat_scorer.Score(words, cold_user_, 2, candidates_, &c);
  EXPECT_EQ(a, c);
}

}  // namespace
}  // namespace sttr::stream
