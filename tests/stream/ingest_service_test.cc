// Tests for the ingest service: Submit-time validation against the
// dataset's id spaces, backpressure, lifecycle, and the background loop
// draining a stream into trained windows and published deltas.

#include "stream/ingest_service.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../serve/serve_test_util.h"
#include "core/checkpoint.h"
#include "core/delta.h"
#include "core/st_transrec.h"

namespace sttr::stream {
namespace {

using serve::MakeServeFixture;
using serve::ServeFixture;
using serve::ServeTestDir;
using serve::SmallServeModelConfig;
using serve::TrainSmallModel;

class IngestServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ServeTestDir();
    fixture_ = MakeServeFixture();
    TrainSmallModel(fixture_, dir_ + "/ckpt");
    StatusOr<std::string> base =
        FindLatestValidCheckpoint(*Env::Default(), dir_ + "/ckpt");
    STTR_CHECK_OK(base.status());

    model_ = std::make_unique<StTransRec>(SmallServeModelConfig());
    STTR_CHECK_OK(model_->Prepare(fixture_.world.dataset, fixture_.split));
    IncrementalTrainerConfig tcfg;
    tcfg.delta_dir = dir_ + "/delta";
    trainer_ = std::make_unique<IncrementalTrainer>(tcfg);
    STTR_CHECK_OK(trainer_->Init(model_.get(), fixture_.world.dataset, *base));
  }

  CheckinEvent ValidEvent(size_t i = 0) const {
    const CheckinRecord& r = fixture_.world.dataset.checkins()[i];
    CheckinEvent e;
    e.user = r.user;
    e.poi = r.poi;
    e.city = r.city;
    e.time = r.time;
    return e;
  }

  std::string dir_;
  ServeFixture fixture_;
  std::unique_ptr<StTransRec> model_;
  std::unique_ptr<IncrementalTrainer> trainer_;
  IngestStats stats_;
};

TEST_F(IngestServiceTest, SubmitValidatesIds) {
  IngestService svc(fixture_.world.dataset, trainer_.get(), &stats_, {});

  EXPECT_TRUE(svc.Submit(ValidEvent()).ok());

  CheckinEvent bad_user = ValidEvent();
  bad_user.user = static_cast<int64_t>(fixture_.world.dataset.num_users());
  EXPECT_EQ(svc.Submit(bad_user).status().code(),
            StatusCode::kInvalidArgument);

  CheckinEvent bad_poi = ValidEvent();
  bad_poi.poi = -2;
  EXPECT_EQ(svc.Submit(bad_poi).status().code(),
            StatusCode::kInvalidArgument);

  // A stated city that contradicts the POI's home city is refused...
  CheckinEvent wrong_city = ValidEvent();
  wrong_city.city = wrong_city.city == 0 ? 1 : 0;
  EXPECT_EQ(svc.Submit(wrong_city).status().code(),
            StatusCode::kInvalidArgument);

  // ...while an unstated city is filled in from the POI.
  CheckinEvent no_city = ValidEvent();
  no_city.city = -1;
  EXPECT_TRUE(svc.Submit(no_city).ok());

  EXPECT_EQ(stats_.checkins_accepted.load(), 2u);
  EXPECT_EQ(stats_.checkins_rejected.load(), 3u);
  EXPECT_EQ(svc.pending(), 2u);
}

TEST_F(IngestServiceTest, FullQueueIsResourceExhausted) {
  IngestServiceConfig cfg;
  cfg.queue_capacity = 2;
  IngestService svc(fixture_.world.dataset, trainer_.get(), &stats_, cfg);
  ASSERT_TRUE(svc.Submit(ValidEvent(0)).ok());
  ASSERT_TRUE(svc.Submit(ValidEvent(1)).ok());
  EXPECT_EQ(svc.Submit(ValidEvent(2)).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(stats_.checkins_rejected.load(), 1u);
}

TEST_F(IngestServiceTest, StopWithoutStartClosesTheLog) {
  IngestService svc(fixture_.world.dataset, trainer_.get(), &stats_, {});
  svc.Stop();
  EXPECT_EQ(svc.Submit(ValidEvent()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(IngestServiceTest, LoopTrainsWindowsAndPublishes) {
  IngestServiceConfig cfg;
  cfg.window = 8;
  cfg.publish_every_windows = 1;
  IngestService svc(fixture_.world.dataset, trainer_.get(), &stats_, cfg);
  svc.Start();
  // 20 events = two full windows + one partial trained at Stop().
  for (size_t i = 0; i < 20; ++i) {
    while (!svc.Submit(ValidEvent(i)).ok()) {
    }
  }
  svc.Stop();

  EXPECT_EQ(trainer_->events_applied(), 20u);
  EXPECT_EQ(stats_.events_trained.load(), 20u);
  EXPECT_EQ(svc.pending(), 0u);
  // At least the final flush published; the delta on disk covers all 20.
  ASSERT_GT(stats_.deltas_published.load(), 0u);
  StatusOr<std::string> path =
      FindLatestValidDelta(*Env::Default(), trainer_->delta_dir());
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  StatusOr<DeltaCheckpoint> delta = ReadDeltaCheckpoint(*Env::Default(), *path);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->events_applied, 20u);
  EXPECT_EQ(delta->seq, trainer_->published_seq());

  // Stop() is idempotent and the service stays rejecting afterwards.
  svc.Stop();
  EXPECT_FALSE(svc.Submit(ValidEvent()).ok());
}

}  // namespace
}  // namespace sttr::stream
