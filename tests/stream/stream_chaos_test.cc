// Chaos tests for delta publishing: a FaultInjectionEnv on the trainer's
// delta writer fails (and tears) writes, fsyncs and renames at every step of
// the atomic-publish protocol, and the serving-side consumer must never
// observe a torn or half-renamed delta — it either sees the previous good
// delta or nothing, and a retry after the fault publishes cleanly. The
// trainer is driven synchronously (FaultInjectionEnv is not thread-safe).

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../serve/serve_test_util.h"
#include "core/checkpoint.h"
#include "core/delta.h"
#include "core/st_transrec.h"
#include "serve/model_bundle.h"
#include "stream/incremental_trainer.h"
#include "util/fault_injection.h"

namespace sttr::stream {
namespace {

using serve::MakeServeFixture;
using serve::ModelBundle;
using serve::ModelBundleConfig;
using serve::ServeFixture;
using serve::ServeTestDir;
using serve::SmallServeModelConfig;
using serve::TrainSmallModel;

class StreamChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ServeTestDir();
    fixture_ = MakeServeFixture();
    TrainSmallModel(fixture_, dir_ + "/ckpt");
    StatusOr<std::string> base =
        FindLatestValidCheckpoint(*Env::Default(), dir_ + "/ckpt");
    STTR_CHECK_OK(base.status());
    base_path_ = *base;
  }

  std::unique_ptr<StTransRec> MakeStreamModel() {
    auto model = std::make_unique<StTransRec>(SmallServeModelConfig());
    STTR_CHECK_OK(model->Prepare(fixture_.world.dataset, fixture_.split));
    return model;
  }

  std::vector<CheckinEvent> Events(size_t offset, size_t n) const {
    std::vector<CheckinEvent> events;
    const auto& checkins = fixture_.world.dataset.checkins();
    for (size_t i = offset; i < offset + n && i < checkins.size(); ++i) {
      CheckinEvent e;
      e.user = checkins[i].user;
      e.poi = checkins[i].poi;
      e.city = checkins[i].city;
      e.time = checkins[i].time;
      events.push_back(e);
    }
    return events;
  }

  std::string dir_;
  ServeFixture fixture_;
  std::string base_path_;
};

TEST_F(StreamChaosTest, FaultAtEveryStepNeverExposesATornDelta) {
  using Op = FaultInjectionEnv::Op;
  const struct {
    Op op;
    bool torn;
  } cases[] = {
      {Op::kWrite, false}, {Op::kWrite, true},  // clean + torn write fault
      {Op::kFsync, false},
      {Op::kRename, false},
  };
  for (const auto& c : cases) {
    for (size_t nth = 0; nth < 2; ++nth) {
      SCOPED_TRACE("op=" + std::to_string(static_cast<int>(c.op)) +
                   " torn=" + std::to_string(c.torn) +
                   " nth=" + std::to_string(nth));
      const std::string delta_dir =
          dir_ + "/deltas_" + std::to_string(static_cast<int>(c.op)) + "_" +
          std::to_string(c.torn) + "_" + std::to_string(nth);
      FaultInjectionEnv env;
      auto model = MakeStreamModel();
      IncrementalTrainerConfig tcfg;
      tcfg.delta_dir = delta_dir;
      tcfg.env = &env;
      IncrementalTrainer trainer(tcfg);
      ASSERT_TRUE(
          trainer.Init(model.get(), fixture_.world.dataset, base_path_).ok());

      // A first delta publishes cleanly: this is the "previous good state"
      // the faulty publish must not damage.
      ASSERT_TRUE(trainer.TrainWindow(Events(0, 8)).ok());
      ASSERT_TRUE(trainer.PublishDelta().ok());
      ASSERT_EQ(trainer.published_seq(), 1u);
      const StatusOr<DeltaCheckpoint> good = ReadDeltaCheckpoint(
          env, delta_dir + "/" + DeltaFileName(1));
      ASSERT_TRUE(good.ok());

      // Publish again under an injected fault.
      ASSERT_TRUE(trainer.TrainWindow(Events(8, 8)).ok());
      env.set_torn_writes(c.torn);
      env.FailNth(c.op, nth);
      const Status faulty = trainer.PublishDelta();
      env.set_torn_writes(false);
      if (faulty.ok()) {
        // The nth op of this kind never happened during publish — nothing
        // to verify beyond the delta being valid, which the checks below
        // do anyway.
        EXPECT_EQ(env.faults_triggered(), 0u);
      } else {
        EXPECT_EQ(env.faults_triggered(), 1u);
      }

      // Invariant: whatever happened, the newest delta the serving side
      // finds parses completely and targets the right base. A torn temp
      // file or half-renamed delta must never surface.
      StatusOr<std::string> latest = FindLatestValidDelta(env, delta_dir);
      ASSERT_TRUE(latest.ok()) << latest.status().ToString();
      StatusOr<DeltaCheckpoint> seen = ReadDeltaCheckpoint(env, *latest);
      ASSERT_TRUE(seen.ok()) << seen.status().ToString();
      EXPECT_EQ(seen->base_model_crc, good->base_model_crc);
      EXPECT_GE(seen->seq, 1u);

      // Retry after the fault clears: the publish completes and the newest
      // delta carries all 16 events (cumulative).
      env.Reset();
      if (!faulty.ok()) {
        ASSERT_TRUE(trainer.PublishDelta().ok());
      }
      latest = FindLatestValidDelta(env, delta_dir);
      ASSERT_TRUE(latest.ok());
      seen = ReadDeltaCheckpoint(env, *latest);
      ASSERT_TRUE(seen.ok());
      EXPECT_EQ(seen->events_applied, 16u);

      // And the serving bundle applies it end to end.
      ModelBundleConfig bcfg;
      bcfg.checkpoint_dir = dir_ + "/ckpt";
      bcfg.model = SmallServeModelConfig();
      bcfg.delta_dir = delta_dir;
      ModelBundle bundle(fixture_.world.dataset, fixture_.split, bcfg);
      STTR_CHECK_OK(bundle.LoadInitial());
      StatusOr<bool> applied = bundle.ApplyDeltaIfNewer();
      ASSERT_TRUE(applied.ok()) << applied.status().ToString();
      EXPECT_TRUE(*applied);
      EXPECT_EQ(bundle.snapshot()->delta_seq, seen->seq);
    }
  }
}

TEST_F(StreamChaosTest, PublishFailureLeavesTrainerConsistent) {
  // After a failed publish the trainer's in-memory state is untouched: the
  // same cumulative delta is re-published on the next attempt, and its
  // bytes match what a fault-free publish would have produced.
  FaultInjectionEnv env;
  auto model = MakeStreamModel();
  IncrementalTrainerConfig tcfg;
  tcfg.delta_dir = dir_ + "/deltas";
  tcfg.env = &env;
  IncrementalTrainer trainer(tcfg);
  ASSERT_TRUE(
      trainer.Init(model.get(), fixture_.world.dataset, base_path_).ok());
  ASSERT_TRUE(trainer.TrainWindow(Events(0, 8)).ok());

  const DeltaCheckpoint before = trainer.BuildDelta();
  env.FailNth(FaultInjectionEnv::Op::kWrite, 0);
  EXPECT_FALSE(trainer.PublishDelta().ok());
  EXPECT_EQ(trainer.published_seq(), 0u);

  env.Reset();
  ASSERT_TRUE(trainer.PublishDelta().ok());
  EXPECT_EQ(trainer.published_seq(), 1u);
  StatusOr<DeltaCheckpoint> published = ReadDeltaCheckpoint(
      env, tcfg.delta_dir + "/" + DeltaFileName(1));
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(EncodeDeltaCheckpoint(*published).size(),
            EncodeDeltaCheckpoint(before).size());
  EXPECT_EQ(published->events_applied, before.events_applied);
}

}  // namespace
}  // namespace sttr::stream
