// Byte-level equivalence between the two serving modes: the epoll
// event-loop core and the blocking thread-per-connection reference are two
// independent implementations of the same HTTP contract, and these tests
// pin that contract at the strongest possible level — every response
// (status line, headers, body) must be byte-for-byte identical across modes
// for the same request stream. Covers the success paths, every parameter
// error, protocol errors, keep-alive semantics, request timeouts, and
// model hot-reload; plus shutdown-under-fire robustness for the epoll core.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "serve/batcher.h"
#include "serve/candidate_index.h"
#include "serve/model_bundle.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "serve/stats.h"
#include "serve_test_util.h"
#include "test_http_client.h"
#include "util/check.h"
#include "util/fs.h"
#include "util/string_util.h"

namespace sttr::serve {
namespace {

/// One complete serving stack (bundle + cache + batcher + server) in a
/// given mode. Each side owns its mutable state so cache hit/miss sequences
/// evolve in lockstep when both sides see the same request stream.
struct Side {
  ServeStats stats;
  std::unique_ptr<ModelBundle> bundle;
  std::unique_ptr<ResultCache> cache;
  std::unique_ptr<ScoreBatcher> batcher;
  std::unique_ptr<RecommendServer> server;

  ~Side() {
    if (server != nullptr) server->Shutdown();
    if (batcher != nullptr) batcher->Stop();
  }
};

class EquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new ServeFixture(MakeServeFixture());
    ckpt_dir_ = new std::string(ServeTestDir());
    TrainSmallModel(*fixture_, *ckpt_dir_);
  }
  static void TearDownTestSuite() {
    delete ckpt_dir_;
    delete fixture_;
    ckpt_dir_ = nullptr;
    fixture_ = nullptr;
  }

  void SetUp() override {
    index_ = std::make_unique<CandidateIndex>(fixture_->world.dataset,
                                              &fixture_->split,
                                              CandidateIndexConfig{});
    epoll_ = MakeSide(ServeMode::kEventLoop);
    blocking_ = MakeSide(ServeMode::kBlocking);
  }

  void TearDown() override {
    epoll_.reset();
    blocking_.reset();
  }

  std::unique_ptr<Side> MakeSide(
      ServeMode mode,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000)) {
    auto side = std::make_unique<Side>();
    ModelBundleConfig bundle_config;
    bundle_config.checkpoint_dir = *ckpt_dir_;
    bundle_config.model = SmallServeModelConfig();
    side->bundle = std::make_unique<ModelBundle>(
        fixture_->world.dataset, fixture_->split, bundle_config);
    STTR_CHECK_OK(side->bundle->LoadInitial());
    side->cache = std::make_unique<ResultCache>(ResultCacheConfig{});
    ResultCache* cache = side->cache.get();
    side->bundle->AddReloadListener(
        [cache](const ModelSnapshot&) { cache->InvalidateAll(); });
    side->batcher =
        std::make_unique<ScoreBatcher>(BatcherConfig{}, &side->stats);
    side->batcher->Start();
    ServerConfig config;
    config.mode = mode;
    config.num_workers = 4;
    config.request_timeout = timeout;
    config.default_city = fixture_->split.target_city;
    side->server = std::make_unique<RecommendServer>(
        config, fixture_->world.dataset, side->bundle.get(), index_.get(),
        side->batcher.get(), side->cache.get(), &side->stats);
    STTR_CHECK_OK(side->server->Start());
    return side;
  }

  GeoPoint PoiLocation(size_t i) {
    const auto& pois =
        fixture_->world.dataset.PoisInCity(fixture_->split.target_city);
    return fixture_->world.dataset.poi(pois[i % pois.size()]).location;
  }

  std::string RecommendTarget(UserId user, size_t loc_index, size_t k,
                              const std::string& extra = "") {
    const GeoPoint loc = PoiLocation(loc_index);
    return "/recommend?user=" + std::to_string(user) +
           "&lat=" + StrFormat("%.8f", loc.lat) +
           "&lon=" + StrFormat("%.8f", loc.lon) + "&k=" + std::to_string(k) +
           extra;
  }

  /// The equivalence oracle: same raw request to both sides, responses
  /// must match byte for byte.
  void ExpectIdentical(TestHttpClient& a, TestHttpClient& b,
                       const std::string& raw) {
    const auto ra = a.Roundtrip(raw);
    const auto rb = b.Roundtrip(raw);
    EXPECT_EQ(ra.raw, rb.raw) << "request: " << raw;
  }

  static ServeFixture* fixture_;
  static std::string* ckpt_dir_;

  std::unique_ptr<CandidateIndex> index_;
  std::unique_ptr<Side> epoll_;
  std::unique_ptr<Side> blocking_;
};

ServeFixture* EquivalenceTest::fixture_ = nullptr;
std::string* EquivalenceTest::ckpt_dir_ = nullptr;

std::string Request(const std::string& method, const std::string& target) {
  return method + " " + target + " HTTP/1.1\r\nHost: t\r\n\r\n";
}

TEST_F(EquivalenceTest, AllEndpointsAndErrorsAreByteIdentical) {
  TestHttpClient a(epoll_->server->port());
  TestHttpClient b(blocking_->server->port());

  std::vector<std::string> targets;
  // Success paths: cold, cached (second hit of the same key), nocache,
  // varying user/location/k, default k/city, POST.
  for (UserId user = 0; user < 4; ++user) {
    const auto t =
        RecommendTarget(user, static_cast<size_t>(user) * 3, 5 + user);
    targets.push_back(t);
    targets.push_back(t);  // cached: true on both sides or neither
    targets.push_back(RecommendTarget(user, static_cast<size_t>(user) * 3,
                                      5 + user, "&nocache=1"));
  }
  targets.push_back("/recommend?user=1&lat=0.5&lon=0.5");  // default k
  // Parameter errors, one per validation branch (order matters and is
  // part of the pinned contract).
  targets.push_back("/recommend");
  targets.push_back("/recommend?lat=1&lon=1");
  targets.push_back("/recommend?user=zzz&lat=1&lon=1");
  targets.push_back("/recommend?user=-3&lat=1&lon=1");
  targets.push_back("/recommend?user=99999999&lat=1&lon=1");
  targets.push_back("/recommend?user=1");
  targets.push_back("/recommend?user=1&lat=abc&lon=1");
  targets.push_back("/recommend?user=1&lat=1&lon=");
  targets.push_back("/recommend?user=1&lat=1&lon=1&city=zz");
  targets.push_back("/recommend?user=1&lat=1&lon=1&city=-1");
  targets.push_back("/recommend?user=1&lat=1&lon=1&city=99");
  targets.push_back("/recommend?user=1&lat=1&lon=1&k=0");
  targets.push_back("/recommend?user=1&lat=1&lon=1&k=-2");
  targets.push_back("/recommend?user=1&lat=1&lon=1&k=100000");
  targets.push_back("/recommend?user=1&lat=1&lon=1&k=abc");
  // Error precedence: user error wins over lat and k errors.
  targets.push_back("/recommend?user=zzz&lat=abc&lon=1&k=0");
  // First-occurrence-wins for duplicate params.
  targets.push_back("/recommend?user=1&user=zzz&lat=1&lon=1");
  targets.push_back("/recommend?user=2&lat=1&lat=abc&lon=1&k=5&k=0");
  // nocache=0 means "do use the cache".
  targets.push_back(RecommendTarget(2, 6, 7, "&nocache=0"));
  // Other endpoints.
  targets.push_back("/healthz");
  targets.push_back("/nosuchpath");
  targets.push_back("/");

  for (const auto& target : targets) {
    ExpectIdentical(a, b, Request("GET", target));
  }
  // POST is accepted; other methods are 400 (and stay keep-alive).
  ExpectIdentical(a, b, Request("POST", "/healthz"));
  ExpectIdentical(a, b, Request("DELETE", "/healthz"));
  ExpectIdentical(a, b, Request("GET", "/healthz"));  // conn still usable
}

TEST_F(EquivalenceTest, ProtocolErrorsAreByteIdenticalAndClose) {
  const std::vector<std::string> raws = {
      "NONSENSE\r\n\r\n",
      "GET /\r\n\r\n",
      "GET / toomany HTTP/1.1\r\n\r\n",
      "GET / SPDY/3\r\n\r\n",
  };
  for (const auto& raw : raws) {
    TestHttpClient a(epoll_->server->port());
    TestHttpClient b(blocking_->server->port());
    const auto ra = a.Roundtrip(raw);
    const auto rb = b.Roundtrip(raw);
    EXPECT_EQ(ra.raw, rb.raw) << raw;
    EXPECT_EQ(ra.status, 400);
    EXPECT_TRUE(a.WaitForClose());
    EXPECT_TRUE(b.WaitForClose());
  }
  {
    // Oversized head: 431 on both, byte-identical, then close.
    TestHttpClient a(epoll_->server->port());
    TestHttpClient b(blocking_->server->port());
    const std::string huge =
        "GET / HTTP/1.1\r\nX-Junk: " + std::string(20'000, 'a');
    const auto ra = a.Roundtrip(huge);
    const auto rb = b.Roundtrip(huge);
    EXPECT_EQ(ra.raw, rb.raw);
    EXPECT_EQ(ra.status, 431);
    EXPECT_TRUE(a.WaitForClose());
    EXPECT_TRUE(b.WaitForClose());
  }
}

TEST_F(EquivalenceTest, ConnectionCloseAndTimeoutsAreByteIdentical) {
  {
    TestHttpClient a(epoll_->server->port());
    TestHttpClient b(blocking_->server->port());
    const std::string raw =
        "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
    const auto ra = a.Roundtrip(raw);
    const auto rb = b.Roundtrip(raw);
    EXPECT_EQ(ra.raw, rb.raw);
    EXPECT_TRUE(a.WaitForClose());
    EXPECT_TRUE(b.WaitForClose());
  }
  {
    // A stranded partial request gets the same 408 bytes from both modes.
    // Probe one side at a time: a client connected but not yet sending
    // would hit the (silent) *idle* close while the other side's 408 is
    // awaited.
    auto fast_epoll =
        MakeSide(ServeMode::kEventLoop, std::chrono::milliseconds(200));
    auto fast_blocking =
        MakeSide(ServeMode::kBlocking, std::chrono::milliseconds(200));
    const auto probe = [](int port) {
      TestHttpClient client(port);
      const auto r = client.Roundtrip("GET /part HTTP/1.1\r\nHost:");
      EXPECT_TRUE(client.WaitForClose());
      return r;
    };
    const auto ra = probe(fast_epoll->server->port());
    const auto rb = probe(fast_blocking->server->port());
    EXPECT_EQ(ra.raw, rb.raw);
    EXPECT_EQ(ra.status, 408);
  }
}

TEST_F(EquivalenceTest, HotReloadKeepsModesInLockstep) {
  TestHttpClient a(epoll_->server->port());
  TestHttpClient b(blocking_->server->port());

  const auto batch = [&](const char* phase) {
    for (UserId user = 0; user < 3; ++user) {
      const std::string raw = Request(
          "GET", RecommendTarget(user, static_cast<size_t>(user) * 5, 8));
      const auto ra = a.Roundtrip(raw);
      const auto rb = b.Roundtrip(raw);
      EXPECT_EQ(ra.raw, rb.raw) << phase << ": " << raw;
    }
    const auto ha = a.Roundtrip(Request("GET", "/healthz"));
    const auto hb = b.Roundtrip(Request("GET", "/healthz"));
    EXPECT_EQ(ha.raw, hb.raw) << phase;
  };

  batch("before reload");
  EXPECT_NE(a.Get(RecommendTarget(0, 0, 8)).body.find("\"model_version\": 1"),
            std::string::npos);

  // The trainer lands a newer checkpoint; both bundles swap it in at an
  // explicit barrier (the watcher would do the same asynchronously), which
  // also invalidates both caches via the reload listener.
  const auto latest = FindLatestValidCheckpoint(*Env::Default(), *ckpt_dir_);
  STTR_CHECK_OK(latest.status());
  std::filesystem::copy_file(
      *latest,
      std::filesystem::path(*ckpt_dir_) / CheckpointFileName(/*epoch=*/7));
  auto swapped_a = epoll_->bundle->ReloadIfNewer();
  auto swapped_b = blocking_->bundle->ReloadIfNewer();
  STTR_CHECK_OK(swapped_a.status());
  STTR_CHECK_OK(swapped_b.status());
  ASSERT_TRUE(*swapped_a);
  ASSERT_TRUE(*swapped_b);

  batch("after reload");
  // Both sides now serve version 2 / epoch 7 — visible in the payload, so
  // the byte-equality above already proves lockstep; spot-check anyway.
  EXPECT_NE(a.Get(RecommendTarget(0, 0, 8)).body.find("\"model_version\": 2"),
            std::string::npos);
}

TEST_F(EquivalenceTest, ShutdownUnderConcurrentTrafficIsGraceful) {
  // Robustness (not byte-parity): shutting the epoll server down while
  // clients hammer it must never crash, deadlock, or hand out a torn
  // response — every response that does arrive is complete and well-formed.
  constexpr int kClients = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> clients;
  const int port = epoll_->server->port();
  const std::string raw = Request("GET", RecommendTarget(1, 2, 5));
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Tolerant client: the server may close at any point; the only
        // failure is a *partial* response (headers promising more body
        // bytes than arrive before EOF).
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) continue;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<uint16_t>(port));
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) != 0 ||
            ::send(fd, raw.data(), raw.size(), MSG_NOSIGNAL) !=
                static_cast<ssize_t>(raw.size())) {
          ::close(fd);
          continue;
        }
        std::string buf;
        char chunk[4096];
        ssize_t n;
        while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
          buf.append(chunk, static_cast<size_t>(n));
        }
        ::close(fd);
        const size_t head_end = buf.find("\r\n\r\n");
        if (buf.empty()) continue;  // rejected before a response: fine
        if (head_end == std::string::npos) {
          torn.fetch_add(1);
          continue;
        }
        const size_t cl = buf.find("Content-Length: ");
        if (cl == std::string::npos ||
            buf.size() - head_end - 4 != std::strtoull(buf.c_str() + cl + 16,
                                                       nullptr, 10)) {
          torn.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  epoll_->server->Shutdown();
  stop.store(true);
  for (auto& t : clients) t.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_FALSE(epoll_->server->running());
}

}  // namespace
}  // namespace sttr::serve
