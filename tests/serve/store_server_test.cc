// RecommendServer over an EmbeddingStore, end to end over real HTTP, in
// both ServeModes: a sharded-store server must answer byte-for-byte what an
// in-process-store server answers (which itself matches a store-less
// server's scores), and when every shard is down the server must degrade
// explicitly — "degraded": true with the popularity fallback, /healthz 503
// with a reason, counters in /statz, and no degraded entry ever poisoning
// the result cache.

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "serve/candidate_index.h"
#include "serve/embedding_store.h"
#include "serve/model_bundle.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "serve/shard_server.h"
#include "serve/sharded_store.h"
#include "serve/stats.h"
#include "serve_test_util.h"
#include "test_http_client.h"
#include "util/check.h"
#include "util/string_util.h"

namespace sttr::serve {
namespace {

constexpr size_t kNumShards = 2;

/// One self-contained serving stack (bundle + index + cache + server) with
/// an optional EmbeddingStore, on an ephemeral port.
struct Stack {
  std::unique_ptr<ModelBundle> bundle;
  std::unique_ptr<CandidateIndex> index;
  std::unique_ptr<ResultCache> cache;
  std::unique_ptr<ServeStats> stats;
  std::unique_ptr<RecommendServer> server;

  ~Stack() {
    if (server != nullptr) server->Shutdown();
  }
};

class StoreServerTest : public ::testing::TestWithParam<ServeMode> {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new ServeFixture(MakeServeFixture());
    // Not ServeTestDir(): in suite setup that resolves to a suite-named
    // directory shared by every concurrently running ctest process of this
    // suite, and its wipe-on-entry would nuke a sibling's checkpoints
    // mid-load. Keyed by pid instead.
    std::filesystem::path dir = ::testing::TempDir();
    dir /= "sttr_store_server_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    ckpt_dir_ = new std::string(dir.string());
    trainer_ = new std::shared_ptr<StTransRec>(
        TrainSmallModel(*fixture_, *ckpt_dir_));
  }
  static void TearDownTestSuite() {
    delete trainer_;
    delete ckpt_dir_;
    delete fixture_;
    trainer_ = nullptr;
    ckpt_dir_ = nullptr;
    fixture_ = nullptr;
  }

  void SetUp() override {
    for (size_t i = 0; i < kNumShards; ++i) {
      shards_.push_back(std::make_unique<ShardServer>(
          ShardServerConfig{}, BuildShardSlice(**trainer_, i, kNumShards)));
      ASSERT_TRUE(shards_.back()->Start().ok());
      shard_ports_.push_back(shards_.back()->port());
    }
  }

  void TearDown() override {
    for (auto& shard : shards_) shard->Shutdown();
  }

  std::unique_ptr<Stack> MakeStack(EmbeddingStore* store,
                                   bool with_cache = false) {
    auto stack = std::make_unique<Stack>();
    ModelBundleConfig bundle_config;
    bundle_config.checkpoint_dir = *ckpt_dir_;
    bundle_config.model = SmallServeModelConfig();
    stack->bundle = std::make_unique<ModelBundle>(
        fixture_->world.dataset, fixture_->split, bundle_config);
    STTR_CHECK_OK(stack->bundle->LoadInitial());

    CandidateIndexConfig index_config;
    index_config.min_candidates = 30;
    stack->index = std::make_unique<CandidateIndex>(
        fixture_->world.dataset, &fixture_->split, index_config);
    stack->stats = std::make_unique<ServeStats>();
    if (with_cache) {
      ResultCacheConfig cache_config;
      cache_config.ttl = std::chrono::milliseconds(0);  // no expiry
      stack->cache = std::make_unique<ResultCache>(cache_config);
    }

    ServerConfig server_config;
    server_config.mode = GetParam();
    server_config.num_workers = 4;
    server_config.default_city = fixture_->split.target_city;
    server_config.enable_cache = with_cache;
    server_config.store_deadline = std::chrono::milliseconds(500);
    stack->server = std::make_unique<RecommendServer>(
        server_config, fixture_->world.dataset, stack->bundle.get(),
        stack->index.get(), /*batcher=*/nullptr, stack->cache.get(),
        stack->stats.get(), store);
    STTR_CHECK_OK(stack->server->Start());
    return stack;
  }

  std::unique_ptr<ShardedEmbeddingStore> MakeShardedStore(
      ShardedStoreOptions opts = {}) {
    opts.shard_ports = shard_ports_;
    const Tensor& users = (*trainer_)->UserEmbeddingTable();
    const Tensor& pois = (*trainer_)->PoiEmbeddingTable();
    return std::make_unique<ShardedEmbeddingStore>(
        std::move(opts), users.cols(), users.rows(), pois.rows());
  }

  std::string RecommendTarget(UserId user, size_t poi_index, size_t k) {
    const auto& pois =
        fixture_->world.dataset.PoisInCity(fixture_->split.target_city);
    const GeoPoint loc =
        fixture_->world.dataset.poi(pois[poi_index % pois.size()]).location;
    return "/recommend?user=" + std::to_string(user) +
           "&lat=" + StrFormat("%.8f", loc.lat) +
           "&lon=" + StrFormat("%.8f", loc.lon) +
           "&k=" + std::to_string(k);
  }

  static ServeFixture* fixture_;
  static std::string* ckpt_dir_;
  static std::shared_ptr<StTransRec>* trainer_;

  std::vector<std::unique_ptr<ShardServer>> shards_;
  std::vector<int> shard_ports_;
};

ServeFixture* StoreServerTest::fixture_ = nullptr;
std::string* StoreServerTest::ckpt_dir_ = nullptr;
std::shared_ptr<StTransRec>* StoreServerTest::trainer_ = nullptr;

// The bit-identity chain, over the wire: a server gathering rows from shard
// processes must answer the exact bytes of a server reading the tables
// directly through the in-process store.
TEST_P(StoreServerTest, ShardedStoreAnswersBytesOfInProcessStore) {
  InProcessEmbeddingStore oracle_store(*trainer_);
  auto sharded_store = MakeShardedStore();
  auto oracle = MakeStack(&oracle_store);
  auto sharded = MakeStack(sharded_store.get());

  TestHttpClient oracle_client(oracle->server->port());
  TestHttpClient sharded_client(sharded->server->port());
  for (UserId user = 0; user < 6; ++user) {
    const std::string target =
        RecommendTarget(user, static_cast<size_t>(user), 10);
    const auto want = oracle_client.Get(target);
    const auto got = sharded_client.Get(target);
    ASSERT_EQ(want.status, 200);
    EXPECT_EQ(got.body, want.body) << target;
    EXPECT_NE(got.body.find("\"degraded\": false"), std::string::npos);
  }
  EXPECT_EQ(sharded->stats->degraded_requests.load(), 0u);
}

// And the chain's other link: a store-backed server must not change the
// *scores* relative to a server with no store at all (whose body differs
// only by the absent "degraded" field).
TEST_P(StoreServerTest, StoreBackedScoresMatchStorelessServer) {
  auto storeless = MakeStack(nullptr);
  InProcessEmbeddingStore store(*trainer_);
  auto stored = MakeStack(&store);

  TestHttpClient storeless_client(storeless->server->port());
  TestHttpClient stored_client(stored->server->port());
  const std::string target = RecommendTarget(3, 1, 10);
  const auto want = storeless_client.Get(target);
  auto got = stored_client.Get(target);
  ASSERT_EQ(want.status, 200);
  ASSERT_EQ(got.status, 200);
  // Splice the store-only field out; everything else must match exactly.
  const std::string marker = ", \"degraded\": false";
  const size_t at = got.body.find(marker);
  ASSERT_NE(at, std::string::npos) << got.body;
  got.body.erase(at, marker.size());
  EXPECT_EQ(got.body, want.body);
}

TEST_P(StoreServerTest, AllShardsDownDegradesExplicitlyAndHealthzReports) {
  ShardedStoreOptions opts;
  // One retry so a stale pooled connection (dead since the shutdown below)
  // costs an attempt, not the request; threshold 2 still trips the breaker
  // deterministically on the first post-shutdown gather — the dead pooled
  // connection and the refused reconnect are two counted failures.
  opts.max_retries = 1;
  opts.trip_threshold = 2;
  opts.backoff_base = std::chrono::milliseconds(1);
  opts.open_duration = std::chrono::milliseconds(100);
  opts.default_deadline = std::chrono::milliseconds(200);
  auto store = MakeShardedStore(opts);
  auto stack = MakeStack(store.get(), /*with_cache=*/true);
  TestHttpClient client(stack->server->port());
  const std::string target = RecommendTarget(2, 0, 5);

  // Healthy first: real scores, cache fills.
  const auto healthy = client.Get(target);
  ASSERT_EQ(healthy.status, 200);
  EXPECT_NE(healthy.body.find("\"degraded\": false"), std::string::npos);
  EXPECT_EQ(client.Get("/healthz").status, 200);

  for (auto& shard : shards_) shard->Shutdown();

  // The cached entry is still valid — served from cache, not degraded.
  const auto cached = client.Get(target);
  ASSERT_EQ(cached.status, 200);
  EXPECT_NE(cached.body.find("\"cached\": true"), std::string::npos);
  EXPECT_NE(cached.body.find("\"degraded\": false"), std::string::npos);

  // A cache-missing request must degrade: explicit flag, popularity
  // ranking, HTTP 200 (the endpoint still serves), counter bumped.
  const std::string cold_target = RecommendTarget(4, 2, 5);
  const auto degraded = client.Get(cold_target);
  ASSERT_EQ(degraded.status, 200);
  EXPECT_NE(degraded.body.find("\"degraded\": true"), std::string::npos);
  EXPECT_NE(degraded.body.find("\"results\": ["), std::string::npos);
  EXPECT_GE(stack->stats->degraded_requests.load(), 1u);

  // The breaker has tripped by now, so /healthz flags the degradation.
  const auto health = client.Get("/healthz");
  EXPECT_EQ(health.status, 503);
  EXPECT_NE(health.body.find("\"status\": \"degraded\""), std::string::npos);
  EXPECT_NE(health.body.find("embedding shards down"), std::string::npos);

  // /statz surfaces the store counters.
  const auto statz = client.Get("/statz");
  EXPECT_NE(statz.body.find("\"degraded_requests\": "), std::string::npos);
  EXPECT_NE(statz.body.find("\"shards_down\": "), std::string::npos);

  // Restart the shards; once the breaker cooldown passes, the same request
  // serves real scores again — and "cached": false proves the degraded
  // response was never written into the cache.
  for (size_t i = 0; i < kNumShards; ++i) {
    shards_[i] = std::make_unique<ShardServer>(
        ShardServerConfig{.port = shard_ports_[i]},
        BuildShardSlice(**trainer_, i, kNumShards));
    ASSERT_TRUE(shards_[i]->Start().ok());
  }
  std::this_thread::sleep_for(opts.open_duration +
                              std::chrono::milliseconds(50));
  const auto recovered = client.Get(cold_target);
  ASSERT_EQ(recovered.status, 200);
  EXPECT_NE(recovered.body.find("\"cached\": false"), std::string::npos)
      << "degraded response leaked into the result cache";
  EXPECT_NE(recovered.body.find("\"degraded\": false"), std::string::npos);
  EXPECT_EQ(client.Get("/healthz").status, 200);

  // The degraded and recovered rankings genuinely differ in provenance:
  // popularity scores are integer check-in counts, model scores are
  // sigmoids in (0, 1) — a degraded body can never be mistaken for a real
  // one.
  EXPECT_NE(degraded.body, recovered.body);
}

INSTANTIATE_TEST_SUITE_P(BothModes, StoreServerTest,
                         ::testing::Values(ServeMode::kEventLoop,
                                           ServeMode::kBlocking),
                         [](const auto& mode_info) {
                           return mode_info.param == ServeMode::kEventLoop
                                      ? "EventLoop"
                                      : "Blocking";
                         });

}  // namespace
}  // namespace sttr::serve
