// Unit tests for the incremental HTTP/1.1 request-head parser and the
// response serializers. The parser is driven exactly as the event loop
// drives it — over a growing buffer, byte at a time, with pipelined and
// partial input — and its verdicts must reproduce the blocking
// implementation's request-line/header semantics (the equivalence suite then
// pins the end-to-end bytes).

#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "serve/conn.h"

namespace sttr::serve {
namespace {

constexpr size_t kMaxBytes = 16 * 1024;

ParseStatus Parse(std::string_view buffer, ParsedRequest* out,
                  size_t max_bytes = kMaxBytes) {
  return ParseRequest(buffer, max_bytes, out);
}

TEST(HttpParserTest, ParsesSimpleGet) {
  ParsedRequest req;
  const std::string raw = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_EQ(Parse(raw, &req), ParseStatus::kComplete);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/healthz");
  EXPECT_EQ(req.path, "/healthz");
  EXPECT_EQ(req.query, "");
  EXPECT_TRUE(req.keep_alive);
  EXPECT_EQ(req.consumed, raw.size());
}

TEST(HttpParserTest, SplitsQueryString) {
  ParsedRequest req;
  ASSERT_EQ(Parse("GET /recommend?user=3&k=5 HTTP/1.1\r\n\r\n", &req),
            ParseStatus::kComplete);
  EXPECT_EQ(req.path, "/recommend");
  EXPECT_EQ(req.query, "user=3&k=5");
}

TEST(HttpParserTest, ByteAtATimeNeedsMoreUntilTerminator) {
  const std::string raw =
      "GET /recommend?user=1&lat=2&lon=3 HTTP/1.1\r\n"
      "Host: example\r\nAccept: */*\r\n\r\n";
  std::string buffer;
  ParsedRequest req;
  for (size_t i = 0; i + 1 < raw.size(); ++i) {
    buffer += raw[i];
    ASSERT_EQ(Parse(buffer, &req), ParseStatus::kNeedMore)
        << "after " << (i + 1) << " bytes";
  }
  buffer += raw.back();
  ASSERT_EQ(Parse(buffer, &req), ParseStatus::kComplete);
  EXPECT_EQ(req.consumed, raw.size());
  EXPECT_EQ(req.query, "user=1&lat=2&lon=3");
}

TEST(HttpParserTest, PipelinedRequestsConsumeOneAtATime) {
  const std::string first = "GET /a HTTP/1.1\r\n\r\n";
  const std::string second = "GET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
  std::string buffer = first + second;

  ParsedRequest req;
  ASSERT_EQ(Parse(buffer, &req), ParseStatus::kComplete);
  EXPECT_EQ(req.path, "/a");
  EXPECT_TRUE(req.keep_alive);
  EXPECT_EQ(req.consumed, first.size());

  buffer.erase(0, req.consumed);
  ASSERT_EQ(Parse(buffer, &req), ParseStatus::kComplete);
  EXPECT_EQ(req.path, "/b");
  EXPECT_FALSE(req.keep_alive);
  EXPECT_EQ(req.consumed, second.size());
}

TEST(HttpParserTest, ConnectionCloseIsCaseInsensitiveAndTrimmed) {
  ParsedRequest req;
  ASSERT_EQ(Parse("GET / HTTP/1.1\r\n  CONNECTION: Close  \r\n\r\n", &req),
            ParseStatus::kComplete);
  EXPECT_FALSE(req.keep_alive);
  // Internal whitespace is significant — same exact comparison as the
  // blocking server's ToLower(Trim(line)) == "connection: close".
  ASSERT_EQ(Parse("GET / HTTP/1.1\r\nConnection:   close\r\n\r\n", &req),
            ParseStatus::kComplete);
  EXPECT_TRUE(req.keep_alive);
  // Unrelated headers must not flip it.
  ASSERT_EQ(Parse("GET / HTTP/1.1\r\nX-Connection: close\r\n\r\n", &req),
            ParseStatus::kComplete);
  EXPECT_TRUE(req.keep_alive);
}

TEST(HttpParserTest, MalformedRequestLines) {
  ParsedRequest req;
  // Too few tokens.
  EXPECT_EQ(Parse("NONSENSE\r\n\r\n", &req), ParseStatus::kMalformed);
  EXPECT_EQ(Parse("GET /\r\n\r\n", &req), ParseStatus::kMalformed);
  // Too many tokens.
  EXPECT_EQ(Parse("GET / extra HTTP/1.1\r\n\r\n", &req),
            ParseStatus::kMalformed);
  // Wrong protocol.
  EXPECT_EQ(Parse("GET / SMTP/1.0\r\n\r\n", &req), ParseStatus::kMalformed);
  EXPECT_EQ(Parse("GET / HTTP/2\r\n\r\n", &req), ParseStatus::kMalformed);
  // HTTP/1.x is accepted (prefix match, like the blocking StartsWith).
  EXPECT_EQ(Parse("GET / HTTP/1.0\r\n\r\n", &req), ParseStatus::kComplete);
}

TEST(HttpParserTest, OversizedHeadIsBounded) {
  ParsedRequest req;
  // Below the cap without a terminator: keep reading.
  std::string head = "GET / HTTP/1.1\r\nX-Junk: " + std::string(100, 'a');
  EXPECT_EQ(Parse(head, &req, /*max_bytes=*/1024), ParseStatus::kNeedMore);
  // Past the cap without a terminator: reject, never buffer unboundedly.
  head += std::string(2000, 'a');
  EXPECT_EQ(Parse(head, &req, /*max_bytes=*/1024), ParseStatus::kTooLarge);
  // A complete (terminated) head is parsed even if the buffer has since
  // grown past the cap with pipelined input behind it.
  const std::string ok = "GET / HTTP/1.1\r\n\r\n";
  EXPECT_EQ(Parse(ok + std::string(5000, 'b'), &req, /*max_bytes=*/1024),
            ParseStatus::kComplete);
  EXPECT_EQ(req.consumed, ok.size());
}

TEST(HttpParserTest, TornMultibyteUtf8InTargetIsByteTransparent) {
  // "/café" in UTF-8; é = 0xC3 0xA9. Split the buffer inside the multibyte
  // sequence: the parser must neither complete early nor mangle the bytes.
  const std::string raw = "GET /caf\xC3\xA9?q=\xE2\x82\xAC HTTP/1.1\r\n\r\n";
  const size_t torn_at = raw.find('\xC3') + 1;  // between the two é bytes
  ParsedRequest req;
  EXPECT_EQ(Parse(raw.substr(0, torn_at), &req), ParseStatus::kNeedMore);
  ASSERT_EQ(Parse(raw, &req), ParseStatus::kComplete);
  EXPECT_EQ(req.path, "/caf\xC3\xA9");
  EXPECT_EQ(req.query, "q=\xE2\x82\xAC");
}

TEST(HttpParserTest, ViewsPointIntoTheBuffer) {
  // Zero-copy contract: the parsed views alias the input buffer.
  const std::string raw = "GET /p?q=1 HTTP/1.1\r\n\r\n";
  ParsedRequest req;
  ASSERT_EQ(Parse(raw, &req), ParseStatus::kComplete);
  EXPECT_GE(req.method.data(), raw.data());
  EXPECT_LE(req.target.data() + req.target.size(), raw.data() + raw.size());
}

TEST(HttpSerializeTest, ArenaAndHeapSerializersAgreeByteForByte) {
  const struct {
    int status;
    std::string_view body;
    bool keep_alive;
  } cases[] = {
      {200, "{\"status\": \"ok\"}", true},
      {200, "", false},
      {400, "{\"error\": \"malformed request line\"}", false},
      {404, "{\"error\": \"unknown path\"}", true},
      {408, "{\"error\": \"request timeout\"}", false},
      {431, "{\"error\": \"request too large\"}", false},
      {503, "{\"error\": \"server overloaded\"}", false},
      {599, "x", true},  // unknown code -> default reason phrase
  };
  for (const auto& c : cases) {
    Conn conn;
    conn.http_status = c.status;
    conn.body.Append(c.body);
    SerializeResponseInto(&conn, c.keep_alive);
    EXPECT_EQ(conn.out.view(),
              SerializeResponse(c.status, c.body, c.keep_alive))
        << c.status;
  }
}

TEST(HttpSerializeTest, SerializedBytesMatchTheBlockingFormat) {
  EXPECT_EQ(SerializeResponse(200, "{}", true),
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: 2\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
            "{}");
}

}  // namespace
}  // namespace sttr::serve
