// Regression tests for the shutdown lifecycle races surfaced by the
// thread-safety-annotation migration. ScoreBatcher::Stop() and
// ModelBundle::StopWatcher() used to check joinable() under their mutex but
// join() the *member* thread after dropping it, so two concurrent stops —
// the canonical shape being an explicit Stop racing the destructor's — could
// both reach join() on the same std::thread handle, which is undefined
// behaviour (in practice std::terminate). Both now track lifecycle with an
// explicit running_/stopping_ pair: exactly one caller (the one that flips
// stopping_) moves the handle into a local and joins it, a Start that races
// an in-progress stop is a no-op (keying Start off joinable() instead would
// reset the stop flag and spawn a second worker while the old loop, now
// unable to see the stop, spins forever — hanging the stopper's join), and
// latecomer stops block until the winner finishes, so a latecoming
// destructor can't free the mutex/condvars under the winner. These tests
// hammer exactly those windows and also run under tools/run_tsan.sh, where
// the old code additionally reports the data race on the thread member.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/batcher.h"
#include "serve/model_bundle.h"
#include "serve_test_util.h"

namespace sttr::serve {
namespace {

/// Releases `n` threads as close to simultaneously as possible.
class StartGate {
 public:
  explicit StartGate(size_t n) : waiting_for_(n) {}
  void ArriveAndWait() {
    waiting_for_.fetch_sub(1, std::memory_order_acq_rel);
    while (waiting_for_.load(std::memory_order_acquire) > 0) {
      std::this_thread::yield();
    }
  }

 private:
  std::atomic<int64_t> waiting_for_;
};

TEST(ShutdownRaceTest, BatcherConcurrentStopJoinsDispatcherOnce) {
  constexpr size_t kStoppers = 4;
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    ScoreBatcher batcher(BatcherConfig{});
    batcher.Start();
    StartGate gate(kStoppers);
    std::vector<std::thread> stoppers;
    stoppers.reserve(kStoppers);
    for (size_t i = 0; i < kStoppers; ++i) {
      stoppers.emplace_back([&] {
        gate.ArriveAndWait();
        batcher.Stop();
      });
    }
    for (auto& t : stoppers) t.join();
    // The destructor's Stop() is yet another concurrent-in-spirit caller;
    // it must see the batcher already stopped and return quietly.
  }
}

TEST(ShutdownRaceTest, BatcherRestartsCleanlyAfterRacedStop) {
  ScoreBatcher batcher(BatcherConfig{});
  for (int cycle = 0; cycle < 10; ++cycle) {
    batcher.Start();
    StartGate gate(2);
    std::thread other([&] {
      gate.ArriveAndWait();
      batcher.Stop();
    });
    gate.ArriveAndWait();
    batcher.Stop();
    other.join();
    EXPECT_EQ(batcher.num_batches(), 0u);
  }
}

TEST(ShutdownRaceTest, BatcherStopReturnsOnlyAfterShutdownCompletes) {
  // Any Stop() returning — winner or latecomer — means the dispatcher is
  // joined and the batcher is restartable. Start() right after a raced
  // Stop() must not collide with a stopper still mid-join (under the old
  // back-off-early latecomers, the restart could interleave with the
  // winner's post-join bookkeeping).
  ScoreBatcher batcher(BatcherConfig{});
  for (int cycle = 0; cycle < 25; ++cycle) {
    batcher.Start();
    StartGate gate(3);
    std::thread s1([&] {
      gate.ArriveAndWait();
      batcher.Stop();
    });
    std::thread s2([&] {
      gate.ArriveAndWait();
      batcher.Stop();
    });
    gate.ArriveAndWait();
    batcher.Stop();
    batcher.Start();
    // s1/s2 may stop this new generation instead — equally valid; the final
    // Stop below leaves the batcher stopped either way.
    s1.join();
    s2.join();
    batcher.Stop();
  }
}

TEST(ShutdownRaceTest, BundleConcurrentStopWatcherJoinsOnce) {
  ServeFixture fixture = MakeServeFixture();
  ModelBundleConfig config;
  // Empty checkpoint dir: every poll is a NotFound retry, which is exactly
  // the state a watcher spends most of its life in. 1ms keeps it cycling
  // through the wait/reload boundary where StopWatcher must catch it.
  config.checkpoint_dir = ServeTestDir();
  config.model = SmallServeModelConfig();
  config.poll_interval = std::chrono::milliseconds(1);
  ModelBundle bundle(fixture.world.dataset, fixture.split, config);

  constexpr size_t kStoppers = 4;
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    bundle.StartWatcher();
    StartGate gate(kStoppers);
    std::vector<std::thread> stoppers;
    stoppers.reserve(kStoppers);
    for (size_t i = 0; i < kStoppers; ++i) {
      stoppers.emplace_back([&] {
        gate.ArriveAndWait();
        bundle.StopWatcher();
      });
    }
    for (auto& t : stoppers) t.join();
  }
}

TEST(ShutdownRaceTest, BundleStartStopChurnFromManyThreads) {
  ServeFixture fixture = MakeServeFixture();
  ModelBundleConfig config;
  config.checkpoint_dir = ServeTestDir();
  config.model = SmallServeModelConfig();
  config.poll_interval = std::chrono::milliseconds(1);
  ModelBundle bundle(fixture.world.dataset, fixture.split, config);

  constexpr size_t kChurners = 4;
  StartGate gate(kChurners);
  std::vector<std::thread> churners;
  churners.reserve(kChurners);
  for (size_t i = 0; i < kChurners; ++i) {
    churners.emplace_back([&] {
      gate.ArriveAndWait();
      for (int j = 0; j < 25; ++j) {
        bundle.StartWatcher();
        std::this_thread::yield();
        bundle.StopWatcher();
      }
    });
  }
  for (auto& t : churners) t.join();
  // Whatever interleaving happened, a final stop must leave no watcher.
  bundle.StopWatcher();
}

}  // namespace
}  // namespace sttr::serve
