// Asserts the epoll serving core's zero-allocation contract instead of
// claiming it: once a connection and its worker are warmed, a cache-hit
// /recommend request performs zero heap allocations end to end — none inside
// the worker's request processing (hot_allocs, metered by the counting
// operator-new hook) and none on the event-loop thread (loop_allocs, metered
// per loop iteration). Also pins the alloc/syscall counters' plumbing
// through /statz.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "serve/alloc_hook.h"
#include "serve/candidate_index.h"
#include "serve/model_bundle.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "serve/stats.h"
#include "serve_test_util.h"
#include "test_http_client.h"
#include "util/string_util.h"

namespace sttr::serve {
namespace {

class ZeroAllocTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(AllocHookActive())
        << "counting operator new not linked in; the zero-alloc contract "
           "cannot be asserted";
    fixture_ = std::make_unique<ServeFixture>(MakeServeFixture());
    ckpt_dir_ = ServeTestDir();
    TrainSmallModel(*fixture_, ckpt_dir_);

    ModelBundleConfig bundle_config;
    bundle_config.checkpoint_dir = ckpt_dir_;
    bundle_config.model = SmallServeModelConfig();
    bundle_ = std::make_unique<ModelBundle>(fixture_->world.dataset,
                                            fixture_->split, bundle_config);
    ASSERT_TRUE(bundle_->LoadInitial().ok());

    CandidateIndexConfig index_config;
    index_config.min_candidates = 30;
    index_ = std::make_unique<CandidateIndex>(fixture_->world.dataset,
                                              &fixture_->split, index_config);
    cache_ = std::make_unique<ResultCache>(ResultCacheConfig{});

    ServerConfig server_config;
    server_config.mode = ServeMode::kEventLoop;
    server_config.num_workers = 1;  // one worker -> one scratch to warm
    server_config.default_city = fixture_->split.target_city;
    // No batcher: scoring runs inline on the worker. Irrelevant for the
    // asserted property, which covers the cache-hit path only.
    server_ = std::make_unique<RecommendServer>(
        server_config, fixture_->world.dataset, bundle_.get(), index_.get(),
        /*batcher=*/nullptr, cache_.get(), &stats_);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
  }

  std::string Target() {
    const auto& pois = fixture_->world.dataset.PoisInCity(
        fixture_->split.target_city);
    const GeoPoint loc = fixture_->world.dataset.poi(pois[0]).location;
    return "/recommend?user=1&lat=" + StrFormat("%.8f", loc.lat) +
           "&lon=" + StrFormat("%.8f", loc.lon) + "&k=10";
  }

  std::unique_ptr<ServeFixture> fixture_;
  std::string ckpt_dir_;
  ServeStats stats_;
  std::unique_ptr<ModelBundle> bundle_;
  std::unique_ptr<CandidateIndex> index_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<RecommendServer> server_;
};

TEST_F(ZeroAllocTest, WarmedCacheHitRequestsAllocateNothing) {
  TestHttpClient client(server_->port());
  const std::string target = Target();

  // Cold request fills the cache; a few warm ones grow every sticky buffer
  // (connection arena, worker scratch, loop queues) to its high water.
  ASSERT_EQ(client.Get(target).status, 200);
  for (int i = 0; i < 5; ++i) {
    const auto r = client.Get(target);
    ASSERT_EQ(r.status, 200);
    ASSERT_NE(r.body.find("\"cached\": true"), std::string::npos) << r.body;
  }

  const uint64_t hot_requests0 = stats_.hot_requests.load();
  const uint64_t hot_allocs0 = stats_.hot_allocs.load();
  const uint64_t loop_allocs0 = stats_.loop_allocs.load();

  constexpr int kSteadyState = 50;
  std::string last_body;
  for (int i = 0; i < kSteadyState; ++i) {
    const auto r = client.Get(target);
    ASSERT_EQ(r.status, 200);
    if (i == 0) {
      last_body = r.body;
    } else {
      ASSERT_EQ(r.body, last_body) << "steady-state responses must not vary";
    }
  }

  EXPECT_EQ(stats_.hot_requests.load() - hot_requests0,
            static_cast<uint64_t>(kSteadyState));
  // The tentpole assertion: zero allocations per hot request, both on the
  // worker (request processing) and on the event-loop thread (parse +
  // serialize + I/O).
  EXPECT_EQ(stats_.hot_allocs.load() - hot_allocs0, 0u);
  EXPECT_EQ(stats_.loop_allocs.load() - loop_allocs0, 0u);
}

TEST_F(ZeroAllocTest, StatzExposesAllocAndSyscallCountersAndPercentiles) {
  TestHttpClient client(server_->port());
  const std::string target = Target();
  for (int i = 0; i < 3; ++i) ASSERT_EQ(client.Get(target).status, 200);

  const auto statz = client.Get("/statz");
  ASSERT_EQ(statz.status, 200);
  for (const char* key :
       {"\"allocs\": {\"recommend\": ", "\"hot_requests\": ", "\"hot\": ",
        "\"loop\": ", "\"syscalls\": {\"reads\": ", "\"writes\": ",
        "\"epoll_waits\": ", "\"accepts\": ", "\"p50\": ", "\"p95\": ",
        "\"p99\": "}) {
    EXPECT_NE(statz.body.find(key), std::string::npos)
        << key << " missing from " << statz.body;
  }
  // The loop actually counts its syscalls.
  EXPECT_GT(stats_.sys_reads.load(), 0u);
  EXPECT_GT(stats_.sys_writes.load(), 0u);
  EXPECT_GT(stats_.sys_epoll_waits.load(), 0u);
  EXPECT_GT(stats_.sys_accepts.load(), 0u);
}

TEST_F(ZeroAllocTest, PercentileMatchesSummarize) {
  LatencyHistogram hist;
  for (uint64_t i = 1; i <= 1000; ++i) hist.Record(i * 1000);  // 1..1000us
  const auto summary = hist.Summarize();
  EXPECT_DOUBLE_EQ(hist.Percentile(0.50), summary.p50_ms);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.95), summary.p95_ms);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.99), summary.p99_ms);
  // Monotone in p, clamped outside [0, 1].
  EXPECT_LE(hist.Percentile(0.1), hist.Percentile(0.9));
  EXPECT_EQ(hist.Percentile(-1.0), hist.Percentile(0.0));
  EXPECT_EQ(hist.Percentile(2.0), hist.Percentile(1.0));
  EXPECT_EQ(LatencyHistogram().Percentile(0.5), 0.0);
}

}  // namespace
}  // namespace sttr::serve
