// ResultCache: LRU ordering, TTL expiry on an injected clock, O(1)
// generation-bump invalidation, sharding, and concurrent access.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/result_cache.h"

namespace sttr::serve {
namespace {

ResultCacheKey Key(UserId user, uint64_t cell = 0, uint32_t k = 10,
                   CityId city = 1) {
  ResultCacheKey key;
  key.user = user;
  key.city = city;
  key.cell = cell;
  key.k = k;
  return key;
}

ResultCache::Value Val(PoiId poi, double score) { return {{poi, score}}; }

TEST(ResultCacheTest, PutGetRoundTrip) {
  ResultCache cache(ResultCacheConfig{});
  EXPECT_FALSE(cache.Get(Key(1)).has_value());
  cache.Put(Key(1), Val(42, 0.5));
  const auto hit = cache.Get(Key(1));
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ((*hit)[0].first, 42);
  EXPECT_EQ((*hit)[0].second, 0.5);
}

TEST(ResultCacheTest, DistinctKeyComponentsAreDistinctEntries) {
  ResultCache cache(ResultCacheConfig{});
  cache.Put(Key(1, /*cell=*/0, /*k=*/10), Val(1, 1.0));
  EXPECT_FALSE(cache.Get(Key(2, 0, 10)).has_value());   // other user
  EXPECT_FALSE(cache.Get(Key(1, 1, 10)).has_value());   // other cell
  EXPECT_FALSE(cache.Get(Key(1, 0, 20)).has_value());   // other k
  EXPECT_FALSE(cache.Get(Key(1, 0, 10, 2)).has_value());  // other city
  EXPECT_TRUE(cache.Get(Key(1, 0, 10)).has_value());
}

TEST(ResultCacheTest, PutReplacesExistingEntry) {
  ResultCache cache(ResultCacheConfig{});
  cache.Put(Key(1), Val(7, 0.1));
  cache.Put(Key(1), Val(8, 0.2));
  const auto hit = cache.Get(Key(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)[0].first, 8);
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

TEST(ResultCacheTest, EvictsLruBeyondCapacity) {
  ResultCacheConfig config;
  config.num_shards = 1;  // single shard so capacity is exact
  config.capacity = 3;
  ResultCache cache(config);
  cache.Put(Key(1), Val(1, 1));
  cache.Put(Key(2), Val(2, 2));
  cache.Put(Key(3), Val(3, 3));
  ASSERT_TRUE(cache.Get(Key(1)).has_value());  // refresh 1: LRU is now 2
  cache.Put(Key(4), Val(4, 4));                // evicts 2
  EXPECT_TRUE(cache.Get(Key(1)).has_value());
  EXPECT_FALSE(cache.Get(Key(2)).has_value());
  EXPECT_TRUE(cache.Get(Key(3)).has_value());
  EXPECT_TRUE(cache.Get(Key(4)).has_value());
  EXPECT_EQ(cache.GetStats().evictions, 1u);
  EXPECT_EQ(cache.GetStats().entries, 3u);
}

TEST(ResultCacheTest, TtlExpiresOnInjectedClock) {
  auto now = std::chrono::steady_clock::time_point{};
  ResultCacheConfig config;
  config.ttl = std::chrono::milliseconds(100);
  config.clock = [&now] { return now; };
  ResultCache cache(config);

  cache.Put(Key(1), Val(1, 1));
  now += std::chrono::milliseconds(99);
  EXPECT_TRUE(cache.Get(Key(1)).has_value());
  now += std::chrono::milliseconds(2);  // 101ms after Put
  EXPECT_FALSE(cache.Get(Key(1)).has_value());
  // The expired entry was lazily evicted by the failed Get.
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(ResultCacheTest, ZeroTtlNeverExpires) {
  auto now = std::chrono::steady_clock::time_point{};
  ResultCacheConfig config;
  config.ttl = std::chrono::milliseconds(0);
  config.clock = [&now] { return now; };
  ResultCache cache(config);
  cache.Put(Key(1), Val(1, 1));
  now += std::chrono::hours(1000);
  EXPECT_TRUE(cache.Get(Key(1)).has_value());
}

TEST(ResultCacheTest, InvalidateAllDropsEveryEntry) {
  ResultCache cache(ResultCacheConfig{});
  for (UserId u = 0; u < 100; ++u) cache.Put(Key(u), Val(u, 1.0));
  cache.InvalidateAll();
  for (UserId u = 0; u < 100; ++u) {
    EXPECT_FALSE(cache.Get(Key(u)).has_value()) << "user " << u;
  }
  EXPECT_EQ(cache.GetStats().invalidations, 1u);
  // New puts after the invalidation are served again.
  cache.Put(Key(5), Val(9, 2.0));
  EXPECT_TRUE(cache.Get(Key(5)).has_value());
}

TEST(ResultCacheTest, StatsCountHitsAndMisses) {
  ResultCache cache(ResultCacheConfig{});
  cache.Get(Key(1));  // miss
  cache.Put(Key(1), Val(1, 1));
  cache.Get(Key(1));  // hit
  cache.Get(Key(1));  // hit
  cache.Get(Key(2));  // miss
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(ResultCacheTest, ConcurrentMixedTrafficIsSafe) {
  ResultCacheConfig config;
  config.capacity = 64;  // small enough to force constant eviction
  ResultCache cache(config);
  std::atomic<uint64_t> observed_hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 5000; ++i) {
        const UserId u = (t * 37 + i) % 200;
        if (i % 3 == 0) {
          cache.Put(Key(u), Val(u, static_cast<double>(i)));
        } else if (auto hit = cache.Get(Key(u))) {
          EXPECT_EQ((*hit)[0].first, u);
          observed_hits.fetch_add(1);
        }
        if (i % 1000 == 999) cache.InvalidateAll();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(observed_hits.load(), 0u);
  EXPECT_LE(cache.GetStats().entries, 64u + 8u);  // capacity, give-or-take lazy eviction
}

TEST(ResultCacheTest, InvalidateRowsDropsMatchingUsersOnly) {
  ResultCache cache(ResultCacheConfig{});
  for (UserId u = 1; u <= 3; ++u) cache.Put(Key(u), Val(u, 1.0));
  const std::vector<UserId> users = {2};
  cache.InvalidateRows(users, {});
  EXPECT_TRUE(cache.Get(Key(1)).has_value());
  EXPECT_FALSE(cache.Get(Key(2)).has_value());
  EXPECT_TRUE(cache.Get(Key(3)).has_value());
  EXPECT_EQ(cache.GetStats().row_invalidations, 1u);
}

TEST(ResultCacheTest, InvalidateRowsDropsMatchingCities) {
  ResultCache cache(ResultCacheConfig{});
  cache.Put(Key(1, 0, 10, /*city=*/7), Val(1, 1.0));
  cache.Put(Key(2, 0, 10, /*city=*/8), Val(2, 1.0));
  const std::vector<CityId> cities = {7};
  cache.InvalidateRows({}, cities);
  // Every entry in city 7 is gone regardless of user; city 8 survives.
  EXPECT_FALSE(cache.Get(Key(1, 0, 10, 7)).has_value());
  EXPECT_TRUE(cache.Get(Key(2, 0, 10, 8)).has_value());
}

TEST(ResultCacheTest, InvalidateRowsSparesEntriesPutAfterward) {
  ResultCache cache(ResultCacheConfig{});
  const std::vector<UserId> users = {1};
  cache.Put(Key(1), Val(1, 1.0));
  cache.InvalidateRows(users, {});
  EXPECT_FALSE(cache.Get(Key(1)).has_value());
  // A result computed AFTER the patch saw the new rows and must be served.
  cache.Put(Key(1), Val(1, 2.0));
  const auto hit = cache.Get(Key(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)[0].second, 2.0);
  // ...until the next patch of the same row outdates it again.
  cache.InvalidateRows(users, {});
  EXPECT_FALSE(cache.Get(Key(1)).has_value());
}

TEST(ResultCacheTest, EmptyInvalidateRowsIsANoOp) {
  ResultCache cache(ResultCacheConfig{});
  cache.Put(Key(1), Val(1, 1.0));
  cache.InvalidateRows({}, {});
  EXPECT_TRUE(cache.Get(Key(1)).has_value());
  EXPECT_EQ(cache.GetStats().row_invalidations, 0u);
}

TEST(ResultCacheTest, FloorOverflowDegradesToFullFlush) {
  ResultCache cache(ResultCacheConfig{});
  cache.Put(Key(1), Val(1, 1.0));
  cache.Put(Key(999999), Val(2, 1.0));
  // More distinct rows than the floor index may hold: the call must stay
  // correct by degrading to a wholesale flush (coarser, never stale).
  std::vector<UserId> flood((1u << 20) + 1);
  for (size_t i = 0; i < flood.size(); ++i) {
    flood[i] = static_cast<UserId>(i + 100);
  }
  cache.InvalidateRows(flood, {});
  EXPECT_FALSE(cache.Get(Key(1)).has_value());  // not even in `flood`
  EXPECT_FALSE(cache.Get(Key(999999)).has_value());
  EXPECT_GE(cache.GetStats().invalidations, 1u);
  // The index restarted empty, so row-level precision is back.
  cache.Put(Key(1), Val(1, 3.0));
  cache.Put(Key(2), Val(2, 3.0));
  const std::vector<UserId> one = {1};
  cache.InvalidateRows(one, {});
  EXPECT_FALSE(cache.Get(Key(1)).has_value());
  EXPECT_TRUE(cache.Get(Key(2)).has_value());
}

// TSan shape: readers and writers race InvalidateRows. The safety property
// is freedom from data races plus the staleness invariant spot-checked at
// the end (a final row patch with no later Put must never be served).
TEST(ResultCacheTest, ConcurrentRowInvalidationIsSafe) {
  ResultCache cache(ResultCacheConfig{});
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 3000; ++i) {
        const UserId u = (t * 41 + i) % 64;
        if (i % 2 == 0) {
          cache.Put(Key(u), Val(u, static_cast<double>(i)));
        } else if (auto hit = cache.Get(Key(u))) {
          EXPECT_EQ((*hit)[0].first, u);
        }
      }
    });
  }
  std::thread invalidator([&] {
    for (int i = 0; i < 1000; ++i) {
      const std::vector<UserId> users = {static_cast<UserId>(i % 64)};
      const std::vector<CityId> cities = {static_cast<CityId>(i % 4)};
      cache.InvalidateRows(users, cities);
    }
  });
  for (auto& th : threads) th.join();
  invalidator.join();

  for (UserId u = 0; u < 64; ++u) {
    const std::vector<UserId> users = {u};
    cache.InvalidateRows(users, {});
    EXPECT_FALSE(cache.Get(Key(u)).has_value()) << "stale user " << u;
  }
}

}  // namespace
}  // namespace sttr::serve
