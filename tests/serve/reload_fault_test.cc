// Hot-reload fault tolerance through FaultInjectionEnv: when a newer
// checkpoint exists but its load read fails, the old snapshot must keep
// serving, the failure must be *visible* (model_reload_failures + the error
// string at /statz — a silent failure looks exactly like "no new checkpoint
// yet"), and the next attempt must recover. The watcher soak runs the same
// scenario against a quantized artifact under the background poller while a
// scorer keeps reading the snapshot — the mid-reload-tear case the sharded
// serving tier depends on for zero-downtime rollouts.

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/quantized_model.h"
#include "serve/model_bundle.h"
#include "serve/stats.h"
#include "serve_test_util.h"
#include "util/fault_injection.h"

namespace sttr::serve {
namespace {

using Op = FaultInjectionEnv::Op;

class ReloadFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new ServeFixture(MakeServeFixture());
  }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }

  const Dataset& dataset() { return fixture_->world.dataset; }
  const CrossCitySplit& split() { return fixture_->split; }

  /// Copies the newest checkpoint to a higher epoch via std::filesystem —
  /// deliberately NOT through the FaultInjectionEnv, so landing artifacts
  /// never perturbs the read counters the tests arm against.
  std::string LandNewerFp32(const std::string& dir, size_t epoch) {
    const auto latest = FindLatestValidCheckpoint(*Env::Default(), dir);
    STTR_CHECK_OK(latest.status());
    const std::string target =
        (std::filesystem::path(dir) / CheckpointFileName(epoch)).string();
    std::filesystem::copy_file(*latest, target);
    return target;
  }

  /// Quantizes `model` and lands the v2 artifact in <dir>/quant under
  /// `epoch` (what tools/sttr_quantize produces), bypassing the fault env.
  void LandQuantArtifact(const StTransRec& model, const std::string& dir,
                         size_t epoch) {
    QuantizationConfig cfg;
    cfg.epoch = static_cast<int64_t>(epoch);
    const auto quant = QuantizedModel::Quantize(model, cfg);
    STTR_CHECK_OK(quant.status());
    const std::string quant_dir = dir + "/quant";
    std::filesystem::create_directories(quant_dir);
    STTR_CHECK_OK(quant->WriteCheckpointFile(
        *Env::Default(), quant_dir + "/" + CheckpointFileName(epoch)));
  }

  std::vector<double> ScoreSome(const PoiScorer& scorer) {
    const auto& pois = dataset().PoisInCity(split().target_city);
    const size_t n = std::min<size_t>(pois.size(), 16);
    const std::vector<UserId> users(n, 0);
    return scorer.ScorePairs(users, {pois.data(), n});
  }

  /// Reads per healthy reload, measured rather than hard-coded: land a
  /// newer artifact, reload, count. The sequence is stable because
  /// FindLatestValidCheckpoint validates newest-first and stops at the
  /// first valid file, so extra older checkpoints never add reads.
  static ServeFixture* fixture_;
};

ServeFixture* ReloadFaultTest::fixture_ = nullptr;

TEST_F(ReloadFaultTest, FailedReloadKeepsOldSnapshotAndIsVisible) {
  const std::string dir = ServeTestDir();
  TrainSmallModel(*fixture_, dir);
  const size_t epoch = SmallServeModelConfig().num_epochs;

  FaultInjectionEnv fault_env;
  ServeStats stats;
  ModelBundleConfig config;
  config.checkpoint_dir = dir;
  config.model = SmallServeModelConfig();
  config.env = &fault_env;
  config.stats = &stats;
  ModelBundle bundle(dataset(), split(), config);
  ASSERT_TRUE(bundle.LoadInitial().ok());
  ASSERT_EQ(bundle.snapshot()->version, 1u);

  // Calibrate: reads consumed by one healthy reload (validate + load).
  LandNewerFp32(dir, epoch + 1);
  const size_t before = fault_env.op_count(Op::kRead);
  auto reloaded = bundle.ReloadIfNewer();
  ASSERT_TRUE(reloaded.ok());
  ASSERT_TRUE(*reloaded);
  const size_t reads_per_reload = fault_env.op_count(Op::kRead) - before;
  ASSERT_GE(reads_per_reload, 2u);

  // Fail exactly the *load* read of the next reload. (Failing the earlier
  // validation read would just make the selector fall back to the current
  // checkpoint — no failure, which is itself correct but not this test.)
  LandNewerFp32(dir, epoch + 2);
  const auto baseline = ScoreSome(*bundle.snapshot()->scorer);
  // FailNth counts from now: the last read of the next reload is the load.
  fault_env.FailNth(Op::kRead, reads_per_reload - 1);
  const auto failed = bundle.ReloadIfNewer();
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(fault_env.faults_triggered(), 1u);

  // The old snapshot is untouched and keeps serving identical scores.
  // (Copies carry the original epoch in their payload, so provenance is
  // asserted via the file path, not snapshot->epoch.)
  const auto snapshot = bundle.snapshot();
  EXPECT_EQ(snapshot->version, 2u);
  EXPECT_NE(snapshot->checkpoint_path.find(CheckpointFileName(epoch + 1)),
            std::string::npos);
  EXPECT_EQ(ScoreSome(*snapshot->scorer), baseline);

  // The failure is visible: counter, error string, and /statz JSON.
  EXPECT_EQ(stats.model_reload_failures.load(), 1u);
  EXPECT_NE(stats.LastReloadError(), "");
  EXPECT_NE(stats.ToJson(0).find("\"model_reload_failures\": 1"),
            std::string::npos);

  // Next attempt (the watcher's next poll, here by hand) recovers and
  // clears the error — /statz distinguishes "failing now" from "failed
  // once, fine since".
  const auto recovered = bundle.ReloadIfNewer();
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(*recovered);
  EXPECT_EQ(bundle.snapshot()->version, 3u);
  EXPECT_NE(bundle.snapshot()->checkpoint_path.find(
                CheckpointFileName(epoch + 2)),
            std::string::npos);
  EXPECT_EQ(stats.model_reload_failures.load(), 1u);
  EXPECT_EQ(stats.LastReloadError(), "");
}

// The watcher soak: tear a *quantized* artifact's load mid-watch (kAuto
// precision, the production serving mode) while a reader keeps scoring.
// Arm the fault before StartWatcher and then touch only atomics until
// StopWatcher — FaultInjectionEnv itself is not thread-safe.
TEST_F(ReloadFaultTest, WatcherSurvivesTornQuantReloadAndRecovers) {
  const std::string dir = ServeTestDir();
  const auto trainer = TrainSmallModel(*fixture_, dir);
  const size_t epoch = SmallServeModelConfig().num_epochs;
  LandQuantArtifact(*trainer, dir, epoch);

  FaultInjectionEnv fault_env;
  ServeStats stats;
  ModelBundleConfig config;
  config.checkpoint_dir = dir;
  config.model = SmallServeModelConfig();
  config.precision = PrecisionMode::kAuto;
  config.poll_interval = std::chrono::milliseconds(10);
  config.env = &fault_env;
  config.stats = &stats;
  ModelBundle bundle(dataset(), split(), config);
  ASSERT_TRUE(bundle.LoadInitial().ok());
  ASSERT_EQ(bundle.snapshot()->precision, Precision::kInt8);

  // Calibrate the kAuto read sequence (fp32 validate + quant validate +
  // load) with a healthy foreground reload.
  LandQuantArtifact(*trainer, dir, epoch + 1);
  const size_t before = fault_env.op_count(Op::kRead);
  auto reloaded = bundle.ReloadIfNewer();
  ASSERT_TRUE(reloaded.ok());
  ASSERT_TRUE(*reloaded);
  const size_t reads_per_reload = fault_env.op_count(Op::kRead) - before;
  const auto baseline = ScoreSome(*bundle.snapshot()->scorer);
  const uint64_t version_before = bundle.snapshot()->version;

  // Land the next artifact, arm the torn load, then hand the env to the
  // watcher thread.
  LandQuantArtifact(*trainer, dir, epoch + 2);
  // FailNth counts from now: the last read of the watcher's first poll is
  // the quant artifact's load.
  fault_env.FailNth(Op::kRead, reads_per_reload - 1);
  bundle.StartWatcher();

  // Wait for the watcher to hit the fault; the snapshot must stay valid
  // and keep serving the calibrated scores the whole time.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (stats.model_reload_failures.load() == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "watcher never hit the armed fault";
    const auto snapshot = bundle.snapshot();
    ASSERT_NE(snapshot->scorer, nullptr);
    EXPECT_EQ(ScoreSome(*snapshot->scorer), baseline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // The fault is one-shot, so the next poll recovers on its own.
  while (bundle.reload_count() <= version_before) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "watcher never recovered after the injected fault";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  bundle.StopWatcher();

  // Post-join (happens-before established): exactly one injected fault,
  // failure counted, error cleared by the recovery, newest epoch serving.
  EXPECT_EQ(fault_env.faults_triggered(), 1u);
  EXPECT_GE(stats.model_reload_failures.load(), 1u);
  EXPECT_EQ(stats.LastReloadError(), "");
  const auto snapshot = bundle.snapshot();
  EXPECT_EQ(snapshot->epoch, epoch + 2);
  EXPECT_EQ(snapshot->precision, Precision::kInt8);
  EXPECT_EQ(ScoreSome(*snapshot->scorer), baseline);
}

}  // namespace
}  // namespace sttr::serve
