#ifndef STTR_TESTS_SERVE_TEST_HTTP_CLIENT_H_
#define STTR_TESTS_SERVE_TEST_HTTP_CLIENT_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/check.h"
#include "util/string_util.h"

namespace sttr::serve {

/// Tiny blocking HTTP/1.1 client for one keep-alive loopback connection,
/// shared by the serving test suites.
class TestHttpClient {
 public:
  explicit TestHttpClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    STTR_CHECK_GE(fd_, 0);
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    STTR_CHECK_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ~TestHttpClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  TestHttpClient(const TestHttpClient&) = delete;
  TestHttpClient& operator=(const TestHttpClient&) = delete;

  struct Response {
    int status = 0;
    std::string body;
    /// The full response bytes as they came off the wire (headers + body) —
    /// what the equivalence suite compares across serving modes.
    std::string raw;
  };

  /// Sends raw bytes and reads one HTTP response.
  Response Roundtrip(const std::string& raw) {
    STTR_CHECK_EQ(::send(fd_, raw.data(), raw.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(raw.size()));
    return ReadResponse();
  }

  Response Get(const std::string& target) {
    return Roundtrip("GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n");
  }

  Response ReadResponse() {
    size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      STTR_CHECK(Fill()) << "connection closed before response headers";
    }
    Response response;
    const std::string head = buffer_.substr(0, header_end);
    STTR_CHECK_EQ(std::sscanf(head.c_str(), "HTTP/1.1 %d", &response.status),
                  1);
    const size_t cl = ToLower(head).find("content-length:");
    STTR_CHECK_NE(cl, std::string::npos);
    const size_t length = static_cast<size_t>(
        std::strtoull(head.c_str() + cl + 15, nullptr, 10));
    while (buffer_.size() < header_end + 4 + length) {
      STTR_CHECK(Fill()) << "connection closed mid-body";
    }
    response.raw = buffer_.substr(0, header_end + 4 + length);
    response.body = buffer_.substr(header_end + 4, length);
    buffer_.erase(0, header_end + 4 + length);
    return response;
  }

  /// True when the server has closed the connection.
  bool WaitForClose() {
    char c;
    return ::recv(fd_, &c, 1, 0) == 0;
  }

 private:
  bool Fill() {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace sttr::serve

#endif  // STTR_TESTS_SERVE_TEST_HTTP_CLIENT_H_
