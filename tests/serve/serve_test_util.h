#ifndef STTR_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define STTR_TESTS_SERVE_SERVE_TEST_UTIL_H_

#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/st_transrec.h"
#include "data/split.h"
#include "data/synth/world_generator.h"

namespace sttr::serve {

/// Per-test scratch directory under the gtest temp dir, wiped on entry.
/// Outside a test body (e.g. SetUpTestSuite) current_test_info() is null, so
/// fall back to the suite name.
inline std::string ServeTestDir() {
  const auto* unit = ::testing::UnitTest::GetInstance();
  const auto* info = unit->current_test_info();
  std::string leaf;
  if (info != nullptr) {
    leaf = std::string(info->test_suite_name()) + "_" + info->name();
  } else if (unit->current_test_suite() != nullptr) {
    leaf = std::string(unit->current_test_suite()->name()) + "_suite";
  } else {
    leaf = "suite";
  }
  std::filesystem::path dir = ::testing::TempDir();
  dir /= "sttr_serve_" + leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

struct ServeFixture {
  synth::SynthWorld world;
  CrossCitySplit split;
};

inline ServeFixture MakeServeFixture() {
  auto cfg = synth::SynthWorldConfig::FoursquareLike(synth::Scale::kTiny);
  ServeFixture f{synth::GenerateWorld(cfg), {}};
  f.split = MakeCrossCitySplit(f.world.dataset, cfg.target_city);
  return f;
}

/// Small-and-deterministic model config (one in-process worker) that trains
/// on the tiny world in well under a second.
inline StTransRecConfig SmallServeModelConfig() {
  StTransRecConfig cfg;
  cfg.embedding_dim = 8;
  cfg.hidden_dims = {16};
  cfg.num_epochs = 2;
  cfg.batch_size = 32;
  cfg.mmd_batch = 8;
  cfg.num_train_workers = 1;
  return cfg;
}

/// Trains a model, writing checkpoints into `ckpt_dir` when non-empty.
inline std::shared_ptr<StTransRec> TrainSmallModel(
    const ServeFixture& f, const std::string& ckpt_dir = "") {
  StTransRecConfig cfg = SmallServeModelConfig();
  cfg.checkpoint_dir = ckpt_dir;
  auto model = std::make_shared<StTransRec>(cfg);
  STTR_CHECK_OK(model->Fit(f.world.dataset, f.split));
  return model;
}

}  // namespace sttr::serve

#endif  // STTR_TESTS_SERVE_SERVE_TEST_UTIL_H_
