// EmbeddingStore oracle properties: the in-process backend must hand back
// the snapshot's embedding rows byte-for-byte, scoring through gathered
// rows must equal the direct ScoreBatch path exactly, and BuildShardSlice
// must partition the tables so that reassembling shard rows reproduces the
// original bytes — the foundation the sharded backend's bit-identity
// guarantee is proven against.

#include <chrono>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "serve/embedding_store.h"
#include "serve/shard_server.h"
#include "serve_test_util.h"
#include "tensor/tensor.h"

namespace sttr::serve {
namespace {

class EmbeddingStoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new ServeFixture(MakeServeFixture());
    model_ = new std::shared_ptr<StTransRec>(TrainSmallModel(*fixture_));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete fixture_;
    model_ = nullptr;
    fixture_ = nullptr;
  }

  static std::chrono::steady_clock::time_point Deadline() {
    return std::chrono::steady_clock::now() + std::chrono::seconds(5);
  }

  static ServeFixture* fixture_;
  static std::shared_ptr<StTransRec>* model_;
};

ServeFixture* EmbeddingStoreTest::fixture_ = nullptr;
std::shared_ptr<StTransRec>* EmbeddingStoreTest::model_ = nullptr;

TEST_F(EmbeddingStoreTest, InProcessGatherIsBitIdenticalToTables) {
  InProcessEmbeddingStore store(*model_);
  const Tensor& users = (*model_)->UserEmbeddingTable();
  const Tensor& pois = (*model_)->PoiEmbeddingTable();
  ASSERT_EQ(store.dim(), users.cols());
  ASSERT_EQ(store.num_rows(EmbeddingTable::kUser), users.rows());
  ASSERT_EQ(store.num_rows(EmbeddingTable::kPoi), pois.rows());

  // Out-of-order, with repeats: rows must land in request order.
  const std::vector<int64_t> ids = {
      3, 0, static_cast<int64_t>(pois.rows()) - 1, 3, 7};
  std::vector<float> out(ids.size() * store.dim());
  ASSERT_TRUE(store.Gather(EmbeddingTable::kPoi, ids, out.data(), Deadline())
                  .ok());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(std::memcmp(out.data() + i * store.dim(),
                          pois.row(static_cast<size_t>(ids[i])),
                          store.dim() * sizeof(float)),
              0)
        << "row " << i << " (id " << ids[i] << ")";
  }
}

TEST_F(EmbeddingStoreTest, OutOfRangeIdsAreRejected) {
  InProcessEmbeddingStore store(*model_);
  std::vector<float> out(2 * store.dim());
  const auto deadline = Deadline();
  const std::vector<int64_t> past_end = {
      0, static_cast<int64_t>(store.num_rows(EmbeddingTable::kUser))};
  EXPECT_FALSE(store.Gather(EmbeddingTable::kUser, past_end, out.data(),
                            deadline)
                   .ok());
  const std::vector<int64_t> negative = {-1};
  EXPECT_FALSE(store.Gather(EmbeddingTable::kUser, negative, out.data(),
                            deadline)
                   .ok());
}

// The serving decomposition: gather [user | poi] rows through the store,
// score the assembled matrix with ScoreGatheredPairs. Must equal the
// resident ScoreBatch path double-for-double — this is the equivalence the
// RecommendServer's store path stakes its bit-identity claim on.
TEST_F(EmbeddingStoreTest, ScoreViaGatherEqualsScoreBatch) {
  InProcessEmbeddingStore store(*model_);
  const size_t d = store.dim();
  const UserId user = 3;
  std::vector<PoiId> candidates;
  for (PoiId p = 0;
       p < static_cast<PoiId>(store.num_rows(EmbeddingTable::kPoi));
       p += 3) {
    candidates.push_back(p);
  }

  std::vector<float> user_row(d);
  const std::vector<int64_t> user_ids = {user};
  ASSERT_TRUE(store.Gather(EmbeddingTable::kUser, user_ids, user_row.data(),
                           Deadline())
                  .ok());
  std::vector<float> poi_rows(candidates.size() * d);
  const std::vector<int64_t> poi_ids(candidates.begin(), candidates.end());
  ASSERT_TRUE(store.Gather(EmbeddingTable::kPoi, poi_ids, poi_rows.data(),
                           Deadline())
                  .ok());

  Tensor h({candidates.size(), 2 * d});
  for (size_t i = 0; i < candidates.size(); ++i) {
    float* dst = h.row(i);
    std::memcpy(dst, user_row.data(), d * sizeof(float));
    std::memcpy(dst + d, poi_rows.data() + i * d, d * sizeof(float));
  }

  const std::vector<double> via_store = (*model_)->ScoreGatheredPairs(h);
  const std::vector<double> direct = (*model_)->ScoreBatch(
      user, {candidates.data(), candidates.size()});
  ASSERT_EQ(via_store.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_store[i], direct[i]) << "candidate " << i;
  }
}

// Slices must partition each table: every global row in exactly one slice,
// at its quotient index, byte-identical to the source table.
TEST_F(EmbeddingStoreTest, BuildShardSlicePartitionsTheTables) {
  const Tensor& users = (*model_)->UserEmbeddingTable();
  const Tensor& pois = (*model_)->PoiEmbeddingTable();
  for (size_t num_shards : {1u, 2u, 3u}) {
    std::vector<ShardSlice> slices;
    slices.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      slices.push_back(BuildShardSlice(**model_, s, num_shards));
      EXPECT_EQ(slices.back().dim, users.cols());
      EXPECT_EQ(slices.back().total_users, users.rows());
      EXPECT_EQ(slices.back().total_pois, pois.rows());
      EXPECT_EQ(slices.back().user_rows.size(),
                ShardRowCount(users.rows(), s, num_shards) * users.cols());
      EXPECT_EQ(slices.back().poi_rows.size(),
                ShardRowCount(pois.rows(), s, num_shards) * pois.cols());
    }
    const size_t d = users.cols();
    for (size_t g = 0; g < pois.rows(); ++g) {
      const ShardSlice& slice =
          slices[ShardOfId(static_cast<int64_t>(g), num_shards)];
      const size_t local =
          ShardLocalIndex(static_cast<int64_t>(g), num_shards);
      ASSERT_EQ(std::memcmp(slice.poi_rows.data() + local * d, pois.row(g),
                            d * sizeof(float)),
                0)
          << "poi row " << g << " across " << num_shards << " shards";
    }
    for (size_t g = 0; g < users.rows(); ++g) {
      const ShardSlice& slice =
          slices[ShardOfId(static_cast<int64_t>(g), num_shards)];
      const size_t local =
          ShardLocalIndex(static_cast<int64_t>(g), num_shards);
      ASSERT_EQ(std::memcmp(slice.user_rows.data() + local * d, users.row(g),
                            d * sizeof(float)),
                0)
          << "user row " << g << " across " << num_shards << " shards";
    }
  }
}

}  // namespace
}  // namespace sttr::serve
