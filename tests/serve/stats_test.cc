// LatencyHistogram and ServeStats: percentile accuracy within the bucket
// resolution, concurrent recording, and the /statz JSON payload.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/stats.h"

namespace sttr::serve {
namespace {

TEST(LatencyHistogramTest, EmptySummaryIsZero) {
  LatencyHistogram h;
  const auto s = h.Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean_ms, 0.0);
  EXPECT_EQ(s.p50_ms, 0.0);
  EXPECT_EQ(s.p99_ms, 0.0);
  EXPECT_EQ(s.max_ms, 0.0);
}

TEST(LatencyHistogramTest, SingleValue) {
  LatencyHistogram h;
  h.Record(1'000'000);  // 1ms
  const auto s = h.Summarize();
  EXPECT_EQ(s.count, 1u);
  EXPECT_NEAR(s.mean_ms, 1.0, 1e-9);  // mean uses the exact sum
  // Percentiles come from bucket upper bounds: ~6% relative resolution.
  EXPECT_NEAR(s.p50_ms, 1.0, 0.07);
  EXPECT_NEAR(s.max_ms, 1.0, 1e-9);
}

TEST(LatencyHistogramTest, PercentilesOfUniformDistribution) {
  LatencyHistogram h;
  // 1..10000 microseconds, uniformly.
  for (uint64_t us = 1; us <= 10'000; ++us) h.Record(us * 1'000);
  const auto s = h.Summarize();
  EXPECT_EQ(s.count, 10'000u);
  EXPECT_NEAR(s.mean_ms, 5.0005, 1e-6);
  EXPECT_NEAR(s.p50_ms, 5.0, 0.5);
  EXPECT_NEAR(s.p95_ms, 9.5, 0.7);
  EXPECT_NEAR(s.p99_ms, 9.9, 0.7);
  EXPECT_NEAR(s.max_ms, 10.0, 1e-9);
  EXPECT_LE(s.p50_ms, s.p95_ms);
  EXPECT_LE(s.p95_ms, s.p99_ms);
}

TEST(LatencyHistogramTest, ExtremeValuesDoNotOverflowBuckets) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(1);
  h.Record(~uint64_t{0});  // way past the last octave; must clamp
  const auto s = h.Summarize();
  EXPECT_EQ(s.count, 3u);
  EXPECT_GT(s.max_ms, 0.0);
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(1'000'000);
  h.Reset();
  const auto s = h.Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max_ms, 0.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordLosesNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 1; i <= kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(i) * 100);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Summarize().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ServeStatsTest, ToJsonCarriesCountersAndLatency) {
  ServeStats stats;
  stats.requests.store(42);
  stats.cache_hits.store(7);
  stats.cache_misses.store(35);
  stats.batches.store(10);
  stats.batched_requests.store(35);
  stats.scored_pairs.store(3500);
  stats.model_reloads.store(2);
  stats.request_latency.Record(2'000'000);

  const std::string json = stats.ToJson(/*uptime_seconds=*/21.0);
  EXPECT_NE(json.find("\"requests\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_hits\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"model_reloads\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"qps\": 2"), std::string::npos) << json;  // 42/21
  EXPECT_NE(json.find("\"latency_ms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
}

TEST(ServeStatsTest, NonPositiveUptimeOmitsQps) {
  ServeStats stats;
  stats.requests.store(5);
  EXPECT_EQ(stats.ToJson(0.0).find("\"qps\""), std::string::npos);
}

}  // namespace
}  // namespace sttr::serve
