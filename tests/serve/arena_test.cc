// Unit tests for the per-connection bump allocator and its append-only byte
// sink: correctness of the pointer-bump fast path, the retire-then-coalesce
// growth contract (num_grows goes flat once warmed — the zero-allocation
// property the serving hot path asserts), and the numeric appenders'
// equivalence with the standard formatting they replace.

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/arena.h"

namespace sttr::serve {
namespace {

TEST(ArenaTest, AllocationsDoNotOverlapAndRespectAlignment) {
  Arena arena(64);
  char* a = arena.Allocate(10, 1);
  char* b = arena.Allocate(10, 1);
  EXPECT_GE(b, a + 10);
  std::memset(a, 0xAA, 10);
  std::memset(b, 0xBB, 10);
  EXPECT_EQ(static_cast<unsigned char>(a[9]), 0xAA);

  char* aligned = arena.Allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(aligned) % 8, 0u);
  char* max_aligned = arena.Allocate(4);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(max_aligned) %
                alignof(std::max_align_t),
            0u);
}

TEST(ArenaTest, RetiredBlocksStayLiveUntilReset) {
  Arena arena(16);
  char* first = arena.Allocate(12, 1);
  std::memcpy(first, "hello arena!", 12);
  // Overflow the initial block several times; `first` must stay intact.
  for (int i = 0; i < 8; ++i) arena.Allocate(64, 1);
  EXPECT_EQ(std::string_view(first, 12), "hello arena!");
}

TEST(ArenaTest, GrowthIsAWarmupPhenomenon) {
  Arena arena(32);
  const auto one_request = [&arena] {
    arena.Reset();
    arena.Allocate(100, 1);
    arena.Allocate(500, 1);
    arena.Allocate(900, 1);
  };
  one_request();
  one_request();  // Reset coalesced to the high-water mark
  const uint64_t warmed = arena.num_grows();
  for (int i = 0; i < 100; ++i) one_request();
  // The asserted steady-state contract: same-shaped requests never grow.
  EXPECT_EQ(arena.num_grows(), warmed);
  EXPECT_GE(arena.high_water(), 1500u);
}

TEST(ArenaTest, HighWaterCountsRetiredBlocksOfOneRequest) {
  Arena arena(64);
  arena.Allocate(60, 1);   // block 0
  arena.Allocate(100, 1);  // retires block 0
  // Demand was 60 + 100 across blocks; a single coalesced block must cover
  // both, or the next same-shaped request would grow again.
  EXPECT_GE(arena.high_water(), 160u);
  arena.Reset();
  const uint64_t warmed = arena.num_grows();
  arena.Allocate(60, 1);
  arena.Allocate(100, 1);
  EXPECT_EQ(arena.num_grows(), warmed);
}

TEST(ArenaBufTest, AppendsConcatenate) {
  Arena arena;
  ArenaBuf buf(&arena);
  buf.Append("{\"k\": ");
  buf.Append('x');
  buf.Append(std::string_view());  // empty append is a no-op
  buf.Append("}");
  EXPECT_EQ(buf.view(), "{\"k\": x}");
  EXPECT_EQ(buf.size(), 8u);
  buf.Clear();
  EXPECT_TRUE(buf.empty());
}

TEST(ArenaBufTest, GrowthPreservesEarlierBytes) {
  Arena arena(32);
  ArenaBuf buf(&arena);
  std::string want;
  for (int i = 0; i < 200; ++i) {
    const std::string piece = "piece" + std::to_string(i) + ";";
    buf.Append(piece);
    want += piece;
  }
  EXPECT_EQ(buf.view(), want);
}

TEST(ArenaBufTest, AppendIntMatchesToString) {
  const std::vector<int64_t> cases = {
      0,
      1,
      -1,
      9,
      10,
      -10,
      12345678901234567,
      std::numeric_limits<int64_t>::max(),
      std::numeric_limits<int64_t>::min(),
  };
  for (const int64_t v : cases) {
    Arena arena;
    ArenaBuf buf(&arena);
    buf.AppendInt(v);
    EXPECT_EQ(buf.view(), std::to_string(v)) << v;
  }
}

TEST(ArenaBufTest, AppendUintMatchesToString) {
  const std::vector<uint64_t> cases = {
      0u, 7u, 10u, 999999999999u, std::numeric_limits<uint64_t>::max()};
  for (const uint64_t v : cases) {
    Arena arena;
    ArenaBuf buf(&arena);
    buf.AppendUint(v);
    EXPECT_EQ(buf.view(), std::to_string(v)) << v;
  }
}

}  // namespace
}  // namespace sttr::serve
