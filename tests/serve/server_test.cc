// End-to-end HTTP tests over real loopback sockets: the full serving stack
// (bundle + index + batcher + cache + server) must return exactly what the
// offline ranking path computes — identical POI ids and scores — for lone
// requests and for concurrent mixed-user traffic; plus endpoint/error
// semantics, caching behaviour and graceful shutdown. The whole suite runs
// twice, parameterized over ServeMode: the epoll event-loop core and the
// blocking thread-per-connection reference must pass the same tests.
// (Byte-level cross-mode comparisons live in server_equivalence_test.cc.)

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/recommender.h"
#include "serve/batcher.h"
#include "serve/candidate_index.h"
#include "serve/model_bundle.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "serve/stats.h"
#include "serve_test_util.h"
#include "test_http_client.h"
#include "util/check.h"
#include "util/string_util.h"

namespace sttr::serve {
namespace {

/// Parses the "results" array of a /recommend response.
std::vector<std::pair<PoiId, double>> ParseResults(const std::string& body) {
  std::vector<std::pair<PoiId, double>> out;
  size_t pos = body.find("\"results\"");
  STTR_CHECK_NE(pos, std::string::npos) << body;
  while ((pos = body.find("{\"poi\": ", pos)) != std::string::npos) {
    long long poi = 0;
    double score = 0;
    STTR_CHECK_EQ(std::sscanf(body.c_str() + pos, "{\"poi\": %lld, \"score\": %lf",
                              &poi, &score),
                  2)
        << body.substr(pos, 60);
    out.emplace_back(static_cast<PoiId>(poi), score);
    ++pos;
  }
  return out;
}

/// The full serving stack on an ephemeral loopback port, run once per
/// ServeMode.
class ServerTest : public ::testing::TestWithParam<ServeMode> {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new ServeFixture(MakeServeFixture());
    ckpt_dir_ = new std::string(ServeTestDir());
    trainer_ = new std::shared_ptr<StTransRec>(
        TrainSmallModel(*fixture_, *ckpt_dir_));
  }
  static void TearDownTestSuite() {
    delete trainer_;
    delete ckpt_dir_;
    delete fixture_;
    trainer_ = nullptr;
    ckpt_dir_ = nullptr;
    fixture_ = nullptr;
  }

  void SetUp() override {
    ModelBundleConfig bundle_config;
    bundle_config.checkpoint_dir = *ckpt_dir_;
    bundle_config.model = SmallServeModelConfig();
    bundle_ = std::make_unique<ModelBundle>(fixture_->world.dataset,
                                            fixture_->split, bundle_config);
    ASSERT_TRUE(bundle_->LoadInitial().ok());

    CandidateIndexConfig index_config;
    index_config.min_candidates = 30;
    index_ = std::make_unique<CandidateIndex>(fixture_->world.dataset,
                                              &fixture_->split, index_config);

    batcher_ = std::make_unique<ScoreBatcher>(BatcherConfig{}, &stats_);
    batcher_->Start();

    ResultCacheConfig cache_config;
    cache_config.ttl = std::chrono::milliseconds(0);
    cache_ = std::make_unique<ResultCache>(cache_config);
    bundle_->AddReloadListener(
        [this](const ModelSnapshot&) { cache_->InvalidateAll(); });

    ServerConfig server_config;
    server_config.mode = GetParam();
    server_config.num_workers = 4;
    server_config.default_city = fixture_->split.target_city;
    server_ = std::make_unique<RecommendServer>(
        server_config, fixture_->world.dataset, bundle_.get(), index_.get(),
        batcher_.get(), cache_.get(), &stats_);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
    if (batcher_ != nullptr) batcher_->Stop();
  }

  const Dataset& dataset() { return fixture_->world.dataset; }
  CityId target_city() { return fixture_->split.target_city; }

  /// What the server *should* return: candidates from the same index,
  /// scored serially against the trained model, ranked by TopKByScore.
  std::vector<std::pair<PoiId, double>> ExpectedTopK(UserId user,
                                                     const GeoPoint& loc,
                                                     size_t k) {
    const std::vector<PoiId> candidates =
        index_->Candidates(target_city(), loc);
    const std::vector<double> scores =
        (*trainer_)->ScoreBatch(user, {candidates.data(), candidates.size()});
    return TopKByScore({candidates.data(), candidates.size()},
                       {scores.data(), scores.size()}, k);
  }

  GeoPoint PoiLocation(size_t i) {
    const auto& pois = dataset().PoisInCity(target_city());
    return dataset().poi(pois[i % pois.size()]).location;
  }

  std::string RecommendTarget(UserId user, const GeoPoint& loc, size_t k,
                              bool nocache = false) {
    std::string target = "/recommend?user=" + std::to_string(user) +
                         "&lat=" + StrFormat("%.8f", loc.lat) +
                         "&lon=" + StrFormat("%.8f", loc.lon) +
                         "&k=" + std::to_string(k);
    if (nocache) target += "&nocache=1";
    return target;
  }

  static ServeFixture* fixture_;
  static std::string* ckpt_dir_;
  static std::shared_ptr<StTransRec>* trainer_;

  ServeStats stats_;
  std::unique_ptr<ModelBundle> bundle_;
  std::unique_ptr<CandidateIndex> index_;
  std::unique_ptr<ScoreBatcher> batcher_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<RecommendServer> server_;
};

ServeFixture* ServerTest::fixture_ = nullptr;
std::string* ServerTest::ckpt_dir_ = nullptr;
std::shared_ptr<StTransRec>* ServerTest::trainer_ = nullptr;

TEST_P(ServerTest, RecommendMatchesOfflineRankingExactly) {
  TestHttpClient client(server_->port());
  for (UserId user = 0; user < 5; ++user) {
    const GeoPoint loc = PoiLocation(static_cast<size_t>(user) * 7);
    const auto response =
        client.Get(RecommendTarget(user, loc, /*k=*/10, /*nocache=*/true));
    ASSERT_EQ(response.status, 200) << response.body;
    const auto got = ParseResults(response.body);
    const auto want = ExpectedTopK(user, loc, 10);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].first, want[i].first) << "rank " << i;
      // %.17g round-trips doubles exactly.
      EXPECT_EQ(got[i].second, want[i].second) << "rank " << i;
    }
  }
}

TEST_P(ServerTest, InlineScoringWithoutBatcherMatchesOfflineRanking) {
  // A null batcher puts the server in per-request mode: handlers score
  // inline. Results must still be bit-identical to the offline ranking
  // (and therefore to the batched path, which the other tests pin).
  server_->Shutdown();
  ServerConfig server_config;
  server_config.mode = GetParam();
  server_config.num_workers = 4;
  server_config.default_city = fixture_->split.target_city;
  server_ = std::make_unique<RecommendServer>(
      server_config, fixture_->world.dataset, bundle_.get(), index_.get(),
      /*batcher=*/nullptr, cache_.get(), &stats_);
  ASSERT_TRUE(server_->Start().ok());

  TestHttpClient client(server_->port());
  for (UserId user = 0; user < 5; ++user) {
    const GeoPoint loc = PoiLocation(static_cast<size_t>(user) * 7);
    const auto response =
        client.Get(RecommendTarget(user, loc, /*k=*/10, /*nocache=*/true));
    ASSERT_EQ(response.status, 200) << response.body;
    const auto got = ParseResults(response.body);
    const auto want = ExpectedTopK(user, loc, 10);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].first, want[i].first) << "rank " << i;
      EXPECT_EQ(got[i].second, want[i].second) << "rank " << i;
    }
  }
}

TEST_P(ServerTest, ConcurrentMixedRequestsMatchOfflineRanking) {
  constexpr int kClients = 8;
  constexpr int kPerClient = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestHttpClient client(server_->port());
      for (int i = 0; i < kPerClient; ++i) {
        const UserId user = static_cast<UserId>(
            (c * kPerClient + i) % dataset().num_users());
        const GeoPoint loc = PoiLocation(static_cast<size_t>(c * 13 + i));
        const size_t k = 5 + static_cast<size_t>(i);
        const auto response =
            client.Get(RecommendTarget(user, loc, k, /*nocache=*/true));
        if (response.status != 200 ||
            ParseResults(response.body) != ExpectedTopK(user, loc, k)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "micro-batched concurrent serving diverged from serial ranking";
}

TEST_P(ServerTest, CacheServesSecondRequestAndReportsIt) {
  TestHttpClient client(server_->port());
  const GeoPoint loc = PoiLocation(2);
  const std::string target = RecommendTarget(7, loc, 10);

  const auto cold = client.Get(target);
  ASSERT_EQ(cold.status, 200);
  EXPECT_NE(cold.body.find("\"cached\": false"), std::string::npos);

  const auto warm = client.Get(target);
  ASSERT_EQ(warm.status, 200);
  EXPECT_NE(warm.body.find("\"cached\": true"), std::string::npos);
  // Identical payload apart from the cached flag.
  EXPECT_EQ(ParseResults(cold.body), ParseResults(warm.body));
  EXPECT_GE(stats_.cache_hits.load(), 1u);

  // nocache bypasses the cache but must compute the same answer.
  const auto bypass = client.Get(RecommendTarget(7, loc, 10, true));
  EXPECT_NE(bypass.body.find("\"cached\": false"), std::string::npos);
  EXPECT_EQ(ParseResults(bypass.body), ParseResults(cold.body));
}

TEST_P(ServerTest, HealthzReportsServingCheckpoint) {
  TestHttpClient client(server_->port());
  const auto response = client.Get("/healthz");
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(response.body.find("ckpt-"), std::string::npos);
  EXPECT_NE(response.body.find("\"model_version\": 1"), std::string::npos);
}

TEST_P(ServerTest, StatzCountsTraffic) {
  TestHttpClient client(server_->port());
  client.Get(RecommendTarget(1, PoiLocation(0), 5));
  client.Get("/recommend");  // 400
  const auto response = client.Get("/statz");
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"requests\": "), std::string::npos);
  EXPECT_NE(response.body.find("\"bad_requests\": 1"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"latency_ms\""), std::string::npos);
}

TEST_P(ServerTest, RejectsBadRequests) {
  TestHttpClient client(server_->port());
  EXPECT_EQ(client.Get("/recommend").status, 400);  // no params
  EXPECT_EQ(client.Get("/recommend?user=notanumber&lat=1&lon=1").status, 400);
  EXPECT_EQ(client.Get("/recommend?user=999999999&lat=1&lon=1").status, 400);
  EXPECT_EQ(client.Get("/recommend?user=1&lat=abc&lon=1").status, 400);
  EXPECT_EQ(client.Get("/recommend?user=1&lat=1&lon=1&k=0").status, 400);
  EXPECT_EQ(client.Get("/recommend?user=1&lat=1&lon=1&k=100000").status, 400);
  EXPECT_EQ(client.Get("/recommend?user=1&lat=1&lon=1&city=99").status, 400);
  EXPECT_EQ(client.Get("/nosuchpath").status, 404);
  EXPECT_GE(stats_.bad_requests.load(), 8u);
}

TEST_P(ServerTest, RejectsMalformedAndOversizedRequests) {
  {
    TestHttpClient client(server_->port());
    const auto response = client.Roundtrip("NONSENSE\r\n\r\n");
    EXPECT_EQ(response.status, 400);
    EXPECT_TRUE(client.WaitForClose());
  }
  {
    TestHttpClient client(server_->port());
    // Headers past max_request_bytes (16K default) without a terminator.
    const std::string huge =
        "GET / HTTP/1.1\r\nX-Junk: " + std::string(20'000, 'a');
    const auto response = client.Roundtrip(huge);
    EXPECT_EQ(response.status, 431);
    EXPECT_TRUE(client.WaitForClose());
  }
}

TEST_P(ServerTest, ConnectionCloseHeaderIsHonoured) {
  TestHttpClient client(server_->port());
  const auto response = client.Roundtrip(
      "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(client.WaitForClose());
}

TEST_P(ServerTest, GracefulShutdownIsIdempotentAndStopsServing) {
  EXPECT_TRUE(server_->running());
  server_->Shutdown();
  EXPECT_FALSE(server_->running());
  server_->Shutdown();  // idempotent
}

TEST_P(ServerTest, PipelinedRequestsAnswerInOrder) {
  TestHttpClient client(server_->port());
  const GeoPoint loc = PoiLocation(3);
  std::string burst;
  for (int i = 0; i < 3; ++i) {
    burst += "GET " + RecommendTarget(2, loc, 5 + static_cast<size_t>(i)) +
             " HTTP/1.1\r\nHost: t\r\n\r\n";
  }
  burst += "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
  client.Roundtrip(burst);  // reads the first response
  for (int i = 1; i < 3; ++i) {
    const auto r = client.ReadResponse();
    ASSERT_EQ(r.status, 200);
    EXPECT_NE(r.body.find("\"k\": " + std::to_string(5 + i)),
              std::string::npos)
        << r.body;
  }
  EXPECT_NE(client.ReadResponse().body.find("\"status\": \"ok\""),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Modes, ServerTest,
                         ::testing::Values(ServeMode::kEventLoop,
                                           ServeMode::kBlocking),
                         [](const auto& param_info) {
                           return param_info.param == ServeMode::kEventLoop
                                      ? "EventLoop"
                                      : "Blocking";
                         });

}  // namespace
}  // namespace sttr::serve
