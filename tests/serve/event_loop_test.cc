// EventLoop tests against real loopback sockets: keep-alive and pipelining,
// partial reads and writes, bounded/malformed input, idle timeouts, the
// async completion hand-off, the connection cap, and lifecycle churn. The
// loop is driven standalone with tiny synthetic handlers — server-level
// semantics (routing, scoring, byte-parity with the blocking mode) live in
// server_test.cc and server_equivalence_test.cc.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/event_loop.h"
#include "util/check.h"
#include "util/mutex.h"

namespace sttr::serve {
namespace {

/// Listener + loop pair: accepted sockets are handed straight to the loop,
/// the way RecommendServer's acceptor does.
class LoopHarness {
 public:
  explicit LoopHarness(EventLoop::Options opts, EventLoop::Handler handler,
                       ServeStats* stats = nullptr)
      : loop_(opts, stats, std::move(handler)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    STTR_CHECK_GE(listen_fd_, 0);
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    STTR_CHECK_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)),
                  0);
    STTR_CHECK_EQ(::listen(listen_fd_, 256), 0);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    STTR_CHECK(loop_.Start());
    acceptor_ = std::thread([this] {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) return;
        loop_.AddConnection(fd);
      }
    });
  }

  ~LoopHarness() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    acceptor_.join();
    loop_.Stop();
  }

  int port() const { return port_; }
  EventLoop& loop() { return loop_; }

 private:
  EventLoop loop_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
};

/// Minimal blocking client for one connection.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    STTR_CHECK_GE(fd_, 0);
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    STTR_CHECK_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::string& raw) {
    STTR_CHECK_EQ(::send(fd_, raw.data(), raw.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(raw.size()));
  }

  struct Response {
    int status = 0;
    std::string body;
  };

  /// Reads one full response (headers + Content-Length body).
  Response Read() {
    size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      STTR_CHECK(Fill()) << "closed before headers";
    }
    Response r;
    STTR_CHECK_EQ(
        std::sscanf(buffer_.c_str(), "HTTP/1.1 %d", &r.status), 1);
    const size_t cl = buffer_.find("Content-Length: ");
    STTR_CHECK_NE(cl, std::string::npos);
    const size_t length = static_cast<size_t>(
        std::strtoull(buffer_.c_str() + cl + 16, nullptr, 10));
    while (buffer_.size() < header_end + 4 + length) {
      STTR_CHECK(Fill()) << "closed mid-body";
    }
    r.body = buffer_.substr(header_end + 4, length);
    buffer_.erase(0, header_end + 4 + length);
    return r;
  }

  Response Roundtrip(const std::string& raw) {
    Send(raw);
    return Read();
  }

  /// True when the server closes without sending further bytes. A clean FIN
  /// and an RST both count: closing an fd with unread input (e.g. the tail
  /// of an oversized head the server rightly stopped reading) resets.
  bool WaitForClose() {
    char c;
    return ::recv(fd_, &c, 1, 0) <= 0;
  }

  int fd() const { return fd_; }

 private:
  bool Fill() {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

/// Handler answering 200 with the request path echoed in the body.
EventLoop::Handler EchoPath() {
  return [](Conn& conn, const ParsedRequest& req) {
    conn.http_status = 200;
    conn.body.Append("path=");
    conn.body.Append(req.path);
    return EventLoop::Dispatch::kRespond;
  };
}

TEST(EventLoopTest, KeepAliveServesManyRequestsOnOneConnection) {
  LoopHarness harness(EventLoop::Options{}, EchoPath());
  Client client(harness.port());
  for (int i = 0; i < 20; ++i) {
    const std::string path = "/req" + std::to_string(i);
    const auto r =
        client.Roundtrip("GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n");
    ASSERT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "path=" + path);
  }
  EXPECT_EQ(harness.loop().num_open(), 1u);
}

TEST(EventLoopTest, PipelinedRequestsAnswerInOrder) {
  LoopHarness harness(EventLoop::Options{}, EchoPath());
  Client client(harness.port());
  std::string burst;
  for (int i = 0; i < 5; ++i) {
    burst += "GET /p" + std::to_string(i) + " HTTP/1.1\r\n\r\n";
  }
  client.Send(burst);
  for (int i = 0; i < 5; ++i) {
    const auto r = client.Read();
    ASSERT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "path=/p" + std::to_string(i));
  }
}

TEST(EventLoopTest, ByteAtATimeRequestStillParses) {
  LoopHarness harness(EventLoop::Options{}, EchoPath());
  Client client(harness.port());
  const std::string raw = "GET /slow HTTP/1.1\r\nHost: t\r\n\r\n";
  for (const char c : raw) client.Send(std::string(1, c));
  const auto r = client.Read();
  ASSERT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "path=/slow");
}

TEST(EventLoopTest, LargeResponseDrainsViaWriteReadiness) {
  // A response far larger than the socket buffers forces partial sends; the
  // loop must finish it via EPOLLOUT without blocking (a second connection
  // stays responsive while the first drains).
  const std::string big(4 * 1024 * 1024, 'x');
  LoopHarness harness(
      EventLoop::Options{},
      [&big](Conn& conn, const ParsedRequest& req) {
        conn.http_status = 200;
        conn.body.Append(req.path == "/big" ? std::string_view(big)
                                            : std::string_view("small"));
        return EventLoop::Dispatch::kRespond;
      });
  Client slow(harness.port());
  slow.Send("GET /big HTTP/1.1\r\n\r\n");
  // Don't read yet: let the server hit EAGAIN and park on write readiness.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Client other(harness.port());
  EXPECT_EQ(other.Roundtrip("GET /x HTTP/1.1\r\n\r\n").body, "small");
  const auto r = slow.Read();
  ASSERT_EQ(r.status, 200);
  EXPECT_EQ(r.body, big);
}

TEST(EventLoopTest, MalformedRequestLineGets400AndClose) {
  ServeStats stats;
  LoopHarness harness(EventLoop::Options{}, EchoPath(), &stats);
  Client client(harness.port());
  const auto r = client.Roundtrip("NONSENSE\r\n\r\n");
  EXPECT_EQ(r.status, 400);
  EXPECT_EQ(r.body, "{\"error\": \"malformed request line\"}");
  EXPECT_TRUE(client.WaitForClose());
  EXPECT_EQ(stats.bad_requests.load(), 1u);
}

TEST(EventLoopTest, OversizedHeadGets431AndClose) {
  EventLoop::Options opts;
  opts.max_request_bytes = 1024;
  LoopHarness harness(opts, EchoPath());
  Client client(harness.port());
  client.Send("GET / HTTP/1.1\r\nX-Junk: " + std::string(5000, 'a'));
  const auto r = client.Read();
  EXPECT_EQ(r.status, 431);
  EXPECT_EQ(r.body, "{\"error\": \"request too large\"}");
  EXPECT_TRUE(client.WaitForClose());
}

TEST(EventLoopTest, IdleTimeoutClosesSilentlyAndStrandedRequestGets408) {
  EventLoop::Options opts;
  opts.idle_timeout = std::chrono::milliseconds(100);
  LoopHarness harness(opts, EchoPath());
  // Fully idle: closed with no bytes (same as the blocking server's receive
  // timeout on an empty buffer).
  Client idle(harness.port());
  // Stranded partial request: answered 408 then closed.
  Client stranded(harness.port());
  stranded.Send("GET /part HTTP/1.1\r\nHost:");
  const auto r = stranded.Read();
  EXPECT_EQ(r.status, 408);
  EXPECT_EQ(r.body, "{\"error\": \"request timeout\"}");
  EXPECT_TRUE(stranded.WaitForClose());
  EXPECT_TRUE(idle.WaitForClose());
}

TEST(EventLoopTest, ConnectionCapAnswers503AndCloses) {
  EventLoop::Options opts;
  opts.max_connections = 2;
  LoopHarness harness(opts, EchoPath());
  Client a(harness.port());
  Client b(harness.port());
  // Make sure both are registered before the third connects.
  ASSERT_EQ(a.Roundtrip("GET /a HTTP/1.1\r\n\r\n").status, 200);
  ASSERT_EQ(b.Roundtrip("GET /b HTTP/1.1\r\n\r\n").status, 200);
  Client c(harness.port());
  const auto r = c.Read();
  EXPECT_EQ(r.status, 503);
  EXPECT_EQ(r.body, "{\"error\": \"server overloaded\"}");
  EXPECT_TRUE(c.WaitForClose());
  // The capped loop still serves its registered connections.
  EXPECT_EQ(a.Roundtrip("GET /again HTTP/1.1\r\n\r\n").status, 200);
}

TEST(EventLoopTest, ManyIdleKeepAliveConnectionsDontStarveTraffic) {
  LoopHarness harness(EventLoop::Options{}, EchoPath());
  std::vector<std::unique_ptr<Client>> idle;
  for (int i = 0; i < 200; ++i) {
    idle.push_back(std::make_unique<Client>(harness.port()));
  }
  Client active(harness.port());
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(active.Roundtrip("GET /hot HTTP/1.1\r\n\r\n").body,
              "path=/hot");
  }
  // All idle connections are still open server-side.
  EXPECT_GE(harness.loop().num_open(), 200u);
}

// Async handler plumbing: requests are parked (kProcessing) and completed
// from a separate thread, like the scoring worker pool does.
class AsyncEcho {
 public:
  explicit AsyncEcho(std::chrono::milliseconds delay) : delay_(delay) {
    worker_ = std::thread([this] { Drain(); });
  }
  ~AsyncEcho() {
    {
      MutexLock lock(mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    worker_.join();
  }

  void set_loop(EventLoop* loop) { loop_ = loop; }

  EventLoop::Handler handler() {
    return [this](Conn& conn, const ParsedRequest&) {
      {
        MutexLock lock(mu_);
        pending_.push_back({&conn, conn.fd, conn.generation});
      }
      cv_.NotifyOne();
      return EventLoop::Dispatch::kAsync;
    };
  }

 private:
  struct Item {
    Conn* conn;
    int fd;
    uint64_t generation;
  };

  void Drain() {
    for (;;) {
      Item item;
      {
        MutexLock lock(mu_);
        while (pending_.empty() && !stop_) cv_.Wait(mu_);
        if (pending_.empty()) return;
        item = pending_.front();
        pending_.pop_front();
      }
      std::this_thread::sleep_for(delay_);
      item.conn->http_status = 200;
      item.conn->body.Append("async-done");
      loop_->Complete(item.fd, item.generation);
    }
  }

  const std::chrono::milliseconds delay_;
  EventLoop* loop_ = nullptr;
  Mutex mu_;
  CondVar cv_;
  std::deque<Item> pending_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread worker_;
};

TEST(EventLoopTest, AsyncCompletionFromAnotherThreadWritesResponse) {
  AsyncEcho async(std::chrono::milliseconds(5));
  LoopHarness harness(EventLoop::Options{}, async.handler());
  async.set_loop(&harness.loop());
  Client client(harness.port());
  for (int i = 0; i < 5; ++i) {
    const auto r = client.Roundtrip("GET /a HTTP/1.1\r\n\r\n");
    ASSERT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "async-done");
  }
}

TEST(EventLoopTest, StopDrainsInFlightAsyncRequests) {
  // Shutdown must not drop a request already handed to a worker: the client
  // gets the full response (Connection mirrors the request's keep-alive,
  // but the socket closes after — same as the blocking server's graceful
  // drain).
  AsyncEcho async(std::chrono::milliseconds(100));
  auto harness = std::make_unique<LoopHarness>(EventLoop::Options{},
                                               async.handler());
  async.set_loop(&harness->loop());
  Client client(harness->port());
  client.Send("GET /slow HTTP/1.1\r\n\r\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread stopper([&harness] { harness.reset(); });  // Stop() inside
  const auto r = client.Read();
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "async-done");
  EXPECT_TRUE(client.WaitForClose());
  stopper.join();
}

TEST(EventLoopTest, StopIsIdempotentAndStartStopChurns) {
  for (int round = 0; round < 10; ++round) {
    EventLoop loop(EventLoop::Options{}, nullptr, EchoPath());
    ASSERT_TRUE(loop.Start());
    loop.Stop();
    loop.Stop();  // idempotent
  }
}

TEST(EventLoopTest, ConcurrentStopCallsAreSafe) {
  for (int round = 0; round < 10; ++round) {
    EventLoop loop(EventLoop::Options{}, nullptr, EchoPath());
    ASSERT_TRUE(loop.Start());
    std::vector<std::thread> stoppers;
    for (int i = 0; i < 4; ++i) {
      stoppers.emplace_back([&loop] { loop.Stop(); });
    }
    for (auto& t : stoppers) t.join();
  }
}

}  // namespace
}  // namespace sttr::serve
