// ModelBundle: initial load of the newest valid checkpoint, config
// fingerprint rejection, hot reload on newer checkpoints (manual and via
// the background watcher), reload listeners, and the in-flight guarantee
// that a request's captured snapshot survives a swap. The watcher test
// doubles as the TSan target for concurrent scoring during hot reload.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "serve/model_bundle.h"
#include "serve/result_cache.h"
#include "serve_test_util.h"

namespace sttr::serve {
namespace {

class ModelBundleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new ServeFixture(MakeServeFixture());
  }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }

  const Dataset& dataset() { return fixture_->world.dataset; }
  const CrossCitySplit& split() { return fixture_->split; }

  ModelBundleConfig BundleConfig(const std::string& dir) {
    ModelBundleConfig config;
    config.checkpoint_dir = dir;
    config.model = SmallServeModelConfig();
    return config;
  }

  /// Simulates the trainer landing a newer checkpoint: copies the current
  /// newest file to a higher epoch name (same fingerprint, valid CRCs).
  std::string LandNewerCheckpoint(const std::string& dir, size_t epoch) {
    const auto latest = FindLatestValidCheckpoint(*Env::Default(), dir);
    STTR_CHECK_OK(latest.status());
    const std::string target =
        (std::filesystem::path(dir) / CheckpointFileName(epoch)).string();
    std::filesystem::copy_file(*latest, target);
    return target;
  }

  std::vector<double> ScoreSome(const StTransRec& model) {
    const auto& pois = dataset().PoisInCity(split().target_city);
    const size_t n = std::min<size_t>(pois.size(), 16);
    return model.ScoreBatch(0, {pois.data(), n});
  }

  static ServeFixture* fixture_;
};

ServeFixture* ModelBundleTest::fixture_ = nullptr;

TEST_F(ModelBundleTest, LoadInitialServesNewestCheckpointExactly) {
  const std::string dir = ServeTestDir();
  const std::shared_ptr<StTransRec> trainer = TrainSmallModel(*fixture_, dir);

  ModelBundle bundle(dataset(), split(), BundleConfig(dir));
  ASSERT_TRUE(bundle.LoadInitial().ok());
  const auto snapshot = bundle.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->epoch, SmallServeModelConfig().num_epochs);
  EXPECT_EQ(snapshot->version, 1u);
  EXPECT_EQ(bundle.reload_count(), 1u);

  // The served parameters are the trained parameters, bit for bit.
  EXPECT_EQ(ScoreSome(*snapshot->model), ScoreSome(*trainer));
}

TEST_F(ModelBundleTest, LoadInitialFailsOnEmptyDirectory) {
  const std::string dir = ServeTestDir();
  ModelBundle bundle(dataset(), split(), BundleConfig(dir));
  EXPECT_FALSE(bundle.LoadInitial().ok());
  EXPECT_EQ(bundle.snapshot(), nullptr);
}

TEST_F(ModelBundleTest, RejectsCheckpointFromDifferentConfig) {
  const std::string dir = ServeTestDir();
  TrainSmallModel(*fixture_, dir);

  ModelBundleConfig config = BundleConfig(dir);
  config.model.embedding_dim = 16;  // trained with 8
  ModelBundle bundle(dataset(), split(), config);
  const Status status = bundle.LoadInitial();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("different config"), std::string::npos)
      << status.ToString();
}

TEST_F(ModelBundleTest, ReloadIfNewerIsNoopWhenCurrent) {
  const std::string dir = ServeTestDir();
  TrainSmallModel(*fixture_, dir);
  ModelBundle bundle(dataset(), split(), BundleConfig(dir));
  ASSERT_TRUE(bundle.LoadInitial().ok());
  const auto swapped = bundle.ReloadIfNewer();
  ASSERT_TRUE(swapped.ok());
  EXPECT_FALSE(*swapped);
  EXPECT_EQ(bundle.reload_count(), 1u);
}

TEST_F(ModelBundleTest, HotReloadSwapsInNewerCheckpointAndNotifies) {
  const std::string dir = ServeTestDir();
  TrainSmallModel(*fixture_, dir);
  ModelBundle bundle(dataset(), split(), BundleConfig(dir));

  std::vector<std::string> seen_paths;
  bundle.AddReloadListener([&](const ModelSnapshot& snapshot) {
    seen_paths.push_back(snapshot.checkpoint_path);
  });
  ASSERT_TRUE(bundle.LoadInitial().ok());
  ASSERT_EQ(seen_paths.size(), 1u);

  const std::string newer = LandNewerCheckpoint(dir, /*epoch=*/50);
  const auto swapped = bundle.ReloadIfNewer();
  ASSERT_TRUE(swapped.ok());
  EXPECT_TRUE(*swapped);
  EXPECT_EQ(bundle.reload_count(), 2u);
  ASSERT_EQ(seen_paths.size(), 2u);
  EXPECT_EQ(seen_paths.back(), newer);
  EXPECT_EQ(bundle.snapshot()->checkpoint_path, newer);
  EXPECT_EQ(bundle.snapshot()->version, 2u);
}

TEST_F(ModelBundleTest, InFlightSnapshotSurvivesSwap) {
  const std::string dir = ServeTestDir();
  TrainSmallModel(*fixture_, dir);
  ModelBundle bundle(dataset(), split(), BundleConfig(dir));
  ASSERT_TRUE(bundle.LoadInitial().ok());

  // An "in-flight request": holds the snapshot across a hot reload.
  const std::shared_ptr<const ModelSnapshot> in_flight = bundle.snapshot();
  const std::vector<double> before = ScoreSome(*in_flight->model);

  LandNewerCheckpoint(dir, /*epoch=*/60);
  ASSERT_TRUE(bundle.ReloadIfNewer().ok());
  EXPECT_NE(bundle.snapshot(), in_flight);

  // The old snapshot still scores, bit-identically to before the swap.
  EXPECT_EQ(ScoreSome(*in_flight->model), before);
}

TEST_F(ModelBundleTest, ReloadListenerInvalidatesResultCache) {
  const std::string dir = ServeTestDir();
  TrainSmallModel(*fixture_, dir);
  ModelBundle bundle(dataset(), split(), BundleConfig(dir));

  ResultCache cache(ResultCacheConfig{});
  bundle.AddReloadListener(
      [&](const ModelSnapshot&) { cache.InvalidateAll(); });
  ASSERT_TRUE(bundle.LoadInitial().ok());

  ResultCacheKey key;
  key.user = 1;
  key.city = split().target_city;
  key.cell = 3;
  key.k = 10;
  cache.Put(key, {{7, 0.9}});
  ASSERT_TRUE(cache.Get(key).has_value());

  LandNewerCheckpoint(dir, /*epoch=*/70);
  ASSERT_TRUE(bundle.ReloadIfNewer().ok());
  EXPECT_FALSE(cache.Get(key).has_value())
      << "stale pre-reload result served after the model changed";
}

// The hot-reload acceptance test (and the TSan target): scorer threads
// hammer snapshot()->ScoreBatch while the background watcher swaps in newer
// checkpoints. No request may ever observe torn parameters — two reads of
// one captured snapshot must agree bitwise — and no reload may be missed.
TEST_F(ModelBundleTest, WatcherHotReloadsUnderConcurrentScoring) {
  const std::string dir = ServeTestDir();
  TrainSmallModel(*fixture_, dir);
  ModelBundleConfig config = BundleConfig(dir);
  config.poll_interval = std::chrono::milliseconds(2);
  ModelBundle bundle(dataset(), split(), config);
  ASSERT_TRUE(bundle.LoadInitial().ok());
  bundle.StartWatcher();

  std::atomic<bool> stop{false};
  std::atomic<int> torn_reads{0};
  std::vector<std::thread> scorers;
  for (int t = 0; t < 4; ++t) {
    scorers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::shared_ptr<const ModelSnapshot> snap = bundle.snapshot();
        const std::vector<double> a = ScoreSome(*snap->model);
        const std::vector<double> b = ScoreSome(*snap->model);
        if (a != b) torn_reads.fetch_add(1);
      }
    });
  }

  // The "trainer" lands three newer checkpoints while traffic flows.
  for (size_t epoch = 80; epoch < 83; ++epoch) {
    LandNewerCheckpoint(dir, epoch);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (bundle.reload_count() < epoch - 78 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GE(bundle.reload_count(), epoch - 78) << "watcher missed a reload";
  }

  stop.store(true, std::memory_order_release);
  for (auto& t : scorers) t.join();
  bundle.StopWatcher();

  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(bundle.reload_count(), 4u);  // initial + three hot reloads
  EXPECT_EQ(bundle.snapshot()->version, 4u);
}

}  // namespace
}  // namespace sttr::serve
