// ShardedEmbeddingStore vs the in-process oracle, under health and under
// injected failure: gathers over real loopback sockets must return bytes
// identical to direct table access, deadlines must bound every call even
// against a stalled shard, transient faults (dead connection, torn frame)
// must be retried invisibly, the per-shard circuit breaker must trip after
// consecutive failures and heal through its half-open probe, and — the
// ShardChaosTest soak — killing and restarting shards under concurrent load
// must never produce a single byte of silently wrong data.

#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/embedding_store.h"
#include "serve/shard_server.h"
#include "serve/sharded_store.h"
#include "serve/stats.h"
#include "serve_test_util.h"
#include "util/rng.h"
#include "util/socket_fault.h"

namespace sttr::serve {
namespace {

using Clock = std::chrono::steady_clock;
using Op = FaultInjectionSocket::Op;
using Mode = FaultInjectionSocket::Mode;

constexpr size_t kNumShards = 3;

class ShardedStoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new ServeFixture(MakeServeFixture());
    model_ = new std::shared_ptr<StTransRec>(TrainSmallModel(*fixture_));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete fixture_;
    model_ = nullptr;
    fixture_ = nullptr;
  }

  void SetUp() override {
    for (size_t i = 0; i < kNumShards; ++i) {
      ShardServerConfig cfg;
      cfg.fault = &server_fault_;
      servers_.push_back(std::make_unique<ShardServer>(
          cfg, BuildShardSlice(**model_, i, kNumShards)));
      ASSERT_TRUE(servers_.back()->Start().ok());
      ports_.push_back(servers_.back()->port());
    }
    oracle_ = std::make_unique<InProcessEmbeddingStore>(*model_);
  }

  void TearDown() override {
    server_fault_.Reset();
    client_fault_.Reset();
    store_.reset();
    for (auto& server : servers_) server->Shutdown();
  }

  /// Store under test; tweak `opts` before first use via MakeStore.
  ShardedEmbeddingStore& MakeStore(ShardedStoreOptions opts) {
    opts.shard_ports = ports_;
    opts.fault = &client_fault_;
    opts.stats = &stats_;
    const Tensor& users = (*model_)->UserEmbeddingTable();
    const Tensor& pois = (*model_)->PoiEmbeddingTable();
    store_ = std::make_unique<ShardedEmbeddingStore>(
        std::move(opts), users.cols(), users.rows(), pois.rows());
    return *store_;
  }

  /// Replaces shard `i` with a fresh server on the same port ("restart the
  /// process").
  void RestartShard(size_t i) {
    servers_[i]->Shutdown();
    ShardServerConfig cfg;
    cfg.port = ports_[i];
    cfg.fault = &server_fault_;
    servers_[i] = std::make_unique<ShardServer>(
        cfg, BuildShardSlice(**model_, i, kNumShards));
    ASSERT_TRUE(servers_[i]->Start().ok());
  }

  static Clock::time_point After(std::chrono::milliseconds budget) {
    return Clock::now() + budget;
  }

  /// Gathers `ids` through `store` and asserts the bytes equal the oracle's.
  void ExpectBitIdentical(EmbeddingStore& store, EmbeddingTable table,
                          const std::vector<int64_t>& ids,
                          std::chrono::milliseconds budget =
                              std::chrono::milliseconds(2000)) {
    std::vector<float> got(ids.size() * store.dim());
    std::vector<float> want(ids.size() * store.dim());
    ASSERT_TRUE(
        store.Gather(table, ids, got.data(), After(budget)).ok());
    ASSERT_TRUE(oracle_
                    ->Gather(table, ids, want.data(),
                             After(std::chrono::milliseconds(2000)))
                    .ok());
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          got.size() * sizeof(float)),
              0);
  }

  static ServeFixture* fixture_;
  static std::shared_ptr<StTransRec>* model_;

  std::vector<std::unique_ptr<ShardServer>> servers_;
  std::vector<int> ports_;
  std::unique_ptr<InProcessEmbeddingStore> oracle_;
  std::unique_ptr<ShardedEmbeddingStore> store_;
  FaultInjectionSocket server_fault_;
  FaultInjectionSocket client_fault_;
  ServeStats stats_;
};

ServeFixture* ShardedStoreTest::fixture_ = nullptr;
std::shared_ptr<StTransRec>* ShardedStoreTest::model_ = nullptr;

TEST_F(ShardedStoreTest, GatherIsBitIdenticalToOracle) {
  ShardedEmbeddingStore& store = MakeStore({});
  EXPECT_EQ(store.num_shards(), kNumShards);
  EXPECT_EQ(store.shards_down(), 0u);
  // Ids spanning every shard, out of order, with repeats.
  const std::vector<int64_t> poi_ids = {7, 0, 1, 2, 12, 7, 5,
                                        static_cast<int64_t>(
                                            store.num_rows(
                                                EmbeddingTable::kPoi)) -
                                            1};
  ExpectBitIdentical(store, EmbeddingTable::kPoi, poi_ids);
  ExpectBitIdentical(store, EmbeddingTable::kUser, {0, 4, 2});
  EXPECT_EQ(stats_.shard_errors.load(), 0u);
}

TEST_F(ShardedStoreTest, OutOfRangeIdsRejectedWithoutARoundTrip) {
  ShardedEmbeddingStore& store = MakeStore({});
  std::vector<float> out(store.dim());
  const std::vector<int64_t> bad = {
      static_cast<int64_t>(store.num_rows(EmbeddingTable::kUser))};
  const Status status = store.Gather(EmbeddingTable::kUser, bad, out.data(),
                                     After(std::chrono::milliseconds(500)));
  EXPECT_FALSE(status.ok());
  // Validated router-side: no shard saw a gather, no error was recorded.
  EXPECT_EQ(stats_.shard_errors.load(), 0u);
}

// A shard that accepts the connection but never answers must cost exactly
// the request's budget, never the stall duration — the "stalled shard never
// holds a request past its deadline" acceptance criterion.
TEST_F(ShardedStoreTest, StalledShardFailsAtTheDeadline) {
  server_fault_.set_stall(std::chrono::milliseconds(400));
  server_fault_.FailAlways(Op::kRecv, Mode::kStall);  // shard reads nothing
  ShardedEmbeddingStore& store = MakeStore({});
  std::vector<float> out(store.dim());
  const std::vector<int64_t> ids = {1};
  const auto start = Clock::now();
  const Status status =
      store.Gather(EmbeddingTable::kPoi, ids, out.data(),
                   After(std::chrono::milliseconds(100)));
  const auto elapsed = Clock::now() - start;
  EXPECT_FALSE(status.ok());
  EXPECT_GE(elapsed, std::chrono::milliseconds(95));
  EXPECT_LT(elapsed, std::chrono::milliseconds(350))
      << "caller was held hostage by the stalled shard";
  server_fault_.Clear(Op::kRecv);
}

TEST_F(ShardedStoreTest, TransientSendFailureIsRetriedInvisibly) {
  client_fault_.FailNth(Op::kSend, 0, Mode::kFail);
  ShardedEmbeddingStore& store = MakeStore({});
  ExpectBitIdentical(store, EmbeddingTable::kPoi, {0, 1, 2, 3, 4, 5});
  EXPECT_GE(stats_.shard_retries.load(), 1u);
  EXPECT_GE(stats_.shard_errors.load(), 1u);
  EXPECT_EQ(store.shards_down(), 0u);  // one failure never trips a breaker
}

// A shard killed mid-response leaves a torn frame on the wire; the parser
// flags the tear, the router retries on a fresh connection.
TEST_F(ShardedStoreTest, TornResponseFrameIsRetried) {
  server_fault_.FailNth(Op::kSend, 0, Mode::kShort);
  ShardedEmbeddingStore& store = MakeStore({});
  ExpectBitIdentical(store, EmbeddingTable::kPoi, {0, 1, 2, 3, 4, 5});
  EXPECT_GE(stats_.shard_retries.load(), 1u);
  EXPECT_GE(server_fault_.faults_triggered(), 1u);
}

TEST_F(ShardedStoreTest, CircuitTripsThenHealsThroughHalfOpenProbe) {
  ShardedStoreOptions opts;
  opts.max_retries = 0;  // one failure record per Gather: deterministic trip
  opts.trip_threshold = 2;
  opts.open_duration = std::chrono::milliseconds(150);
  ShardedEmbeddingStore& store = MakeStore(opts);

  // Ids 0 and 3 both live on shard 0 (3 % kNumShards == 0).
  const std::vector<int64_t> shard0_ids = {0, 3};
  std::vector<float> out(shard0_ids.size() * store.dim());
  servers_[0]->Shutdown();

  for (size_t i = 0; i < opts.trip_threshold; ++i) {
    EXPECT_FALSE(store
                     .Gather(EmbeddingTable::kPoi, shard0_ids, out.data(),
                             After(std::chrono::milliseconds(300)))
                     .ok());
  }
  EXPECT_EQ(store.shards_down(), 1u);
  EXPECT_EQ(stats_.shards_down.load(), 1u);

  // While open, the shard fails fast — no connect attempt, so the gather
  // returns near-instantly even with a generous deadline.
  const auto start = Clock::now();
  EXPECT_FALSE(store
                   .Gather(EmbeddingTable::kPoi, shard0_ids, out.data(),
                           After(std::chrono::milliseconds(2000)))
                   .ok());
  EXPECT_LT(Clock::now() - start, std::chrono::milliseconds(100));

  // Other shards are unaffected throughout (ids 1, 4 → shard 1; 2 → shard 2).
  ExpectBitIdentical(store, EmbeddingTable::kPoi, {1, 4, 2});

  // Restart the shard; once the cooldown lapses, the half-open probe admits
  // one gather, and its success closes the breaker for everyone.
  RestartShard(0);
  std::this_thread::sleep_for(opts.open_duration +
                              std::chrono::milliseconds(50));
  ExpectBitIdentical(store, EmbeddingTable::kPoi, shard0_ids);
  EXPECT_EQ(store.shards_down(), 0u);
  EXPECT_EQ(stats_.shards_down.load(), 0u);
}

// The headline soak: concurrent gather load while shards are killed and
// restarted underneath it. Every Gather must either fail with a Status or
// return bytes identical to the oracle — a single mismatched byte fails the
// test. Afterwards the store must heal completely.
TEST_F(ShardedStoreTest, ShardChaosKillRestartUnderLoad) {
  ShardedStoreOptions opts;
  opts.trip_threshold = 3;
  opts.open_duration = std::chrono::milliseconds(60);
  opts.max_retries = 1;
  opts.backoff_base = std::chrono::milliseconds(1);
  opts.backoff_max = std::chrono::milliseconds(4);
  ShardedEmbeddingStore& store = MakeStore(opts);

  const size_t num_pois = store.num_rows(EmbeddingTable::kPoi);
  const size_t dim = store.dim();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok_gathers{0};
  std::atomic<uint64_t> failed_gathers{0};
  std::atomic<uint64_t> mismatched_bytes{0};

  constexpr size_t kThreads = 4;
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(0x51ab5 + t);
      std::vector<int64_t> ids(8);
      std::vector<float> got(ids.size() * dim);
      std::vector<float> want(ids.size() * dim);
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& id : ids) {
          id = static_cast<int64_t>(rng.UniformInt(uint64_t{num_pois}));
        }
        const Status status =
            store.Gather(EmbeddingTable::kPoi, ids, got.data(),
                         After(std::chrono::milliseconds(150)));
        if (!status.ok()) {
          failed_gathers.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        ok_gathers.fetch_add(1, std::memory_order_relaxed);
        ASSERT_TRUE(oracle_
                        ->Gather(EmbeddingTable::kPoi, ids, want.data(),
                                 After(std::chrono::seconds(2)))
                        .ok());
        if (std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(float)) != 0) {
          mismatched_bytes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Kill and restart each shard in turn while the load runs.
  for (size_t round = 0; round < 2; ++round) {
    for (size_t i = 0; i < kNumShards; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
      servers_[i]->Shutdown();
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
      RestartShard(i);
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  for (auto& c : clients) c.join();

  EXPECT_EQ(mismatched_bytes.load(), 0u)
      << "a gather returned silently wrong bytes";
  EXPECT_GT(ok_gathers.load(), 0u);
  // Shards died under load: some gathers must have seen it (otherwise the
  // soak exercised nothing).
  EXPECT_GT(failed_gathers.load() + stats_.shard_retries.load(), 0u);

  // After the dust settles the store heals: wait out the breaker cooldown,
  // then a full-coverage gather must succeed bit-identically.
  std::vector<int64_t> all_shards_ids;
  for (int64_t id = 0; id < static_cast<int64_t>(kNumShards); ++id) {
    all_shards_ids.push_back(id);
  }
  const auto heal_deadline = Clock::now() + std::chrono::seconds(5);
  for (;;) {
    std::vector<float> buf(all_shards_ids.size() * dim);
    if (store
            .Gather(EmbeddingTable::kPoi, all_shards_ids, buf.data(),
                    After(std::chrono::milliseconds(500)))
            .ok()) {
      break;
    }
    ASSERT_LT(Clock::now(), heal_deadline) << "store never recovered";
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ExpectBitIdentical(store, EmbeddingTable::kPoi, all_shards_ids);
  EXPECT_EQ(store.shards_down(), 0u);
}

}  // namespace
}  // namespace sttr::serve
