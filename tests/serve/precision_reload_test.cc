// Precision selection and fp32 <-> int8 hot swapping in ModelBundle: kAuto
// serves whichever artifact is newest by epoch (quantized preferred on
// ties), explicit modes refuse the wrong container version, the result
// cache keys on precision so a swap can't serve stale fp32 top-K as int8,
// and — the TSan target — scorer threads hammer the snapshot while the
// watcher swaps precision underneath them.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/quantized_model.h"
#include "serve/model_bundle.h"
#include "serve/result_cache.h"
#include "serve_test_util.h"

namespace sttr::serve {
namespace {

class PrecisionReloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new ServeFixture(MakeServeFixture());
  }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }

  const Dataset& dataset() { return fixture_->world.dataset; }
  const CrossCitySplit& split() { return fixture_->split; }

  ModelBundleConfig BundleConfig(const std::string& dir, PrecisionMode mode) {
    ModelBundleConfig config;
    config.checkpoint_dir = dir;
    config.model = SmallServeModelConfig();
    config.precision = mode;
    return config;
  }

  /// Quantizes `model` and lands the v2 artifact in <dir>/quant under
  /// `epoch` — what tools/sttr_quantize produces.
  std::string LandQuantArtifact(const StTransRec& model,
                                const std::string& dir, size_t epoch) {
    QuantizationConfig cfg;
    cfg.epoch = static_cast<int64_t>(epoch);
    const auto quant = QuantizedModel::Quantize(model, cfg);
    STTR_CHECK_OK(quant.status());
    const std::string quant_dir = dir + "/quant";
    std::filesystem::create_directories(quant_dir);
    const std::string path = quant_dir + "/" + CheckpointFileName(epoch);
    STTR_CHECK_OK(quant->WriteCheckpointFile(*Env::Default(), path));
    return path;
  }

  std::string LandNewerFp32(const std::string& dir, size_t epoch) {
    const auto latest = FindLatestValidCheckpoint(*Env::Default(), dir);
    STTR_CHECK_OK(latest.status());
    const std::string target =
        (std::filesystem::path(dir) / CheckpointFileName(epoch)).string();
    std::filesystem::copy_file(*latest, target);
    return target;
  }

  std::vector<double> ScoreSome(const PoiScorer& scorer) {
    const auto& pois = dataset().PoisInCity(split().target_city);
    const size_t n = std::min<size_t>(pois.size(), 16);
    const std::vector<UserId> users(n, 0);
    return scorer.ScorePairs(users, {pois.data(), n});
  }

  static ServeFixture* fixture_;
};

ServeFixture* PrecisionReloadTest::fixture_ = nullptr;

TEST_F(PrecisionReloadTest, AutoPrefersQuantizedArtifactOnEpochTie) {
  const std::string dir = ServeTestDir();
  const auto trainer = TrainSmallModel(*fixture_, dir);
  const size_t epoch = SmallServeModelConfig().num_epochs;
  LandQuantArtifact(*trainer, dir, epoch);

  ModelBundle bundle(dataset(), split(),
                     BundleConfig(dir, PrecisionMode::kAuto));
  ASSERT_TRUE(bundle.LoadInitial().ok());
  const auto snapshot = bundle.snapshot();
  EXPECT_EQ(snapshot->precision, Precision::kInt8);
  EXPECT_EQ(snapshot->epoch, epoch);
  EXPECT_EQ(snapshot->model, nullptr);
  ASSERT_NE(snapshot->scorer, nullptr);
  EXPECT_GT(snapshot->resident_bytes, 0u);

  // The served int8 scorer is bit-identical to quantizing in process.
  const auto quant = QuantizedModel::Quantize(*trainer);
  ASSERT_TRUE(quant.ok());
  EXPECT_EQ(ScoreSome(*snapshot->scorer), ScoreSome(*quant));
}

TEST_F(PrecisionReloadTest, AutoServesFp32WhenNoQuantArtifactExists) {
  const std::string dir = ServeTestDir();
  TrainSmallModel(*fixture_, dir);
  ModelBundle bundle(dataset(), split(),
                     BundleConfig(dir, PrecisionMode::kAuto));
  ASSERT_TRUE(bundle.LoadInitial().ok());
  EXPECT_EQ(bundle.snapshot()->precision, Precision::kFp32);
  ASSERT_NE(bundle.snapshot()->model, nullptr);
  EXPECT_EQ(bundle.snapshot()->scorer.get(), bundle.snapshot()->model.get());
}

TEST_F(PrecisionReloadTest, Int8ModeRefusesTrainingCheckpoints) {
  const std::string dir = ServeTestDir();
  TrainSmallModel(*fixture_, dir);
  // Point the int8 mode's quant dir at the fp32 (v1) files: must be refused
  // up front, never half-served.
  ModelBundleConfig config = BundleConfig(dir, PrecisionMode::kInt8);
  config.quant_checkpoint_dir = dir;
  ModelBundle bundle(dataset(), split(), config);
  const Status status = bundle.LoadInitial();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << status.ToString();
}

TEST_F(PrecisionReloadTest, Fp32ModeRefusesQuantizedArtifacts) {
  const std::string dir = ServeTestDir();
  const auto trainer = TrainSmallModel(*fixture_, dir);
  const std::string quant_path = LandQuantArtifact(*trainer, dir, 99);
  // Point the fp32 mode's checkpoint dir at the quant (v2) files.
  ModelBundleConfig config = BundleConfig(dir + "/quant", PrecisionMode::kFp32);
  ModelBundle bundle(dataset(), split(), config);
  const Status status = bundle.LoadInitial();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << status.ToString();
}

TEST_F(PrecisionReloadTest, Int8ModeServesQuantDir) {
  const std::string dir = ServeTestDir();
  const auto trainer = TrainSmallModel(*fixture_, dir);
  LandQuantArtifact(*trainer, dir, 7);
  ModelBundle bundle(dataset(), split(),
                     BundleConfig(dir, PrecisionMode::kInt8));
  ASSERT_TRUE(bundle.LoadInitial().ok());
  EXPECT_EQ(bundle.snapshot()->precision, Precision::kInt8);
  EXPECT_EQ(bundle.snapshot()->epoch, 7u);
}

TEST_F(PrecisionReloadTest, NewerEpochWinsAcrossPrecisions) {
  const std::string dir = ServeTestDir();
  const auto trainer = TrainSmallModel(*fixture_, dir);
  const size_t epoch = SmallServeModelConfig().num_epochs;

  ModelBundle bundle(dataset(), split(),
                     BundleConfig(dir, PrecisionMode::kAuto));
  ASSERT_TRUE(bundle.LoadInitial().ok());
  ASSERT_EQ(bundle.snapshot()->precision, Precision::kFp32);

  // Quant artifact at the same epoch: swap to int8.
  LandQuantArtifact(*trainer, dir, epoch);
  auto swapped = bundle.ReloadIfNewer();
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_TRUE(*swapped);
  EXPECT_EQ(bundle.snapshot()->precision, Precision::kInt8);

  // A newer fp32 checkpoint (the trainer moved on): swap back. (The copied
  // file's meta still says `epoch`, so only the precision is asserted —
  // selection goes by filename epoch, snapshot->epoch by the meta section.)
  LandNewerFp32(dir, epoch + 5);
  swapped = bundle.ReloadIfNewer();
  ASSERT_TRUE(swapped.ok());
  EXPECT_TRUE(*swapped);
  EXPECT_EQ(bundle.snapshot()->precision, Precision::kFp32);

  // An even newer quant artifact: int8 again.
  LandQuantArtifact(*trainer, dir, epoch + 9);
  swapped = bundle.ReloadIfNewer();
  ASSERT_TRUE(swapped.ok());
  EXPECT_TRUE(*swapped);
  EXPECT_EQ(bundle.snapshot()->precision, Precision::kInt8);
  EXPECT_EQ(bundle.snapshot()->epoch, epoch + 9);
}

TEST_F(PrecisionReloadTest, ResultCacheKeysDistinguishPrecision) {
  ResultCache cache(ResultCacheConfig{});
  ResultCacheKey fp32_key;
  fp32_key.user = 1;
  fp32_key.city = 0;
  fp32_key.cell = 3;
  fp32_key.k = 10;
  fp32_key.precision = static_cast<uint8_t>(Precision::kFp32);
  ResultCacheKey int8_key = fp32_key;
  int8_key.precision = static_cast<uint8_t>(Precision::kInt8);

  cache.Put(fp32_key, {{7, 0.9}});
  EXPECT_TRUE(cache.Get(fp32_key).has_value());
  // A precision flip must miss: int8 scores are not the fp32 top-K.
  EXPECT_FALSE(cache.Get(int8_key).has_value());
  cache.Put(int8_key, {{8, 0.8}});
  ASSERT_TRUE(cache.Get(int8_key).has_value());
  EXPECT_EQ(cache.Get(int8_key)->front().first, 8);
  EXPECT_EQ(cache.Get(fp32_key)->front().first, 7);
}

// The precision hot-swap acceptance test (and the TSan target): scorer
// threads hammer snapshot()->scorer while the watcher swaps fp32 -> int8 ->
// fp32 underneath them. Captured snapshots must keep scoring their own
// parameters bit-stably through both swaps.
TEST_F(PrecisionReloadTest, WatcherSwapsPrecisionUnderConcurrentScoring) {
  const std::string dir = ServeTestDir();
  const auto trainer = TrainSmallModel(*fixture_, dir);
  const size_t epoch = SmallServeModelConfig().num_epochs;

  ModelBundleConfig config = BundleConfig(dir, PrecisionMode::kAuto);
  config.poll_interval = std::chrono::milliseconds(2);
  ModelBundle bundle(dataset(), split(), config);
  ASSERT_TRUE(bundle.LoadInitial().ok());
  bundle.StartWatcher();

  std::atomic<bool> stop{false};
  std::atomic<int> torn_reads{0};
  std::vector<std::thread> scorers;
  for (int t = 0; t < 4; ++t) {
    scorers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::shared_ptr<const ModelSnapshot> snap = bundle.snapshot();
        const std::vector<double> a = ScoreSome(*snap->scorer);
        const std::vector<double> b = ScoreSome(*snap->scorer);
        if (a != b) torn_reads.fetch_add(1);
      }
    });
  }

  const auto wait_for_reload = [&](uint64_t count) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (bundle.reload_count() < count &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return bundle.reload_count() >= count;
  };

  // fp32 -> int8 (quant artifact ties the epoch) -> fp32 (newer training
  // checkpoint) while traffic flows.
  LandQuantArtifact(*trainer, dir, epoch);
  ASSERT_TRUE(wait_for_reload(2)) << "watcher missed the int8 swap";
  EXPECT_EQ(bundle.snapshot()->precision, Precision::kInt8);

  LandNewerFp32(dir, epoch + 10);
  ASSERT_TRUE(wait_for_reload(3)) << "watcher missed the fp32 swap-back";
  EXPECT_EQ(bundle.snapshot()->precision, Precision::kFp32);

  stop.store(true, std::memory_order_release);
  for (auto& t : scorers) t.join();
  bundle.StopWatcher();

  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(bundle.reload_count(), 3u);
}

}  // namespace
}  // namespace sttr::serve
