// Gather wire protocol: append/parse roundtrips, incremental parsing (every
// prefix of a valid frame is kNeedMore, never kBad), corruption detection
// (bad magic, inconsistent lengths, oversized counts are kBad — the signal
// the router uses to tear down a connection), and the modulo placement
// helpers whose bijectivity is what makes sharded gathers a permutation of
// the full tables.

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/shard_protocol.h"

namespace sttr::serve {
namespace {

GatherRequest MakeRequest() {
  GatherRequest req;
  req.request_id = 0x0123456789abcdefULL;
  req.table = EmbeddingTable::kPoi;
  req.deadline_ms = 37;
  req.ids = {5, 0, 12, 7, 12};
  return req;
}

TEST(ShardProtocolTest, RequestRoundtrip) {
  std::string wire;
  AppendGatherRequest(MakeRequest(), &wire);
  EXPECT_EQ(wire.size(), kFrameHeaderBytes + 20 + 5 * sizeof(int64_t));

  GatherRequest decoded;
  size_t consumed = 0;
  ASSERT_EQ(ParseGatherRequest(wire, &decoded, &consumed),
            FrameParse::kComplete);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(decoded.request_id, 0x0123456789abcdefULL);
  EXPECT_EQ(decoded.table, EmbeddingTable::kPoi);
  EXPECT_EQ(decoded.deadline_ms, 37u);
  EXPECT_EQ(decoded.ids, MakeRequest().ids);
}

TEST(ShardProtocolTest, ResponseRoundtrip) {
  const std::vector<float> rows = {1.5f, -2.25f, 0.0f, 3.0f, -0.5f, 8.0f};
  std::string wire;
  AppendGatherResponse(42, GatherStatus::kOk, /*dim=*/3, rows, &wire);

  GatherResponse decoded;
  size_t consumed = 0;
  ASSERT_EQ(ParseGatherResponse(wire, &decoded, &consumed),
            FrameParse::kComplete);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(decoded.request_id, 42u);
  EXPECT_EQ(decoded.status, GatherStatus::kOk);
  EXPECT_EQ(decoded.dim, 3u);
  EXPECT_EQ(decoded.count, 2u);
  ASSERT_EQ(decoded.rows.size(), rows.size());
  // Bit-exact, not approximately-equal: the whole point of the protocol.
  EXPECT_EQ(std::memcmp(decoded.rows.data(), rows.data(),
                        rows.size() * sizeof(float)),
            0);
}

TEST(ShardProtocolTest, ErrorResponseCarriesNoRows) {
  std::string wire;
  AppendGatherResponse(7, GatherStatus::kShuttingDown, 0, {}, &wire);
  GatherResponse decoded;
  size_t consumed = 0;
  ASSERT_EQ(ParseGatherResponse(wire, &decoded, &consumed),
            FrameParse::kComplete);
  EXPECT_EQ(decoded.status, GatherStatus::kShuttingDown);
  EXPECT_TRUE(decoded.rows.empty());
}

// A killed shard tears the stream at an arbitrary byte. Every proper prefix
// must parse as "incomplete", never as "garbage" and never as a bogus
// complete frame — this is what lets the router classify the tear as a
// transient connection error.
TEST(ShardProtocolTest, EveryPrefixIsNeedMore) {
  std::string wire;
  AppendGatherRequest(MakeRequest(), &wire);
  for (size_t len = 0; len < wire.size(); ++len) {
    GatherRequest decoded;
    size_t consumed = 0;
    EXPECT_EQ(ParseGatherRequest(wire.substr(0, len), &decoded, &consumed),
              FrameParse::kNeedMore)
        << "prefix length " << len;
  }
  std::string resp;
  const std::vector<float> resp_rows = {1.0f, 2.0f};
  AppendGatherResponse(1, GatherStatus::kOk, 2, resp_rows, &resp);
  for (size_t len = 0; len < resp.size(); ++len) {
    GatherResponse decoded;
    size_t consumed = 0;
    EXPECT_EQ(ParseGatherResponse(resp.substr(0, len), &decoded, &consumed),
              FrameParse::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(ShardProtocolTest, CorruptionIsBadNotNeedMore) {
  std::string wire;
  AppendGatherRequest(MakeRequest(), &wire);

  {  // Wrong magic: not this protocol at all.
    std::string bad = wire;
    bad[0] = static_cast<char>(bad[0] ^ 0x01);
    GatherRequest decoded;
    size_t consumed = 0;
    EXPECT_EQ(ParseGatherRequest(bad, &decoded, &consumed), FrameParse::kBad);
  }
  {  // Response magic on the request parser: streams must not cross.
    std::string resp;
    const std::vector<float> one_row = {1.0f};
    AppendGatherResponse(1, GatherStatus::kOk, 1, one_row, &resp);
    GatherRequest decoded;
    size_t consumed = 0;
    EXPECT_EQ(ParseGatherRequest(resp, &decoded, &consumed),
              FrameParse::kBad);
  }
  {  // payload_len inconsistent with the id count: corrupt length prefix.
    std::string bad = wire;
    uint32_t count = 0;
    std::memcpy(&count, bad.data() + kFrameHeaderBytes + 16, sizeof(count));
    count += 1;
    std::memcpy(bad.data() + kFrameHeaderBytes + 16, &count, sizeof(count));
    GatherRequest decoded;
    size_t consumed = 0;
    EXPECT_EQ(ParseGatherRequest(bad, &decoded, &consumed), FrameParse::kBad);
  }
  {  // A length prefix demanding a giant allocation is rejected up front.
    std::string bad = wire.substr(0, kFrameHeaderBytes);
    const uint32_t huge = static_cast<uint32_t>(kMaxFramePayloadBytes + 1);
    std::memcpy(bad.data() + 4, &huge, sizeof(huge));
    GatherRequest decoded;
    size_t consumed = 0;
    EXPECT_EQ(ParseGatherRequest(bad, &decoded, &consumed), FrameParse::kBad);
  }
}

TEST(ShardProtocolTest, BackToBackFramesConsumeOneAtATime) {
  GatherRequest first = MakeRequest();
  GatherRequest second;
  second.request_id = 99;
  second.table = EmbeddingTable::kUser;
  second.ids = {1};
  std::string wire;
  AppendGatherRequest(first, &wire);
  const size_t first_size = wire.size();
  AppendGatherRequest(second, &wire);

  GatherRequest decoded;
  size_t consumed = 0;
  ASSERT_EQ(ParseGatherRequest(wire, &decoded, &consumed),
            FrameParse::kComplete);
  EXPECT_EQ(consumed, first_size);
  EXPECT_EQ(decoded.request_id, first.request_id);

  std::string_view rest(wire);
  rest.remove_prefix(consumed);
  ASSERT_EQ(ParseGatherRequest(rest, &decoded, &consumed),
            FrameParse::kComplete);
  EXPECT_EQ(decoded.request_id, 99u);
  EXPECT_EQ(consumed, rest.size());
}

// Modulo placement must tile every table exactly: each global id owned by
// one shard, local indices dense in [0, ShardRowCount), row counts summing
// to the table size — the invariants BuildShardSlice and the shard server's
// bounds checks both lean on.
TEST(ShardProtocolTest, ModuloPlacementIsABijection) {
  for (size_t num_shards : {1u, 2u, 3u, 7u}) {
    for (size_t total : {0u, 1u, 5u, 64u, 65u}) {
      size_t covered = 0;
      for (size_t shard = 0; shard < num_shards; ++shard) {
        const size_t rows = ShardRowCount(total, shard, num_shards);
        covered += rows;
        for (size_t local = 0; local < rows; ++local) {
          const int64_t global =
              static_cast<int64_t>(local * num_shards + shard);
          ASSERT_LT(static_cast<size_t>(global), total);
          EXPECT_EQ(ShardOfId(global, num_shards), shard);
          EXPECT_EQ(ShardLocalIndex(global, num_shards), local);
        }
      }
      EXPECT_EQ(covered, total) << total << " rows over " << num_shards;
    }
  }
}

}  // namespace
}  // namespace sttr::serve
