// ScoreBatcher and the mixed-user ScorePairs primitive it rides on: scores
// coming out of the micro-batching queue must be bit-identical to serial
// per-request scoring, for lone requests and for concurrent mixed-user
// traffic coalesced into shared flushes.

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/batcher.h"
#include "serve_test_util.h"
#include "util/rng.h"

namespace sttr::serve {
namespace {

class BatcherTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new ServeFixture(MakeServeFixture());
    model_ = new std::shared_ptr<StTransRec>(TrainSmallModel(*fixture_));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete fixture_;
    model_ = nullptr;
    fixture_ = nullptr;
  }

  const Dataset& dataset() { return fixture_->world.dataset; }
  const CrossCitySplit& split() { return fixture_->split; }
  std::shared_ptr<StTransRec> model() { return *model_; }

  /// A candidate list drawn deterministically from the target city.
  std::vector<PoiId> SomePois(size_t n, uint64_t seed) {
    const auto& pois = dataset().PoisInCity(split().target_city);
    Rng rng(seed);
    std::vector<PoiId> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(pois[rng.UniformInt(static_cast<uint64_t>(pois.size()))]);
    }
    return out;
  }

  static ServeFixture* fixture_;
  static std::shared_ptr<StTransRec>* model_;
};

ServeFixture* BatcherTest::fixture_ = nullptr;
std::shared_ptr<StTransRec>* BatcherTest::model_ = nullptr;

TEST_F(BatcherTest, ScorePairsMatchesScalarScoreBitwise) {
  const std::vector<PoiId> pois = SomePois(64, /*seed=*/1);
  std::vector<UserId> users;
  for (size_t i = 0; i < pois.size(); ++i) {
    users.push_back(static_cast<UserId>(i % dataset().num_users()));
  }
  const std::vector<double> batched =
      model()->ScorePairs({users.data(), users.size()},
                          {pois.data(), pois.size()});
  ASSERT_EQ(batched.size(), pois.size());
  for (size_t i = 0; i < pois.size(); ++i) {
    EXPECT_EQ(batched[i], model()->Score(users[i], pois[i]))
        << "pair " << i << " (user " << users[i] << ", poi " << pois[i]
        << ") must be bit-identical regardless of batch composition";
  }
}

TEST_F(BatcherTest, ScorePairsMatchesScoreBatchForOneUser) {
  const std::vector<PoiId> pois = SomePois(32, /*seed=*/2);
  const UserId user = 3;
  const std::vector<UserId> users(pois.size(), user);
  EXPECT_EQ(model()->ScorePairs({users.data(), users.size()},
                                {pois.data(), pois.size()}),
            model()->ScoreBatch(user, {pois.data(), pois.size()}));
}

TEST_F(BatcherTest, SingleRequestMatchesSerialScoring) {
  ScoreBatcher batcher(BatcherConfig{});
  batcher.Start();
  const std::vector<PoiId> pois = SomePois(20, /*seed=*/3);
  const UserId user = 5;
  std::future<std::vector<double>> future =
      batcher.Submit(model(), user, pois);
  const std::vector<double> got = future.get();
  EXPECT_EQ(got, model()->ScoreBatch(user, {pois.data(), pois.size()}));
  batcher.Stop();
  EXPECT_GE(batcher.num_batches(), 1u);
}

TEST_F(BatcherTest, ConcurrentMixedRequestsBitIdenticalToSerial) {
  // Force co-batching: a big pair budget and a min/wait that holds the
  // flush until all submitters are in the queue.
  BatcherConfig config;
  config.max_batch_pairs = 10'000;
  config.min_batch_pairs = 10'000;
  config.max_wait = std::chrono::milliseconds(50);
  ServeStats stats;
  ScoreBatcher batcher(config, &stats);
  batcher.Start();

  constexpr size_t kRequests = 16;
  std::vector<std::vector<PoiId>> pois(kRequests);
  std::vector<UserId> users(kRequests);
  for (size_t i = 0; i < kRequests; ++i) {
    pois[i] = SomePois(10 + i, /*seed=*/100 + i);  // varied batch sizes
    users[i] = static_cast<UserId>(i % dataset().num_users());
  }

  std::vector<std::future<std::vector<double>>> futures(kRequests);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kRequests; ++i) {
    threads.emplace_back([&, i] {
      futures[i] = batcher.Submit(model(), users[i], pois[i]);
    });
  }
  for (auto& t : threads) t.join();

  for (size_t i = 0; i < kRequests; ++i) {
    const std::vector<double> got = futures[i].get();
    const std::vector<double> want =
        model()->ScoreBatch(users[i], {pois[i].data(), pois[i].size()});
    EXPECT_EQ(got, want) << "request " << i
                         << " altered by sharing a flush with other users";
  }
  batcher.Stop();
  // The whole burst fit into far fewer flushes than requests.
  EXPECT_LT(batcher.num_batches(), kRequests);
  EXPECT_EQ(stats.batched_requests.load(), kRequests);
}

TEST_F(BatcherTest, OversizedRequestStillFlushes) {
  BatcherConfig config;
  config.max_batch_pairs = 8;  // far below the request size
  ScoreBatcher batcher(config);
  batcher.Start();
  const std::vector<PoiId> pois = SomePois(100, /*seed=*/4);
  const std::vector<double> got = batcher.Submit(model(), 1, pois).get();
  EXPECT_EQ(got, model()->ScoreBatch(1, {pois.data(), pois.size()}));
  batcher.Stop();
}

TEST_F(BatcherTest, StopDrainsPendingRequests) {
  BatcherConfig config;
  config.min_batch_pairs = 1'000'000;  // would wait forever without Stop()
  config.max_wait = std::chrono::seconds(30);
  ScoreBatcher batcher(config);
  batcher.Start();
  const std::vector<PoiId> pois = SomePois(5, /*seed=*/5);
  std::vector<std::future<std::vector<double>>> futures;
  for (UserId u = 0; u < 4; ++u) {
    futures.push_back(batcher.Submit(model(), u, pois));
  }
  batcher.Stop();  // must flush everything pending, not abandon it
  for (UserId u = 0; u < 4; ++u) {
    EXPECT_EQ(futures[static_cast<size_t>(u)].get(),
              model()->ScoreBatch(u, {pois.data(), pois.size()}));
  }
}

TEST_F(BatcherTest, ManyConcurrentSubmittersStressScoringIsExact) {
  BatcherConfig config;
  config.max_batch_pairs = 256;
  ScoreBatcher batcher(config);
  batcher.Start();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const UserId user =
            static_cast<UserId>((t * kPerThread + i) % dataset().num_users());
        const std::vector<PoiId> pois =
            SomePois(1 + (i % 30), /*seed=*/static_cast<uint64_t>(t * 1000 + i));
        const std::vector<double> got =
            batcher.Submit(model(), user, pois).get();
        if (got != model()->ScoreBatch(user, {pois.data(), pois.size()})) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  batcher.Stop();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace sttr::serve
