// CandidateIndex: candidate sets are sorted, deduplicated, city-scoped,
// meet the min_candidates target (or exhaust the city), and are a
// deterministic function of (city, query cell) — the property per-cell
// result caching relies on.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "serve/candidate_index.h"
#include "serve_test_util.h"

namespace sttr::serve {
namespace {

class CandidateIndexTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { fixture_ = new ServeFixture(MakeServeFixture()); }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }
  const Dataset& dataset() { return fixture_->world.dataset; }
  const CrossCitySplit& split() { return fixture_->split; }

  static ServeFixture* fixture_;
};

ServeFixture* CandidateIndexTest::fixture_ = nullptr;

TEST_F(CandidateIndexTest, CandidatesAreSortedUniqueAndInCity) {
  CandidateIndex index(dataset(), &split(), CandidateIndexConfig{});
  for (CityId city = 0; city < static_cast<CityId>(dataset().num_cities());
       ++city) {
    const auto& pois = dataset().PoisInCity(city);
    if (pois.empty()) continue;
    const GeoPoint loc = dataset().poi(pois[pois.size() / 2]).location;
    const std::vector<PoiId> candidates = index.Candidates(city, loc);
    ASSERT_FALSE(candidates.empty());
    EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
    EXPECT_EQ(std::adjacent_find(candidates.begin(), candidates.end()),
              candidates.end())
        << "duplicate candidate";
    for (PoiId poi : candidates) {
      EXPECT_EQ(dataset().poi(poi).city, city);
    }
  }
}

TEST_F(CandidateIndexTest, MeetsMinCandidatesOrExhaustsCity) {
  CandidateIndexConfig config;
  config.min_candidates = 50;
  CandidateIndex index(dataset(), &split(), config);
  const CityId city = split().target_city;
  const size_t city_size = dataset().PoisInCity(city).size();
  const GeoPoint loc = dataset().poi(dataset().PoisInCity(city)[0]).location;

  const auto defaulted = index.Candidates(city, loc);
  EXPECT_GE(defaulted.size(), std::min<size_t>(50, city_size));

  // An explicit target overrides the config default.
  const auto ten = index.Candidates(city, loc, 10);
  EXPECT_GE(ten.size(), std::min<size_t>(10, city_size));

  // Asking for more than the city holds returns the whole city.
  const auto all = index.Candidates(city, loc, city_size * 10);
  EXPECT_EQ(all.size(), city_size);
}

TEST_F(CandidateIndexTest, SameCellSameCandidates) {
  CandidateIndex index(dataset(), &split(), CandidateIndexConfig{});
  const CityId city = split().target_city;
  const auto& pois = dataset().PoisInCity(city);
  // Find two POIs in the same grid cell.
  for (size_t i = 0; i + 1 < pois.size(); ++i) {
    const GeoPoint a = dataset().poi(pois[i]).location;
    for (size_t j = i + 1; j < pois.size(); ++j) {
      const GeoPoint b = dataset().poi(pois[j]).location;
      if (index.CellOf(city, a) != index.CellOf(city, b)) continue;
      EXPECT_EQ(index.Candidates(city, a), index.Candidates(city, b))
          << "same cell must yield the same candidate set";
      return;
    }
  }
  GTEST_SKIP() << "no two POIs share a cell in this world";
}

TEST_F(CandidateIndexTest, RepeatedQueriesAreDeterministic) {
  CandidateIndex index(dataset(), &split(), CandidateIndexConfig{});
  const CityId city = split().target_city;
  const GeoPoint loc = dataset().poi(dataset().PoisInCity(city)[3]).location;
  const auto first = index.Candidates(city, loc);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(index.Candidates(city, loc), first);
  }
  // Two independently constructed indexes agree too (no hidden RNG state).
  CandidateIndex other(dataset(), &split(), CandidateIndexConfig{});
  EXPECT_EQ(other.Candidates(city, loc), first);
}

TEST_F(CandidateIndexTest, GridOnlyModeWorks) {
  CandidateIndexConfig config;
  config.use_regions = false;
  CandidateIndex index(dataset(), &split(), config);
  const CityId city = split().target_city;
  EXPECT_EQ(index.NumRegions(city), index.NumCells(city));
  const GeoPoint loc = dataset().poi(dataset().PoisInCity(city)[0]).location;
  const auto candidates = index.Candidates(city, loc);
  EXPECT_FALSE(candidates.empty());
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
}

TEST_F(CandidateIndexTest, RegionsCoarsenCells) {
  CandidateIndex index(dataset(), &split(), CandidateIndexConfig{});
  const CityId city = split().target_city;
  EXPECT_GE(index.NumRegions(city), 1u);
  EXPECT_LE(index.NumRegions(city), index.NumCells(city));
}

TEST_F(CandidateIndexTest, CellOfIsWithinGrid) {
  CandidateIndex index(dataset(), &split(), CandidateIndexConfig{});
  const CityId city = split().target_city;
  for (PoiId poi : dataset().PoisInCity(city)) {
    EXPECT_LT(index.CellOf(city, dataset().poi(poi).location),
              index.NumCells(city));
  }
  // Out-of-bounds coordinates clamp to a valid cell instead of crashing.
  EXPECT_LT(index.CellOf(city, GeoPoint{1000.0, -1000.0}),
            index.NumCells(city));
}

}  // namespace
}  // namespace sttr::serve
