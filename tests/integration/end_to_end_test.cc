// Integration tests: the whole pipeline — generator -> split -> every
// registered method -> evaluation protocol — on the tiny world.

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "bench/bench_util.h"
#include "core/parallel_trainer.h"
#include "data/synth/world_generator.h"

namespace sttr {
namespace {

struct Fixture {
  synth::SynthWorld world;
  CrossCitySplit split;
};

const Fixture& SharedFixture() {
  static const Fixture* f = [] {
    auto cfg = synth::SynthWorldConfig::FoursquareLike(synth::Scale::kTiny);
    auto* out = new Fixture{synth::GenerateWorld(cfg), {}};
    out->split = MakeCrossCitySplit(out->world.dataset, cfg.target_city);
    return out;
  }();
  return *f;
}

StTransRecConfig FastDeepConfig() {
  StTransRecConfig cfg;
  cfg.embedding_dim = 8;
  cfg.hidden_dims = {16, 8};
  cfg.num_epochs = 1;
  cfg.batch_size = 32;
  cfg.mmd_batch = 8;
  return cfg;
}

class EveryMethod : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryMethod, FitsEvaluatesAndRanksDeterministically) {
  const auto& f = SharedFixture();
  auto rec = baselines::MakeRecommender(GetParam(), FastDeepConfig());
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE((*rec)->Fit(f.world.dataset, f.split).ok());

  EvalConfig ec;
  const EvalResult a = EvaluateRanking(f.world.dataset, f.split, **rec, ec);
  const EvalResult b = EvaluateRanking(f.world.dataset, f.split, **rec, ec);
  EXPECT_EQ(a.num_users_evaluated, f.split.test_users.size());
  for (size_t k : ec.ks) {
    // Metrics live in [0,1] and re-evaluation is deterministic.
    EXPECT_GE(a.At(k).recall, 0.0);
    EXPECT_LE(a.At(k).recall, 1.0);
    EXPECT_DOUBLE_EQ(a.At(k).recall, b.At(k).recall);
    EXPECT_DOUBLE_EQ(a.At(k).ndcg, b.At(k).ndcg);
  }

  // RecommendTopK agrees with pairwise Score ordering.
  const UserId u = f.split.test_users.front().user;
  const auto top = (*rec)->RecommendTopK(f.world.dataset, 0, u, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_GE(top[0].second, top[1].second);
  EXPECT_GE(top[1].second, top[2].second);
  EXPECT_DOUBLE_EQ(top[0].second, (*rec)->Score(u, top[0].first));
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, EveryMethod,
    ::testing::Values("ItemPop", "LCE", "CRCF", "PR-UIDT", "ST-LDA", "CTLM",
                      "SH-CDL", "PACE", "ST-TransRec", "ST-TransRec-1",
                      "ST-TransRec-2", "ST-TransRec-3"),
    [](const auto& suffix_info) {
      std::string name = suffix_info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(EndToEndTest, RecallOrderingFullVsNoText) {
  // The strongest ablation signal in the synthetic world: text off must
  // hurt. Train both with an equal, slightly larger budget.
  const auto& f = SharedFixture();
  auto cfg = FastDeepConfig();
  cfg.num_epochs = 8;
  cfg.embedding_dim = 16;
  cfg.hidden_dims = {32, 16};

  StTransRec full(cfg);
  ASSERT_TRUE(full.Fit(f.world.dataset, f.split).ok());
  StTransRec no_text(MakeVariant2(cfg));
  ASSERT_TRUE(no_text.Fit(f.world.dataset, f.split).ok());

  EvalConfig ec;
  const double r_full =
      EvaluateRanking(f.world.dataset, f.split, full, ec).At(10).recall;
  const double r_no_text =
      EvaluateRanking(f.world.dataset, f.split, no_text, ec).At(10).recall;
  EXPECT_GT(r_full, r_no_text);
}

TEST(EndToEndTest, BenchWorldFactoriesWork) {
  bench::BenchOptions opts;
  opts.scale = synth::Scale::kTiny;
  for (const char* name : {"foursquare", "yelp"}) {
    const auto ws = bench::MakeWorld(name, opts);
    EXPECT_GT(ws.world.dataset.num_checkins(), 0u);
    EXPECT_FALSE(ws.split.test_users.empty());
  }
}

TEST(EndToEndTest, PaperArchitectureSettings) {
  StTransRecConfig fsq;
  bench::ApplyPaperArchitecture("foursquare", fsq);
  EXPECT_EQ(fsq.embedding_dim, 64u);
  ASSERT_EQ(fsq.hidden_dims.size(), 4u);
  EXPECT_EQ(fsq.hidden_dims.front(), 128u);
  EXPECT_EQ(fsq.hidden_dims.back(), 16u);
  StTransRecConfig yelp;
  bench::ApplyPaperArchitecture("yelp", yelp);
  EXPECT_EQ(yelp.embedding_dim, 128u);
  ASSERT_EQ(yelp.hidden_dims.size(), 4u);
  EXPECT_EQ(yelp.hidden_dims.front(), 256u);
  EXPECT_EQ(yelp.hidden_dims.back(), 32u);
}

TEST(EndToEndTest, ParallelTrainerMatchesSingleWorkerQuality) {
  const auto& f = SharedFixture();
  auto cfg = FastDeepConfig();
  cfg.num_epochs = 4;
  ParallelTrainer trainer(cfg, 2);
  ASSERT_TRUE(trainer.Init(f.world.dataset, f.split).ok());
  ASSERT_TRUE(trainer.TrainEpochs(4).ok());
  EvalConfig ec;
  const EvalResult r =
      EvaluateRanking(f.world.dataset, f.split, trainer.master(), ec);
  // Loose sanity: the data-parallel model must be above floor performance.
  EXPECT_GT(r.At(10).recall, 0.05);
}

}  // namespace
}  // namespace sttr
