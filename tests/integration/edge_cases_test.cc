// Edge-case tests across module boundaries: degenerate sizes, boundary
// cutoffs and robustness properties not covered by the per-module suites.

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/item_pop.h"
#include "core/st_transrec.h"
#include "data/synth/world_generator.h"
#include "geo/region_segmentation.h"
#include "transfer/mmd.h"

namespace sttr {
namespace {

struct Fixture {
  synth::SynthWorld world;
  CrossCitySplit split;
};

const Fixture& SharedFixture() {
  static const Fixture* f = [] {
    auto cfg = synth::SynthWorldConfig::FoursquareLike(synth::Scale::kTiny);
    auto* out = new Fixture{synth::GenerateWorld(cfg), {}};
    out->split = MakeCrossCitySplit(out->world.dataset, cfg.target_city);
    return out;
  }();
  return *f;
}

TEST(EdgeCaseTest, RecommendTopKLargerThanCityClamps) {
  const auto& f = SharedFixture();
  baselines::ItemPop pop;
  ASSERT_TRUE(pop.Fit(f.world.dataset, f.split).ok());
  const size_t city_size = f.world.dataset.PoisInCity(0).size();
  const auto top =
      pop.RecommendTopK(f.world.dataset, 0, 0, city_size + 100);
  EXPECT_EQ(top.size(), city_size);
}

TEST(EdgeCaseTest, RecommendTopKWithFullExclusion) {
  const auto& f = SharedFixture();
  baselines::ItemPop pop;
  ASSERT_TRUE(pop.Fit(f.world.dataset, f.split).ok());
  std::unordered_set<PoiId> all;
  for (PoiId v : f.world.dataset.PoisInCity(0)) all.insert(v);
  EXPECT_TRUE(pop.RecommendTopK(f.world.dataset, 0, 0, 5, &all).empty());
}

TEST(EdgeCaseTest, EvalWithKBeyondCandidatePool) {
  const auto& f = SharedFixture();
  baselines::ItemPop pop;
  ASSERT_TRUE(pop.Fit(f.world.dataset, f.split).ok());
  EvalConfig cfg;
  cfg.ks = {1, 500};  // 500 exceeds |ground truth| + negatives
  const EvalResult r = EvaluateRanking(f.world.dataset, f.split, pop, cfg);
  // Recall@huge-k must saturate at 1 (everything retrieved).
  EXPECT_NEAR(r.At(500).recall, 1.0, 1e-9);
  EXPECT_LE(r.At(1).recall, r.At(500).recall);
}

TEST(EdgeCaseTest, EvalWithOneNegative) {
  const auto& f = SharedFixture();
  baselines::ItemPop pop;
  ASSERT_TRUE(pop.Fit(f.world.dataset, f.split).ok());
  EvalConfig cfg;
  cfg.num_negatives = 1;
  const EvalResult r = EvaluateRanking(f.world.dataset, f.split, pop, cfg);
  EXPECT_EQ(r.num_users_evaluated, f.split.test_users.size());
  EXPECT_GT(r.At(10).recall, 0.5);  // nearly everything is ground truth
}

TEST(EdgeCaseTest, MmdMultiKernelGradientMatchesFiniteDifference) {
  Rng rng(3);
  ag::Variable xs(Tensor::RandomNormal({6, 2}, rng), true);
  ag::Variable xt(Tensor::RandomNormal({6, 2}, rng, 1.0f), true);
  const std::vector<double> sigmas = {0.5, 1.0, 2.0};
  ag::Variable loss = ag_ops::MmdLoss(xs, xt, sigmas);
  ag::Backward(loss);
  const float eps = 1e-3f;
  for (size_t i = 0; i < xs.value().size(); i += 3) {
    const float orig = xs.value()[i];
    xs.mutable_value()[i] = orig + eps;
    const double up = ag_ops::MmdLoss(xs, xt, sigmas).value()[0];
    xs.mutable_value()[i] = orig - eps;
    const double down = ag_ops::MmdLoss(xs, xt, sigmas).value()[0];
    xs.mutable_value()[i] = orig;
    EXPECT_NEAR(xs.grad()[i], (up - down) / (2 * eps), 3e-2);
  }
}

TEST(EdgeCaseTest, StTransRecSingleEpochSingleBatch) {
  // Degenerate optimisation budget must still produce a usable model.
  const auto& f = SharedFixture();
  StTransRecConfig cfg;
  cfg.embedding_dim = 4;
  cfg.hidden_dims = {8};
  cfg.num_epochs = 1;
  cfg.batch_size = 2048;  // > positives: one step per epoch
  cfg.mmd_batch = 4;
  StTransRec model(cfg);
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());
  EXPECT_EQ(model.StepsPerEpoch(), 1u);
  EXPECT_TRUE(std::isfinite(model.Score(0, 0)));
}

TEST(EdgeCaseTest, StTransRecWithQuadraticMmd) {
  const auto& f = SharedFixture();
  StTransRecConfig cfg;
  cfg.embedding_dim = 8;
  cfg.hidden_dims = {16};
  cfg.num_epochs = 1;
  cfg.batch_size = 64;
  cfg.mmd_batch = 8;
  cfg.use_linear_mmd = false;
  StTransRec model(cfg);
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());
  EXPECT_TRUE(std::isfinite(model.loss_history().back()));
}

TEST(EdgeCaseTest, StTransRecFixedBandwidth) {
  const auto& f = SharedFixture();
  StTransRecConfig cfg;
  cfg.embedding_dim = 8;
  cfg.hidden_dims = {16};
  cfg.num_epochs = 1;
  cfg.batch_size = 64;
  cfg.mmd_batch = 8;
  cfg.mmd_sigma = 0.7;  // paper-style fixed bandwidth
  StTransRec model(cfg);
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());
  EXPECT_TRUE(std::isfinite(model.loss_history().back()));
}

TEST(EdgeCaseTest, WorldGeneratorMinimalCities) {
  synth::SynthWorldConfig cfg;
  cfg.cities = {{"t", 20, 8, 1, 0.5, {}}, {"s", 20, 8, 1, 0.5, {}}};
  cfg.num_crossing_users = 3;
  cfg.landmark_words_per_city = 4;
  cfg.seed = 99;
  auto world = synth::GenerateWorld(cfg);
  EXPECT_EQ(world.dataset.num_cities(), 2u);
  const auto split = MakeCrossCitySplit(world.dataset, 0);
  EXPECT_EQ(split.test_users.size(), 3u);
}

TEST(EdgeCaseTest, SegmenterAllCheckinsOneCell) {
  GridIndex grid(BoundingBox{0, 1, 0, 1}, 4, 4);
  RegionSegmenter seg(grid, 0.1);
  for (int64_t u = 0; u < 20; ++u) seg.AddVisit(5, u);
  Rng rng(1);
  const auto regions = seg.Segment(rng);
  // 15 empty singletons + 1 populated cell.
  EXPECT_EQ(regions.num_regions(), 16u);
}

TEST(EdgeCaseTest, VariantConfigsComposable) {
  // Stacking all three variant switches is allowed and trains.
  const auto& f = SharedFixture();
  StTransRecConfig cfg;
  cfg.embedding_dim = 4;
  cfg.hidden_dims = {8};
  cfg.num_epochs = 1;
  cfg.batch_size = 32;
  StTransRec model(MakeVariant3(MakeVariant1(cfg)));
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());
  EXPECT_FALSE(model.config().use_mmd);
  EXPECT_EQ(model.config().resample_alpha, 0.0);
}

}  // namespace
}  // namespace sttr
