#include "eval/protocol.h"

#include <unordered_set>
#include <utility>

#include <gtest/gtest.h>

#include "data/synth/world_generator.h"
#include "util/rng.h"

namespace sttr {
namespace {

struct Fixture {
  synth::SynthWorld world;
  CrossCitySplit split;
};

Fixture MakeFixture() {
  auto cfg = synth::SynthWorldConfig::FoursquareLike(synth::Scale::kTiny);
  Fixture f{synth::GenerateWorld(cfg), {}};
  f.split = MakeCrossCitySplit(f.world.dataset, cfg.target_city);
  return f;
}

/// Scores ground truth items above everything else.
class OracleScorer : public PoiScorer {
 public:
  explicit OracleScorer(const CrossCitySplit& split) {
    for (const auto& tu : split.test_users) {
      for (PoiId v : tu.ground_truth) truth_.insert({tu.user, v});
    }
  }
  double Score(UserId user, PoiId poi) const override {
    return truth_.count({user, poi}) ? 1.0 : 0.0;
  }

 private:
  struct Hash {
    size_t operator()(const std::pair<UserId, PoiId>& p) const {
      return std::hash<int64_t>()(p.first * 1000003 + p.second);
    }
  };
  std::unordered_set<std::pair<UserId, PoiId>, Hash> truth_;
};

/// Deterministic pseudo-random scores independent of relevance.
class RandomScorer : public PoiScorer {
 public:
  double Score(UserId user, PoiId poi) const override {
    uint64_t x = static_cast<uint64_t>(user) * 2654435761u +
                 static_cast<uint64_t>(poi) * 40503u;
    x ^= x >> 13;
    x *= 0x2545F4914F6CDD1DULL;
    return static_cast<double>(x >> 11) * 0x1.0p-53;
  }
};

/// Scores worst-possible: ground truth at the bottom.
class AntiOracleScorer : public PoiScorer {
 public:
  explicit AntiOracleScorer(const CrossCitySplit& split)
      : oracle_(split) {}
  double Score(UserId user, PoiId poi) const override {
    return -oracle_.Score(user, poi);
  }

 private:
  OracleScorer oracle_;
};

TEST(ProtocolTest, OracleScoresPerfectly) {
  auto f = MakeFixture();
  EvalConfig cfg;
  const EvalResult r =
      EvaluateRanking(f.world.dataset, f.split, OracleScorer(f.split), cfg);
  EXPECT_EQ(r.num_users_evaluated, f.split.test_users.size());
  // Every ground-truth item ranks above all negatives.
  EXPECT_NEAR(r.At(10).ndcg, 1.0, 1e-9);
  EXPECT_NEAR(r.At(10).map, 1.0, 1e-9);
  EXPECT_GT(r.At(10).recall, 0.95);
}

TEST(ProtocolTest, AntiOracleScoresNearZeroAtSmallK) {
  auto f = MakeFixture();
  EvalConfig cfg;
  const EvalResult r = EvaluateRanking(f.world.dataset, f.split,
                                       AntiOracleScorer(f.split), cfg);
  EXPECT_LT(r.At(2).recall, 0.01);
  EXPECT_LT(r.At(2).ndcg, 0.01);
}

TEST(ProtocolTest, RandomScorerNearChance) {
  auto f = MakeFixture();
  EvalConfig cfg;
  const EvalResult r =
      EvaluateRanking(f.world.dataset, f.split, RandomScorer(), cfg);
  // With ~100 negatives + ~4 truths, Recall@10 for a random ranking is
  // roughly 10 / 104.
  EXPECT_NEAR(r.At(10).recall, 10.0 / 104.0, 0.08);
}

TEST(ProtocolTest, DeterministicForFixedSeed) {
  auto f = MakeFixture();
  EvalConfig cfg;
  const EvalResult a =
      EvaluateRanking(f.world.dataset, f.split, RandomScorer(), cfg);
  const EvalResult b =
      EvaluateRanking(f.world.dataset, f.split, RandomScorer(), cfg);
  for (size_t k : cfg.ks) {
    EXPECT_DOUBLE_EQ(a.At(k).recall, b.At(k).recall);
    EXPECT_DOUBLE_EQ(a.At(k).ndcg, b.At(k).ndcg);
  }
}

TEST(ProtocolTest, SeedChangesNegativeSamples) {
  auto f = MakeFixture();
  // Use few negatives: the tiny world's target city is small enough that
  // 100 negatives would deterministically exhaust the candidate pool.
  EvalConfig a_cfg;
  a_cfg.num_negatives = 15;
  EvalConfig b_cfg;
  b_cfg.num_negatives = 15;
  b_cfg.seed = a_cfg.seed + 1;
  const EvalResult a =
      EvaluateRanking(f.world.dataset, f.split, RandomScorer(), a_cfg);
  const EvalResult b =
      EvaluateRanking(f.world.dataset, f.split, RandomScorer(), b_cfg);
  bool any_diff = false;
  for (size_t k : a_cfg.ks) {
    any_diff |= a.At(k).recall != b.At(k).recall;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ProtocolTest, FewerNegativesRaisesScores) {
  auto f = MakeFixture();
  EvalConfig many;
  many.num_negatives = 100;
  EvalConfig few;
  few.num_negatives = 10;
  const EvalResult a =
      EvaluateRanking(f.world.dataset, f.split, RandomScorer(), many);
  const EvalResult b =
      EvaluateRanking(f.world.dataset, f.split, RandomScorer(), few);
  EXPECT_GT(b.At(10).recall, a.At(10).recall);
}

TEST(ProtocolTest, ParallelEvalBitIdenticalToSerial) {
  auto f = MakeFixture();
  EvalConfig serial;
  serial.num_threads = 1;
  EvalConfig sharded;
  sharded.num_threads = 4;
  const EvalResult a =
      EvaluateRanking(f.world.dataset, f.split, RandomScorer(), serial);
  const EvalResult b =
      EvaluateRanking(f.world.dataset, f.split, RandomScorer(), sharded);
  EXPECT_EQ(a.num_users_evaluated, b.num_users_evaluated);
  for (size_t k : serial.ks) {
    // Bit-identical, not just close: sampling stays serial and the metric
    // reduction runs in test-user order regardless of thread count.
    EXPECT_EQ(a.At(k).recall, b.At(k).recall);
    EXPECT_EQ(a.At(k).precision, b.At(k).precision);
    EXPECT_EQ(a.At(k).ndcg, b.At(k).ndcg);
    EXPECT_EQ(a.At(k).map, b.At(k).map);
  }
}

TEST(ProtocolTest, DefaultThreadCountMatchesSerial) {
  auto f = MakeFixture();
  EvalConfig serial;
  serial.num_threads = 1;
  EvalConfig defaulted;  // num_threads = 0 -> DefaultNumThreads()
  const EvalResult a =
      EvaluateRanking(f.world.dataset, f.split, RandomScorer(), serial);
  const EvalResult b =
      EvaluateRanking(f.world.dataset, f.split, RandomScorer(), defaulted);
  for (size_t k : serial.ks) {
    EXPECT_EQ(a.At(k).recall, b.At(k).recall);
    EXPECT_EQ(a.At(k).ndcg, b.At(k).ndcg);
  }
}

TEST(ProtocolTest, DefaultScoreBatchMatchesScoreLoop) {
  RandomScorer scorer;
  std::vector<PoiId> pois = {4, 1, 9, 1, 0, 32};
  const std::vector<double> batch = scorer.ScoreBatch(7, pois);
  ASSERT_EQ(batch.size(), pois.size());
  for (size_t i = 0; i < pois.size(); ++i) {
    EXPECT_EQ(batch[i], scorer.Score(7, pois[i])) << "index " << i;
  }
}

TEST(ProtocolTest, CustomKs) {
  auto f = MakeFixture();
  EvalConfig cfg;
  cfg.ks = {1, 3};
  const EvalResult r =
      EvaluateRanking(f.world.dataset, f.split, OracleScorer(f.split), cfg);
  EXPECT_EQ(r.at_k.size(), 2u);
  EXPECT_NO_FATAL_FAILURE(r.At(1));
  EXPECT_DEATH(r.At(10), "no metrics");
}

}  // namespace
}  // namespace sttr
