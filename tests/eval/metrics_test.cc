#include "eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sttr {
namespace {

// Ranked relevance: hit at positions 1 and 4 (0-based), 3 relevant total.
const std::vector<bool> kRel = {false, true, false, false, true, false};

TEST(RecallTest, HandComputed) {
  EXPECT_DOUBLE_EQ(RecallAtK(kRel, 3, 1), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK(kRel, 3, 2), 1.0 / 3);
  EXPECT_DOUBLE_EQ(RecallAtK(kRel, 3, 5), 2.0 / 3);
  EXPECT_DOUBLE_EQ(RecallAtK(kRel, 3, 100), 2.0 / 3);
}

TEST(RecallTest, ZeroRelevantGivesZero) {
  EXPECT_DOUBLE_EQ(RecallAtK(kRel, 0, 5), 0.0);
}

TEST(RecallTest, MonotoneNonDecreasingInK) {
  double prev = 0;
  for (size_t k = 1; k <= kRel.size(); ++k) {
    const double r = RecallAtK(kRel, 3, k);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(PrecisionTest, HandComputed) {
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRel, 1), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRel, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRel, 5), 0.4);
}

TEST(PrecisionTest, KLargerThanListCountsMisses) {
  // Positions beyond the list contribute nothing but divide by k.
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRel, 12), 2.0 / 12);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  const std::vector<bool> perfect = {true, true, false, false};
  EXPECT_DOUBLE_EQ(NdcgAtK(perfect, 2, 4), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtK(perfect, 2, 2), 1.0);
}

TEST(NdcgTest, HandComputed) {
  // Hit at rank 2 (0-based 1): DCG = 1/log2(3). One relevant: IDCG = 1.
  const std::vector<bool> rel = {false, true};
  EXPECT_NEAR(NdcgAtK(rel, 1, 2), 1.0 / std::log2(3.0), 1e-12);
}

TEST(NdcgTest, WorseRankGivesLowerScore) {
  const std::vector<bool> early = {true, false, false};
  const std::vector<bool> late = {false, false, true};
  EXPECT_GT(NdcgAtK(early, 1, 3), NdcgAtK(late, 1, 3));
}

TEST(NdcgTest, ZeroRelevantGivesZero) {
  EXPECT_DOUBLE_EQ(NdcgAtK(kRel, 0, 5), 0.0);
}

TEST(ApTest, HandComputed) {
  // kRel hits at ranks 2 and 5 (1-based): precisions 1/2 and 2/5.
  // AP@6 = (0.5 + 0.4) / min(3, 6) = 0.3.
  EXPECT_NEAR(ApAtK(kRel, 3, 6), 0.3, 1e-12);
  // AP@2 = 0.5 / min(3, 2) = 0.25.
  EXPECT_NEAR(ApAtK(kRel, 3, 2), 0.25, 1e-12);
}

TEST(ApTest, PerfectRankingIsOne) {
  const std::vector<bool> perfect = {true, true, true};
  EXPECT_DOUBLE_EQ(ApAtK(perfect, 3, 3), 1.0);
}

TEST(MetricsAtKTest, BundlesAllFour) {
  const RankingMetrics m = MetricsAtK(kRel, 3, 5);
  EXPECT_DOUBLE_EQ(m.recall, RecallAtK(kRel, 3, 5));
  EXPECT_DOUBLE_EQ(m.precision, PrecisionAtK(kRel, 5));
  EXPECT_DOUBLE_EQ(m.ndcg, NdcgAtK(kRel, 3, 5));
  EXPECT_DOUBLE_EQ(m.map, ApAtK(kRel, 3, 5));
}

TEST(RankingMetricsTest, Arithmetic) {
  RankingMetrics a{0.2, 0.4, 0.6, 0.8};
  RankingMetrics b{0.2, 0.2, 0.2, 0.2};
  a += b;
  EXPECT_DOUBLE_EQ(a.recall, 0.4);
  const RankingMetrics c = a / 2.0;
  EXPECT_DOUBLE_EQ(c.precision, 0.3);
  EXPECT_DOUBLE_EQ(c.map, 0.5);
}

TEST(MrrTest, FirstHitRankDecides) {
  // kRel has its first hit at rank 2 (1-based).
  EXPECT_DOUBLE_EQ(MrrAtK(kRel, 10), 0.5);
  EXPECT_DOUBLE_EQ(MrrAtK(kRel, 1), 0.0);  // truncated before the hit
  const std::vector<bool> top = {true, false};
  EXPECT_DOUBLE_EQ(MrrAtK(top, 5), 1.0);
  EXPECT_DOUBLE_EQ(MrrAtK({}, 5), 0.0);
}

TEST(HitRateTest, AnyHitCounts) {
  EXPECT_DOUBLE_EQ(HitRateAtK(kRel, 1), 0.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(kRel, 2), 1.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(kRel, 10), 1.0);
  EXPECT_DOUBLE_EQ(HitRateAtK({}, 3), 0.0);
}

TEST(MrrHitRateTest, MrrBoundedByHitRate) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<bool> rel(15);
    for (size_t i = 0; i < rel.size(); ++i) rel[i] = rng.Bernoulli(0.2);
    for (size_t k : {1u, 5u, 10u}) {
      EXPECT_LE(MrrAtK(rel, k), HitRateAtK(rel, k));
      EXPECT_GE(MrrAtK(rel, k), 0.0);
    }
  }
}

TEST(MetricsEdgeTest, EmptyRelevanceList) {
  const std::vector<bool> empty;
  EXPECT_DOUBLE_EQ(RecallAtK(empty, 2, 5), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(empty, 5), 0.0);
  EXPECT_DOUBLE_EQ(NdcgAtK(empty, 2, 5), 0.0);
  EXPECT_DOUBLE_EQ(ApAtK(empty, 2, 5), 0.0);
}

class KSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(KSweep, AllMetricsInUnitInterval) {
  const size_t k = GetParam();
  Rng rng(k);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<bool> rel(20);
    size_t num_rel = 0;
    for (size_t i = 0; i < rel.size(); ++i) {
      rel[i] = rng.Bernoulli(0.3);
      num_rel += rel[i];
    }
    // num_relevant >= hits in the list (some relevant may be outside).
    num_rel += rng.UniformInt(3);
    const RankingMetrics m = MetricsAtK(rel, num_rel, k);
    for (double v : {m.recall, m.precision, m.ndcg, m.map}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KSweep, ::testing::Values(1, 2, 4, 6, 8, 10, 25));

}  // namespace
}  // namespace sttr
