#include "transfer/mmd.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sttr {
namespace {

Tensor SampleGaussian(size_t n, size_t d, double mean, Rng& rng) {
  Tensor t({n, d});
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.Normal(mean, 1.0));
  }
  return t;
}

TEST(GaussianKernelTest, OneAtZeroDistance) {
  const float x[] = {1.0f, 2.0f};
  EXPECT_DOUBLE_EQ(GaussianKernel(x, x, 2, 1.0), 1.0);
}

TEST(GaussianKernelTest, DecaysWithDistance) {
  const float x[] = {0.0f};
  const float y[] = {1.0f};
  const float z[] = {2.0f};
  const double kxy = GaussianKernel(x, y, 1, 1.0);
  const double kxz = GaussianKernel(x, z, 1, 1.0);
  EXPECT_NEAR(kxy, std::exp(-0.5), 1e-12);
  EXPECT_LT(kxz, kxy);
}

TEST(GaussianKernelTest, BandwidthControlsDecay) {
  const float x[] = {0.0f};
  const float y[] = {1.0f};
  EXPECT_GT(GaussianKernel(x, y, 1, 10.0), GaussianKernel(x, y, 1, 0.5));
}

TEST(MmdTest, IdenticalSamplesGiveZeroBiased) {
  Rng rng(1);
  Tensor x = SampleGaussian(20, 3, 0.0, rng);
  EXPECT_NEAR(MmdBiased(x, x, 1.0), 0.0, 1e-6);
}

TEST(MmdTest, SameDistributionSmallUnbiased) {
  Rng rng(2);
  Tensor a = SampleGaussian(100, 4, 0.0, rng);
  Tensor b = SampleGaussian(100, 4, 0.0, rng);
  // The U-statistic is centred: should be near 0 (can be negative).
  EXPECT_LT(std::fabs(MmdUnbiased(a, b, 1.0)), 0.05);
}

TEST(MmdTest, GrowsWithMeanShift) {
  Rng rng(3);
  Tensor a = SampleGaussian(80, 4, 0.0, rng);
  Tensor close = SampleGaussian(80, 4, 0.5, rng);
  Tensor far = SampleGaussian(80, 4, 3.0, rng);
  const double d_same = MmdBiased(a, SampleGaussian(80, 4, 0.0, rng), 1.0);
  const double d_close = MmdBiased(a, close, 1.0);
  const double d_far = MmdBiased(a, far, 1.0);
  EXPECT_LT(d_same, d_close);
  EXPECT_LT(d_close, d_far);
}

TEST(MmdTest, BiasedIsNonNegative) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    Tensor a = SampleGaussian(30, 2, 0.0, rng);
    Tensor b = SampleGaussian(25, 2, 0.3, rng);
    EXPECT_GE(MmdBiased(a, b, 0.7), 0.0);
  }
}

TEST(MmdTest, LinearEstimatorTracksQuadratic) {
  Rng rng(5);
  Tensor a = SampleGaussian(600, 3, 0.0, rng);
  Tensor b = SampleGaussian(600, 3, 2.0, rng);
  const double quad = MmdUnbiased(a, b, 1.0);
  const double lin = MmdLinear(a, b, 1.0);
  EXPECT_NEAR(lin, quad, 0.15 * std::max(1.0, quad));
}

TEST(MmdTest, LinearFallsBackOnTinySamples) {
  Rng rng(6);
  Tensor a = SampleGaussian(1, 2, 0.0, rng);
  Tensor b = SampleGaussian(1, 2, 1.0, rng);
  // m = 0 quadruples: falls back to the biased estimate, finite value.
  const double v = MmdLinear(a, b, 1.0);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 0.0);
}

TEST(MmdTest, MedianHeuristicReasonable) {
  Rng rng(7);
  Tensor a = SampleGaussian(50, 4, 0.0, rng);
  Tensor b = SampleGaussian(50, 4, 0.0, rng);
  const double sigma = MedianHeuristicSigma(a, b, 500, rng);
  // For unit Gaussians in 4-d the typical pair distance is ~ sqrt(2*4).
  EXPECT_GT(sigma, 1.0);
  EXPECT_LT(sigma, 6.0);
}

TEST(MmdTest, MedianHeuristicDegenerateInputGivesOne) {
  Tensor a({3, 2});  // all zeros: no positive distances
  Tensor b({3, 2});
  Rng rng(8);
  EXPECT_DOUBLE_EQ(MedianHeuristicSigma(a, b, 100, rng), 1.0);
}

// ---- Differentiable MMD ops -------------------------------------------------

void CheckMmdGradient(bool linear) {
  Rng rng(9);
  ag::Variable xs(SampleGaussian(8, 3, 0.0, rng), true);
  ag::Variable xt(SampleGaussian(8, 3, 1.0, rng), true);
  const std::vector<double> sigmas = {1.3};
  auto loss_fn = [&] {
    return linear ? ag_ops::MmdLossLinear(xs, xt, sigmas)
                  : ag_ops::MmdLoss(xs, xt, sigmas);
  };
  ag::Variable loss = loss_fn();
  ag::Backward(loss);
  const Tensor gs = xs.grad();
  const Tensor gt = xt.grad();

  const float eps = 1e-3f;
  auto numeric = [&](ag::Variable& v, size_t i) {
    const float orig = v.value()[i];
    v.mutable_value()[i] = orig + eps;
    const double up = loss_fn().value()[0];
    v.mutable_value()[i] = orig - eps;
    const double down = loss_fn().value()[0];
    v.mutable_value()[i] = orig;
    return (up - down) / (2.0 * eps);
  };
  for (size_t i = 0; i < xs.value().size(); i += 5) {
    EXPECT_NEAR(gs[i], numeric(xs, i), 2e-2) << "xs[" << i << "]";
  }
  for (size_t i = 0; i < xt.value().size(); i += 5) {
    EXPECT_NEAR(gt[i], numeric(xt, i), 2e-2) << "xt[" << i << "]";
  }
}

TEST(MmdLossTest, QuadraticGradientMatchesFiniteDifference) {
  CheckMmdGradient(/*linear=*/false);
}

TEST(MmdLossTest, LinearGradientMatchesFiniteDifference) {
  CheckMmdGradient(/*linear=*/true);
}

TEST(MmdLossTest, ForwardMatchesEstimator) {
  Rng rng(10);
  ag::Variable xs(SampleGaussian(10, 2, 0.0, rng), false);
  ag::Variable xt(SampleGaussian(12, 2, 1.0, rng), false);
  const double direct = MmdBiased(xs.value(), xt.value(), 0.8);
  ag::Variable loss = ag_ops::MmdLoss(xs, xt, {0.8});
  EXPECT_NEAR(loss.value()[0], direct, 1e-5);
}

TEST(MmdLossTest, MultiKernelSumsBandwidths) {
  Rng rng(11);
  ag::Variable xs(SampleGaussian(10, 2, 0.0, rng), false);
  ag::Variable xt(SampleGaussian(10, 2, 1.0, rng), false);
  const double expect = MmdBiased(xs.value(), xt.value(), 0.5) +
                        MmdBiased(xs.value(), xt.value(), 2.0);
  ag::Variable loss = ag_ops::MmdLoss(xs, xt, {0.5, 2.0});
  EXPECT_NEAR(loss.value()[0], expect, 1e-5);
}

TEST(MmdLossTest, MinimisingAlignsDistributions) {
  // Gradient descent on the source sample should drag it towards the
  // target distribution — the transfer mechanism of ST-TransRec in vitro.
  Rng rng(12);
  ag::Variable xs(SampleGaussian(32, 2, 3.0, rng), true);
  Tensor xt_data = SampleGaussian(32, 2, 0.0, rng);
  const double before =
      MmdBiased(xs.value(), xt_data, 2.0);
  for (int step = 0; step < 200; ++step) {
    ag::Variable xt(xt_data, false);
    ag::Variable loss = ag_ops::MmdLoss(xs, xt, {2.0});
    xs.ZeroGrad();
    ag::Backward(loss);
    xs.mutable_value().Axpy(-5.0f, xs.grad());
  }
  const double after = MmdBiased(xs.value(), xt_data, 2.0);
  EXPECT_LT(after, 0.3 * before);
}

class MmdSizeSweep
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(MmdSizeSweep, UnequalSampleSizesSupported) {
  const auto [ns, nt] = GetParam();
  Rng rng(13);
  Tensor a = SampleGaussian(ns, 3, 0.0, rng);
  Tensor b = SampleGaussian(nt, 3, 0.5, rng);
  EXPECT_TRUE(std::isfinite(MmdBiased(a, b, 1.0)));
  EXPECT_TRUE(std::isfinite(MmdLinear(a, b, 1.0)));
  if (ns > 1 && nt > 1) {
    EXPECT_TRUE(std::isfinite(MmdUnbiased(a, b, 1.0)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MmdSizeSweep,
    ::testing::Values(std::pair<size_t, size_t>{2, 2},
                      std::pair<size_t, size_t>{5, 17},
                      std::pair<size_t, size_t>{64, 64},
                      std::pair<size_t, size_t>{1, 9}));

}  // namespace
}  // namespace sttr
