// Stress tests for the autodiff engine: long chains (the iterative DFS must
// not blow the stack), wide fan-in graphs, and repeated reuse of parameters.

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace sttr::ag {
namespace {

TEST(AutogradStressTest, VeryDeepChainBackpropagates) {
  // 2000 chained Scale ops: gradient is 0.999^2000 of the seed, and the
  // iterative topological sort must handle the depth without recursion.
  Variable x(Tensor::Scalar(1.0f), true);
  Variable y = x;
  const int depth = 2000;
  for (int i = 0; i < depth; ++i) y = Scale(y, 0.999f);
  Backward(Sum(y));
  EXPECT_NEAR(x.grad()[0], std::pow(0.999, depth), 1e-4);
}

TEST(AutogradStressTest, WideFanInAccumulates) {
  // x used by 512 independent consumers summed together: dL/dx = 512.
  Variable x(Tensor::Scalar(2.0f), true);
  Variable total = Scale(x, 1.0f);
  for (int i = 1; i < 512; ++i) total = Add(total, Scale(x, 1.0f));
  Backward(total);
  EXPECT_FLOAT_EQ(x.grad()[0], 512.0f);
}

TEST(AutogradStressTest, DiamondGraphCountsBothPaths) {
  // y = x*x + x*x through two distinct interior nodes: dL/dx = 4x.
  Variable x(Tensor::Scalar(3.0f), true);
  Variable a = Mul(x, x);
  Variable b = Mul(x, x);
  Backward(Sum(Add(a, b)));
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);
}

TEST(AutogradStressTest, DeepMlpTrainsWithoutNumericalBlowup) {
  Rng rng(1);
  nn::Mlp mlp(8, std::vector<size_t>(12, 16), 0.0f, rng);  // 12 hidden layers
  nn::Adam opt(mlp.Parameters(), 1e-3f);
  Rng drop(2);
  double last = 0;
  for (int step = 0; step < 50; ++step) {
    Tensor x = Tensor::RandomNormal({16, 8}, rng);
    Tensor labels({16});
    for (size_t i = 0; i < 16; ++i) {
      labels[i] = x.at(i, 0) > 0 ? 1.0f : 0.0f;
    }
    Variable logits = mlp.Forward(Constant(std::move(x)), true, drop);
    Variable loss = BceWithLogits(logits, labels);
    last = loss.value()[0];
    ASSERT_TRUE(std::isfinite(last)) << "step " << step;
    Backward(loss);
    opt.Step();
  }
  EXPECT_TRUE(std::isfinite(last));
}

TEST(AutogradStressTest, ManyBackwardsOnFreshGraphsDoNotLeakGrads) {
  // Parameters persist across step graphs; after ZeroGrad the slate is
  // clean each time (no stale accumulation).
  Rng rng(3);
  nn::Embedding emb(32, 4, rng);
  for (int step = 0; step < 100; ++step) {
    emb.ZeroGrad();
    Backward(Sum(emb.Forward({1, 2, 3})));
    // Gradient of a sum through gather is exactly 1 per touched slot.
    EXPECT_FLOAT_EQ(emb.Parameters()[0].grad().at(1, 0), 1.0f);
    EXPECT_FLOAT_EQ(emb.Parameters()[0].grad().at(4, 0), 0.0f);
  }
}

TEST(AutogradStressTest, LargeGatherScatterRoundTrip) {
  Rng rng(4);
  Variable table(Tensor::RandomNormal({1000, 16}, rng), true);
  std::vector<int64_t> idx;
  for (int i = 0; i < 5000; ++i) {
    idx.push_back(static_cast<int64_t>(rng.UniformInt(1000)));
  }
  Backward(Sum(GatherRows(table, idx)));
  // Total gradient mass equals the number of gathered rows x width.
  EXPECT_NEAR(table.grad().Sum(), 5000.0 * 16.0, 1.0);
  EXPECT_EQ(table.touched_rows().size(), 5000u);
}

}  // namespace
}  // namespace sttr::ag
