#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"

namespace sttr::ag {
namespace {

/// Checks d(loss)/d(leaf) against central finite differences. `loss_fn`
/// must rebuild the graph from the leaf's current value on every call.
void CheckGradient(Variable& leaf,
                   const std::function<Variable()>& loss_fn,
                   double tol = 2e-2) {
  Variable loss = loss_fn();
  ASSERT_EQ(loss.value().size(), 1u);
  leaf.ZeroGrad();
  Backward(loss);
  const Tensor analytic = leaf.grad();

  const float eps = 1e-3f;
  for (size_t i = 0; i < leaf.value().size(); ++i) {
    const float orig = leaf.value()[i];
    leaf.mutable_value()[i] = orig + eps;
    const double up = loss_fn().value()[0];
    leaf.mutable_value()[i] = orig - eps;
    const double down = loss_fn().value()[0];
    leaf.mutable_value()[i] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric, tol * std::max(1.0, std::fabs(numeric)))
        << "component " << i;
  }
}

TEST(BackwardTest, RequiresScalarRoot) {
  Variable x(Tensor({2}, std::vector<float>{1, 2}), true);
  EXPECT_DEATH(Backward(x), "scalar");
}

TEST(BackwardTest, LeafGradientOfSum) {
  Variable x(Tensor({3}, std::vector<float>{1, 2, 3}), true);
  Variable loss = Sum(x);
  Backward(loss);
  for (size_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(x.grad()[i], 1.0f);
}

TEST(BackwardTest, MeanDividesByCount) {
  Variable x(Tensor({4}, std::vector<float>{1, 2, 3, 4}), true);
  Backward(Mean(x));
  for (size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.grad()[i], 0.25f);
}

TEST(BackwardTest, GradAccumulatesAcrossBackwards) {
  Variable x(Tensor({2}, std::vector<float>{1, 1}), true);
  Backward(Sum(x));
  Backward(Sum(x));
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(BackwardTest, ReusedVariableGetsBothPaths) {
  Variable x(Tensor({1}, std::vector<float>{3}), true);
  // loss = x + x -> dloss/dx = 2.
  Backward(Add(x, x));
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(BackwardTest, ConstantsReceiveNoGradient) {
  Variable x(Tensor({2}, std::vector<float>{1, 2}), true);
  Variable c = Constant(Tensor({2}, std::vector<float>{5, 5}));
  Backward(Sum(Mul(x, c)));
  EXPECT_FLOAT_EQ(x.grad()[0], 5.0f);
  EXPECT_FALSE(c.requires_grad());
}

TEST(GradCheckTest, MatMul) {
  Rng rng(1);
  Variable a(Tensor::RandomNormal({3, 4}, rng), true);
  Variable b(Tensor::RandomNormal({4, 2}, rng), true);
  CheckGradient(a, [&] { return Sum(MatMul(a, b)); });
  CheckGradient(b, [&] { return Sum(MatMul(a, b)); });
}

TEST(GradCheckTest, AddSubMul) {
  Rng rng(2);
  Variable a(Tensor::RandomNormal({2, 3}, rng), true);
  Variable b(Tensor::RandomNormal({2, 3}, rng), true);
  CheckGradient(a, [&] { return Sum(Add(a, b)); });
  CheckGradient(a, [&] { return Sum(Sub(a, b)); });
  CheckGradient(b, [&] { return Sum(Sub(a, b)); });
  CheckGradient(a, [&] { return Sum(Mul(a, b)); });
}

TEST(GradCheckTest, ScaleAndBias) {
  Rng rng(3);
  Variable x(Tensor::RandomNormal({3, 2}, rng), true);
  Variable bias(Tensor::RandomNormal({2}, rng), true);
  CheckGradient(x, [&] { return Sum(Scale(x, -1.7f)); });
  CheckGradient(bias, [&] { return Sum(AddRowBroadcast(x, bias)); });
  CheckGradient(x, [&] { return Sum(AddRowBroadcast(x, bias)); });
}

TEST(GradCheckTest, Activations) {
  Rng rng(4);
  Variable x(Tensor::RandomNormal({4, 3}, rng), true);
  // Shift away from the ReLU kink to keep finite differences clean.
  for (size_t i = 0; i < x.value().size(); ++i) {
    if (std::fabs(x.value()[i]) < 0.05f) x.mutable_value()[i] = 0.1f;
  }
  CheckGradient(x, [&] { return Sum(Relu(x)); });
  CheckGradient(x, [&] { return Sum(SigmoidOp(x)); });
  CheckGradient(x, [&] { return Sum(TanhOp(x)); });
}

TEST(GradCheckTest, ConcatCols) {
  Rng rng(5);
  Variable a(Tensor::RandomNormal({2, 3}, rng), true);
  Variable b(Tensor::RandomNormal({2, 2}, rng), true);
  CheckGradient(a, [&] { return Sum(ConcatCols(a, b)); });
  CheckGradient(b, [&] { return Sum(ConcatCols(a, b)); });
}

TEST(GradCheckTest, RowwiseDot) {
  Rng rng(6);
  Variable a(Tensor::RandomNormal({3, 4}, rng), true);
  Variable b(Tensor::RandomNormal({3, 4}, rng), true);
  CheckGradient(a, [&] { return Sum(RowwiseDot(a, b)); });
  CheckGradient(b, [&] { return Sum(RowwiseDot(a, b)); });
}

TEST(GradCheckTest, GatherRows) {
  Rng rng(7);
  Variable table(Tensor::RandomNormal({5, 3}, rng), true);
  std::vector<int64_t> idx = {4, 1, 1, 0};
  CheckGradient(table, [&] { return Sum(GatherRows(table, idx)); });
}

TEST(GradCheckTest, BceWithLogits) {
  Rng rng(8);
  Variable logits(Tensor::RandomNormal({6}, rng), true);
  Tensor labels({6}, std::vector<float>{1, 0, 1, 1, 0, 0});
  CheckGradient(logits, [&] { return BceWithLogits(logits, labels); });
}

TEST(GradCheckTest, TwoLayerComposition) {
  Rng rng(9);
  Variable w1(Tensor::RandomNormal({4, 8}, rng), true);
  Variable w2(Tensor::RandomNormal({8, 1}, rng), true);
  Variable x = Constant(Tensor::RandomNormal({5, 4}, rng));
  auto loss = [&] {
    return Mean(SigmoidOp(MatMul(Relu(MatMul(x, w1)), w2)));
  };
  CheckGradient(w1, loss, 5e-2);
  CheckGradient(w2, loss, 5e-2);
}

TEST(GatherRowsTest, RecordsTouchedRows) {
  Rng rng(10);
  Variable table(Tensor::RandomNormal({6, 2}, rng), true);
  Backward(Sum(GatherRows(table, {3, 5, 3})));
  const auto& touched = table.touched_rows();
  EXPECT_EQ(touched.size(), 3u);
  // Non-touched rows carry zero gradient.
  EXPECT_FLOAT_EQ(table.grad().at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(table.grad().at(3, 0), 2.0f);  // gathered twice
  EXPECT_FLOAT_EQ(table.grad().at(5, 0), 1.0f);
  table.ZeroGrad();
  EXPECT_TRUE(table.touched_rows().empty());
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(11);
  Variable x(Tensor::RandomNormal({10, 10}, rng), true);
  Variable y = Dropout(x, 0.5f, /*training=*/false, rng);
  EXPECT_TRUE(y.value().AllClose(x.value(), 0, 0));
}

TEST(DropoutTest, ZeroRateIsIdentity) {
  Rng rng(12);
  Variable x(Tensor::RandomNormal({4, 4}, rng), true);
  Variable y = Dropout(x, 0.0f, /*training=*/true, rng);
  EXPECT_TRUE(y.value().AllClose(x.value(), 0, 0));
}

TEST(DropoutTest, PreservesExpectationAndZeroes) {
  Rng rng(13);
  Variable x(Tensor::Ones({100, 100}), true);
  Variable y = Dropout(x, 0.3f, /*training=*/true, rng);
  size_t zeros = 0;
  for (size_t i = 0; i < y.value().size(); ++i) {
    if (y.value()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.value()[i], 1.0f / 0.7f, 1e-5);
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.02);
  // Inverted dropout keeps the mean roughly constant.
  EXPECT_NEAR(y.value().Mean(), 1.0, 0.05);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Rng rng(14);
  Variable x(Tensor::Ones({50, 1}), true);
  Variable y = Dropout(x, 0.5f, /*training=*/true, rng);
  Backward(Sum(y));
  for (size_t i = 0; i < x.value().size(); ++i) {
    EXPECT_FLOAT_EQ(x.grad()[i], y.value()[i]);  // grad == mask value
  }
}

TEST(VariableTest, UndefinedHandling) {
  Variable v;
  EXPECT_FALSE(v.defined());
  Variable w(Tensor::Scalar(1.0f));
  EXPECT_TRUE(w.defined());
  EXPECT_FALSE(w.requires_grad());
}

TEST(VariableTest, NameIsStored) {
  Variable v(Tensor::Scalar(1.0f));
  v.set_name("loss");
  EXPECT_EQ(v.name(), "loss");
}

}  // namespace
}  // namespace sttr::ag
