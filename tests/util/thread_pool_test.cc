#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace sttr {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(101);
  pool.ParallelFor(101, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(3, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, SequentialBatchesReuseWorkers) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(100, [&sum](size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 5 * 4950);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace sttr
