#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace sttr {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(101);
  pool.ParallelFor(101, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(3, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, SequentialBatchesReuseWorkers) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(100, [&sum](size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 5 * 4950);
}

TEST(ParallelForChunkedTest, CoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelForChunked(257, 16, [&hits](size_t begin, size_t end) {
    ASSERT_LT(begin, end);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForChunkedTest, SmallRangeRunsAsSingleChunk) {
  ThreadPool pool(4);
  std::atomic<int> chunks{0};
  std::atomic<size_t> covered{0};
  pool.ParallelForChunked(5, 100, [&](size_t begin, size_t end) {
    chunks.fetch_add(1);
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(chunks.load(), 1);
  EXPECT_EQ(covered.load(), 5u);
}

TEST(ParallelForChunkedTest, ZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelForChunked(0, 8, [](size_t, size_t) {
    FAIL() << "must not run";
  });
}

TEST(ParallelForChunkedTest, NestedCallFromWorkerRunsInline) {
  // A parallel region launched from inside a worker must degrade to an
  // inline serial run instead of re-entering the pool (which would
  // deadlock the outer Wait()).
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.ParallelFor(4, [&](size_t) {
    EXPECT_TRUE(ThreadPool::InWorker());
    pool.ParallelForChunked(10, 2, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        sum.fetch_add(static_cast<long>(i));
      }
    });
  });
  EXPECT_EQ(sum.load(), 4 * 45);
}

TEST(ThreadPoolTest, InWorkerFalseOnCallerThread) {
  EXPECT_FALSE(ThreadPool::InWorker());
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  pool.Submit([&inside] {
    if (ThreadPool::InWorker()) inside.fetch_add(1);
  });
  pool.Wait();
  EXPECT_EQ(inside.load(), 1);
  EXPECT_FALSE(ThreadPool::InWorker());
}

TEST(ThreadPoolTest, DefaultNumThreadsRespectsEnv) {
  setenv("STTR_NUM_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(DefaultNumThreads(), 3u);
  setenv("STTR_NUM_THREADS", "not-a-number", /*overwrite=*/1);
  EXPECT_GE(DefaultNumThreads(), 1u);
  unsetenv("STTR_NUM_THREADS");
  EXPECT_GE(DefaultNumThreads(), 1u);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace sttr
