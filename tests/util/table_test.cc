#include "util/table.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace sttr {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "v"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTableTest, CsvRendering) {
  TextTable t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n3,4\n");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTableTest, WriteCsvRoundTrip) {
  TextTable t({"x"});
  t.AddRow({"hello"});
  const std::string path = ::testing::TempDir() + "/table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
  std::getline(in, line);
  EXPECT_EQ(line, "hello");
  std::remove(path.c_str());
}

TEST(TextTableTest, WriteCsvBadPathFails) {
  TextTable t({"x"});
  EXPECT_FALSE(t.WriteCsv("/nonexistent-dir/zzz/file.csv").ok());
}

TEST(TextTableDeathTest, RowArityMismatchAborts) {
  TextTable t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "arity");
}

}  // namespace
}  // namespace sttr
