#include "util/flags.h"

#include <gtest/gtest.h>

namespace sttr {
namespace {

FlagParser ParseArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  FlagParser parser;
  EXPECT_TRUE(
      parser
          .Parse(static_cast<int>(argv.size()),
                 const_cast<char**>(argv.data()))
          .ok());
  return parser;
}

TEST(FlagParserTest, EqualsSyntax) {
  auto p = ParseArgs({"--name=value", "--n=3"});
  EXPECT_EQ(p.GetString("name"), "value");
  EXPECT_EQ(p.GetInt("n", 0), 3);
}

TEST(FlagParserTest, SpaceSyntax) {
  auto p = ParseArgs({"--alpha", "0.25"});
  EXPECT_DOUBLE_EQ(p.GetDouble("alpha", 0), 0.25);
}

TEST(FlagParserTest, BareFlagIsTrue) {
  auto p = ParseArgs({"--verbose"});
  EXPECT_TRUE(p.GetBool("verbose", false));
  EXPECT_TRUE(p.Has("verbose"));
  EXPECT_FALSE(p.Has("quiet"));
}

TEST(FlagParserTest, BoolSpellings) {
  auto p = ParseArgs({"--a=TRUE", "--b=on", "--c=0", "--d=no"});
  EXPECT_TRUE(p.GetBool("a", false));
  EXPECT_TRUE(p.GetBool("b", false));
  EXPECT_FALSE(p.GetBool("c", true));
  EXPECT_FALSE(p.GetBool("d", true));
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  auto p = ParseArgs({});
  EXPECT_EQ(p.GetString("missing", "def"), "def");
  EXPECT_EQ(p.GetInt("missing", -4), -4);
  EXPECT_DOUBLE_EQ(p.GetDouble("missing", 2.5), 2.5);
  EXPECT_TRUE(p.GetBool("missing", true));
}

TEST(FlagParserTest, PositionalArguments) {
  auto p = ParseArgs({"input.txt", "--k=2", "more"});
  EXPECT_EQ(p.positional(),
            (std::vector<std::string>{"input.txt", "more"}));
}

TEST(FlagParserTest, LastValueWins) {
  auto p = ParseArgs({"--k=1", "--k=2"});
  EXPECT_EQ(p.GetInt("k", 0), 2);
}

TEST(FlagParserTest, BareDoubleDashIsError) {
  FlagParser parser;
  const char* argv[] = {"prog", "--"};
  EXPECT_FALSE(parser.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagParserTest, UndefinedFlagsStillParse) {
  // Define() is opt-in for --help; parsing must not require it.
  FlagParser parser;
  parser.Define("known", "a described flag", "1");
  const char* argv[] = {"prog", "--unknown=7"};
  ASSERT_TRUE(parser.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_EQ(parser.GetInt("unknown", 0), 7);
}

TEST(FlagParserTest, HelpTextListsDefinedFlagsInOrder) {
  FlagParser parser;
  parser.Define("port", "TCP port to listen on", "8080");
  parser.Define("verbose", "chatty logging");
  const std::string help =
      parser.HelpText("mytool", "--port=N [flags]", "Does a thing.");

  EXPECT_NE(help.find("usage: mytool --port=N [flags]"), std::string::npos)
      << help;
  EXPECT_NE(help.find("Does a thing."), std::string::npos);
  const size_t port_pos = help.find("--port=8080");
  const size_t verbose_pos = help.find("--verbose");
  const size_t help_pos = help.find("--help");
  ASSERT_NE(port_pos, std::string::npos) << help;
  ASSERT_NE(verbose_pos, std::string::npos) << help;
  ASSERT_NE(help_pos, std::string::npos) << "implicit --help row missing";
  // Registration order, --help appended last.
  EXPECT_LT(port_pos, verbose_pos);
  EXPECT_LT(verbose_pos, help_pos);
  EXPECT_NE(help.find("TCP port to listen on"), std::string::npos);
  EXPECT_NE(help.find("print this help and exit"), std::string::npos);
}

TEST(FlagParserTest, HelpTextDefaultsUsageLine) {
  FlagParser parser;
  const std::string help = parser.HelpText("tool");
  EXPECT_NE(help.find("usage: tool [--flag=value ...]"), std::string::npos)
      << help;
}

TEST(FlagParserTest, HelpTextAlignsDescriptions) {
  FlagParser parser;
  parser.Define("a", "first");
  parser.Define("longer_flag_name", "second", "42");
  const std::string help = parser.HelpText("tool");
  // Every description starts in the same column.
  const size_t first = help.find("first");
  const size_t second = help.find("second");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  const size_t first_col = first - help.rfind('\n', first) - 1;
  const size_t second_col = second - help.rfind('\n', second) - 1;
  EXPECT_EQ(first_col, second_col) << help;
}

}  // namespace
}  // namespace sttr
