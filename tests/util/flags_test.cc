#include "util/flags.h"

#include <gtest/gtest.h>

namespace sttr {
namespace {

FlagParser ParseArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  FlagParser parser;
  EXPECT_TRUE(
      parser
          .Parse(static_cast<int>(argv.size()),
                 const_cast<char**>(argv.data()))
          .ok());
  return parser;
}

TEST(FlagParserTest, EqualsSyntax) {
  auto p = ParseArgs({"--name=value", "--n=3"});
  EXPECT_EQ(p.GetString("name"), "value");
  EXPECT_EQ(p.GetInt("n", 0), 3);
}

TEST(FlagParserTest, SpaceSyntax) {
  auto p = ParseArgs({"--alpha", "0.25"});
  EXPECT_DOUBLE_EQ(p.GetDouble("alpha", 0), 0.25);
}

TEST(FlagParserTest, BareFlagIsTrue) {
  auto p = ParseArgs({"--verbose"});
  EXPECT_TRUE(p.GetBool("verbose", false));
  EXPECT_TRUE(p.Has("verbose"));
  EXPECT_FALSE(p.Has("quiet"));
}

TEST(FlagParserTest, BoolSpellings) {
  auto p = ParseArgs({"--a=TRUE", "--b=on", "--c=0", "--d=no"});
  EXPECT_TRUE(p.GetBool("a", false));
  EXPECT_TRUE(p.GetBool("b", false));
  EXPECT_FALSE(p.GetBool("c", true));
  EXPECT_FALSE(p.GetBool("d", true));
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  auto p = ParseArgs({});
  EXPECT_EQ(p.GetString("missing", "def"), "def");
  EXPECT_EQ(p.GetInt("missing", -4), -4);
  EXPECT_DOUBLE_EQ(p.GetDouble("missing", 2.5), 2.5);
  EXPECT_TRUE(p.GetBool("missing", true));
}

TEST(FlagParserTest, PositionalArguments) {
  auto p = ParseArgs({"input.txt", "--k=2", "more"});
  EXPECT_EQ(p.positional(),
            (std::vector<std::string>{"input.txt", "more"}));
}

TEST(FlagParserTest, LastValueWins) {
  auto p = ParseArgs({"--k=1", "--k=2"});
  EXPECT_EQ(p.GetInt("k", 0), 2);
}

TEST(FlagParserTest, BareDoubleDashIsError) {
  FlagParser parser;
  const char* argv[] = {"prog", "--"};
  EXPECT_FALSE(parser.Parse(2, const_cast<char**>(argv)).ok());
}

}  // namespace
}  // namespace sttr
