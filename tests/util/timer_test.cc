#include "util/timer.h"

#include <thread>

#include <gtest/gtest.h>

namespace sttr {
namespace {

TEST(TimerTest, ElapsedIsNonNegativeAndMonotone) {
  Timer t;
  const double a = t.ElapsedSeconds();
  const double b = t.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(TimerTest, MeasuresSleepRoughly) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const double ms = t.ElapsedMillis();
  EXPECT_GE(ms, 25.0);
  EXPECT_LT(ms, 2000.0);  // generous: CI machines stall
}

TEST(TimerTest, RestartResets) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.Restart();
  EXPECT_LT(t.ElapsedMillis(), 15.0);
}

TEST(TimerTest, MillisMatchesSeconds) {
  Timer t;
  const double s = t.ElapsedSeconds();
  const double ms = t.ElapsedMillis();
  EXPECT_GE(ms, s * 1e3);
}

}  // namespace
}  // namespace sttr
