#include "util/svg_chart.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace sttr {
namespace {

size_t CountOccurrences(const std::string& hay, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(SvgChartTest, EmptyChartIsValidSvg) {
  SvgLineChart chart("empty", "x", "y");
  const std::string svg = chart.Render();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("empty"), std::string::npos);
  EXPECT_EQ(chart.num_series(), 0u);
}

TEST(SvgChartTest, OnePolylinePerSeries) {
  SvgLineChart chart("t", "x", "y");
  chart.AddSeries("a", {0, 1, 2}, {0.1, 0.2, 0.3});
  chart.AddSeries("b", {0, 1, 2}, {0.3, 0.2, 0.1});
  const std::string svg = chart.Render();
  EXPECT_EQ(CountOccurrences(svg, "<polyline"), 2u);
  // One marker per data point.
  EXPECT_EQ(CountOccurrences(svg, "<circle"), 6u);
  // Legend entries.
  EXPECT_NE(svg.find(">a</text>"), std::string::npos);
  EXPECT_NE(svg.find(">b</text>"), std::string::npos);
}

TEST(SvgChartTest, EscapesXmlInLabels) {
  SvgLineChart chart("a < b & c", "x<y>", "q\"r");
  chart.AddSeries("s<1>", {0, 1}, {0, 1});
  const std::string svg = chart.Render();
  EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
  EXPECT_NE(svg.find("x&lt;y&gt;"), std::string::npos);
  EXPECT_NE(svg.find("q&quot;r"), std::string::npos);
  EXPECT_NE(svg.find("s&lt;1&gt;"), std::string::npos);
  EXPECT_EQ(svg.find("a < b"), std::string::npos);
}

TEST(SvgChartTest, FlatSeriesDoesNotDivideByZero) {
  SvgLineChart chart("flat", "x", "y");
  chart.AddSeries("constant", {1, 2, 3}, {0.5, 0.5, 0.5});
  const std::string svg = chart.Render();
  EXPECT_EQ(svg.find("nan"), std::string::npos);
  EXPECT_EQ(svg.find("inf"), std::string::npos);
}

TEST(SvgChartTest, SinglePointSeries) {
  SvgLineChart chart("point", "x", "y");
  chart.AddSeries("p", {0.5}, {0.25});
  const std::string svg = chart.Render();
  EXPECT_EQ(CountOccurrences(svg, "<circle"), 1u);
  EXPECT_EQ(svg.find("nan"), std::string::npos);
}

TEST(SvgChartTest, FixedYRangeUsed) {
  SvgLineChart chart("fixed", "x", "y");
  chart.SetYRange(0.0, 1.0);
  chart.AddSeries("s", {0, 1}, {0.4, 0.6});
  const std::string svg = chart.Render();
  // With a [0,1] range the tick labels include 0 and 1.
  EXPECT_NE(svg.find(">0</text>"), std::string::npos);
  EXPECT_NE(svg.find(">1</text>"), std::string::npos);
}

TEST(SvgChartTest, SizeAppearsInDocument) {
  SvgLineChart chart("size", "x", "y");
  chart.SetSize(800, 500);
  const std::string svg = chart.Render();
  EXPECT_NE(svg.find("width=\"800\""), std::string::npos);
  EXPECT_NE(svg.find("height=\"500\""), std::string::npos);
}

TEST(SvgChartTest, WriteToRoundTrip) {
  SvgLineChart chart("file", "x", "y");
  chart.AddSeries("s", {0, 1}, {0, 1});
  const std::string path = ::testing::TempDir() + "/chart_test.svg";
  ASSERT_TRUE(chart.WriteTo(path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, chart.Render());
  std::remove(path.c_str());
}

TEST(SvgChartTest, WriteToBadPathFails) {
  SvgLineChart chart("bad", "x", "y");
  EXPECT_FALSE(chart.WriteTo("/nonexistent-zzz/chart.svg").ok());
}

TEST(SvgChartDeathTest, MismatchedSeriesAborts) {
  SvgLineChart chart("t", "x", "y");
  EXPECT_DEATH(chart.AddSeries("s", {0, 1}, {0}), "");
  EXPECT_DEATH(chart.AddSeries("s", {}, {}), "empty");
}

}  // namespace
}  // namespace sttr
