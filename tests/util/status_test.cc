#include "util/status.h"

#include <gtest/gtest.h>

namespace sttr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::OutOfRange("c"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::FailedPrecondition("d"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::Internal("e"), StatusCode::kInternal, "Internal"},
      {Status::IOError("f"), StatusCode::kIOError, "IOError"},
      {Status::Unimplemented("g"), StatusCode::kUnimplemented,
       "Unimplemented"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeToString(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
  EXPECT_EQ(s.message(), "missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  ASSERT_TRUE(v.ok());
  std::string out = std::move(v).value();
  EXPECT_EQ(out, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

Status FailsThenPropagates(bool fail) {
  STTR_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::InvalidArgument("outer");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kInternal);
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sttr
