// Runtime CPU-feature detection and the scalar-fallback dispatch policy
// behind the SIMD kernels (tensor/simd.h): the decision table is pure and
// exhaustively checkable without faking cpuid; the host probes are checked
// for internal coherence and cache stability.

#include "util/cpu_features.h"

#include <gtest/gtest.h>

#include "tensor/simd.h"

namespace sttr {
namespace {

CpuFeatures Features(bool avx2, bool fma, bool os_ymm) {
  CpuFeatures f;
  f.avx = avx2;  // AVX2 silicon always reports AVX; irrelevant to SimdOk
  f.avx2 = avx2;
  f.fma = fma;
  f.os_ymm = os_ymm;
  return f;
}

TEST(CpuFeaturesTest, SimdOkRequiresAllThreeCapabilities) {
  for (const bool avx2 : {false, true}) {
    for (const bool fma : {false, true}) {
      for (const bool os_ymm : {false, true}) {
        EXPECT_EQ(Features(avx2, fma, os_ymm).SimdOk(),
                  avx2 && fma && os_ymm)
            << "avx2=" << avx2 << " fma=" << fma << " os_ymm=" << os_ymm;
      }
    }
  }
}

TEST(CpuFeaturesTest, ForceScalarOverridesAnyHardware) {
  EXPECT_FALSE(SimdAllowed(Features(true, true, true), /*force_scalar=*/true));
  EXPECT_TRUE(SimdAllowed(Features(true, true, true), /*force_scalar=*/false));
}

TEST(CpuFeaturesTest, IncapableHostNeverDispatchesVector) {
  // An AVX2-built binary on a pre-Haswell core (or an OS not saving YMM
  // state) must take the scalar path regardless of the escape hatch.
  EXPECT_FALSE(SimdAllowed(Features(false, false, false), false));
  EXPECT_FALSE(SimdAllowed(Features(true, true, false), false));
  EXPECT_FALSE(SimdAllowed(Features(true, false, true), false));
}

TEST(CpuFeaturesTest, HostDetectionIsCoherent) {
  const CpuFeatures fresh = DetectCpuFeatures();
  // OS YMM saving is meaningless without AVX silicon underneath.
  if (fresh.os_ymm) {
    EXPECT_TRUE(fresh.avx);
  }
  // Real AVX2 silicon always also reports AVX.
  if (fresh.avx2) {
    EXPECT_TRUE(fresh.avx);
  }
}

TEST(CpuFeaturesTest, CachedDetectionMatchesFreshProbe) {
  const CpuFeatures& cached = HostCpuFeatures();
  const CpuFeatures fresh = DetectCpuFeatures();
  EXPECT_EQ(cached.avx, fresh.avx);
  EXPECT_EQ(cached.avx2, fresh.avx2);
  EXPECT_EQ(cached.fma, fresh.fma);
  EXPECT_EQ(cached.os_ymm, fresh.os_ymm);
  // The cache returns the same object every call.
  EXPECT_EQ(&HostCpuFeatures(), &cached);
}

TEST(CpuFeaturesTest, RuntimeDispatchImpliesBothGates) {
  // The two-stage dispatch contract: the vector path runs only when the
  // kernels were compiled in AND the host passes the runtime probe.
  if (simd::RuntimeEnabled()) {
    EXPECT_TRUE(simd::Enabled());
    EXPECT_TRUE(HostSimdAllowed());
    EXPECT_TRUE(HostCpuFeatures().SimdOk());
  }
  if (!simd::Enabled()) {
    EXPECT_FALSE(simd::RuntimeEnabled());
  }
}

}  // namespace
}  // namespace sttr
