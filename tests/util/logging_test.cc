#include "util/logging.h"

#include <gtest/gtest.h>

namespace sttr {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(before);
}

TEST(LoggingTest, MacrosCompileAndStream) {
  // Smoke: all severities accept streamed values of mixed types.
  SetLogLevel(LogLevel::kError);  // silence output during the test
  STTR_LOG(Debug) << "debug " << 1;
  STTR_LOG(Info) << "info " << 2.5;
  STTR_LOG(Warning) << "warn " << std::string("s");
  STTR_LOG(Error) << "err";
  SetLogLevel(LogLevel::kInfo);
  SUCCEED();
}

TEST(LoggingTest, FilteredMessagesAreCheap) {
  SetLogLevel(LogLevel::kError);
  for (int i = 0; i < 1000; ++i) {
    STTR_LOG(Debug) << "never shown " << i;
  }
  SetLogLevel(LogLevel::kInfo);
  SUCCEED();
}

}  // namespace
}  // namespace sttr
