#include "util/string_util.h"

#include <gtest/gtest.h>

namespace sttr {
namespace {

TEST(SplitTest, BasicDelimiter) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputGivesOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitWhitespaceTest, DropsEmptyTokens) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, RemovesEdges) {
  EXPECT_EQ(Trim("  hello \n"), "hello");
  EXPECT_EQ(Trim("hello"), "hello");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("foo", ""));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(StrFormatTest, LongOutput) {
  const std::string s = StrFormat("%0512d", 1);
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.back(), '1');
}

}  // namespace
}  // namespace sttr
