#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace sttr {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Split(0);
  Rng child2 = a.Split(1);
  EXPECT_NE(child.Next(), child2.Next());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.5, 4.0);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 4.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformIntSignedRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LT(v, 5);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalShiftScale) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(29);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[rng.Discrete(w)] += 1;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(31);
  for (double alpha : {0.1, 0.5, 1.0, 5.0}) {
    const auto v = rng.Dirichlet(alpha, 8);
    ASSERT_EQ(v.size(), 8u);
    double sum = 0;
    for (double x : v) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(RngTest, DirichletConcentrationControlsSparsity) {
  Rng rng(37);
  // With small alpha, the max coordinate should dominate on average.
  double max_small = 0, max_large = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    auto a = rng.Dirichlet(0.05, 10);
    auto b = rng.Dirichlet(10.0, 10);
    max_small += *std::max_element(a.begin(), a.end());
    max_large += *std::max_element(b.begin(), b.end());
  }
  EXPECT_GT(max_small / trials, 0.7);
  EXPECT_LT(max_large / trials, 0.35);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(41);
  for (double shape : {0.5, 1.0, 3.0}) {
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += rng.Gamma(shape);
    EXPECT_NEAR(sum / n, shape, 0.05 * std::max(1.0, shape));
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  auto orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementUnique) {
  Rng rng(47);
  for (size_t n : {10u, 100u, 1000u}) {
    for (size_t k : {0u, 1u, 5u, 10u}) {
      if (k > n) continue;
      const auto s = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(s.size(), k);
      std::set<size_t> uniq(s.begin(), s.end());
      EXPECT_EQ(uniq.size(), k);
      for (size_t x : s) EXPECT_LT(x, n);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(53);
  const auto s = rng.SampleWithoutReplacement(20, 20);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
}

TEST(AliasTableTest, MatchesWeights) {
  Rng rng(59);
  std::vector<double> w = {0.1, 0.4, 0.0, 0.5};
  AliasTable table(w);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[table.Sample(rng)] += 1;
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.4, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.5, 0.01);
}

TEST(AliasTableTest, SingleElement) {
  Rng rng(61);
  AliasTable table(std::vector<double>{2.0});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(AliasTableTest, UniformWeights) {
  Rng rng(67);
  AliasTable table(std::vector<double>(16, 1.0));
  std::vector<int> counts(16, 0);
  const int n = 160000;
  for (int i = 0; i < n; ++i) counts[table.Sample(rng)] += 1;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 16, 0.005);
  }
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, UniformIntNeverOutOfRange) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.UniformInt(97), 97u);
  }
}

TEST_P(RngSeedSweep, AliasTableNeverReturnsZeroWeightSlot) {
  Rng rng(GetParam());
  std::vector<double> w = {0.0, 1.0, 0.0, 2.0, 0.0};
  AliasTable table(w);
  for (int i = 0; i < 2000; ++i) {
    const size_t s = table.Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 42, 1234, 99999));

}  // namespace
}  // namespace sttr
