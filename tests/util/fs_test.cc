#include "util/fs.h"

#include <algorithm>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "util/fault_injection.h"

namespace sttr {
namespace {

std::string TestDir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::filesystem::path dir = ::testing::TempDir();
  dir /= std::string("sttr_fs_") + info->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(PathTest, DirAndBaseName) {
  EXPECT_EQ(DirName("/a/b/c.txt"), "/a/b");
  EXPECT_EQ(BaseName("/a/b/c.txt"), "c.txt");
  EXPECT_EQ(DirName("c.txt"), ".");
  EXPECT_EQ(BaseName("c.txt"), "c.txt");
}

TEST(PathTest, TempFileNameDetection) {
  EXPECT_TRUE(IsTempFileName("ckpt-000001.sttr.tmp.1234"));
  EXPECT_FALSE(IsTempFileName("ckpt-000001.sttr"));
}

TEST(EnvTest, WriteReadRoundTrip) {
  Env& env = *Env::Default();
  const std::string path = TestDir() + "/f.bin";
  const std::string data("hello\0world", 11);  // embedded NUL survives
  ASSERT_TRUE(env.WriteFile(path, data).ok());
  auto read = env.ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(EnvTest, ReadMissingFileIsIOError) {
  auto r = Env::Default()->ReadFile(TestDir() + "/missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(EnvTest, CreateDirIsRecursiveAndIdempotent) {
  Env& env = *Env::Default();
  const std::string dir = TestDir() + "/a/b/c";
  ASSERT_TRUE(env.CreateDir(dir).ok());
  ASSERT_TRUE(env.CreateDir(dir).ok());
  EXPECT_TRUE(env.WriteFile(dir + "/f", "x").ok());
}

TEST(EnvTest, ListDirSortedFilesOnly) {
  Env& env = *Env::Default();
  const std::string dir = TestDir();
  ASSERT_TRUE(env.WriteFile(dir + "/b.txt", "b").ok());
  ASSERT_TRUE(env.WriteFile(dir + "/a.txt", "a").ok());
  ASSERT_TRUE(env.CreateDir(dir + "/subdir").ok());
  auto names = env.ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"a.txt", "b.txt"}));
}

TEST(EnvTest, RenameReplacesAndRemoveDeletes) {
  Env& env = *Env::Default();
  const std::string dir = TestDir();
  ASSERT_TRUE(env.WriteFile(dir + "/old", "new contents").ok());
  ASSERT_TRUE(env.WriteFile(dir + "/target", "previous").ok());
  ASSERT_TRUE(env.Rename(dir + "/old", dir + "/target").ok());
  EXPECT_FALSE(env.FileExists(dir + "/old"));
  EXPECT_EQ(*env.ReadFile(dir + "/target"), "new contents");
  ASSERT_TRUE(env.Remove(dir + "/target").ok());
  EXPECT_FALSE(env.FileExists(dir + "/target"));
}

TEST(AtomicWriteTest, WritesAndReplacesWithoutResidue) {
  Env& env = *Env::Default();
  const std::string dir = TestDir();
  const std::string path = dir + "/state.bin";
  ASSERT_TRUE(AtomicWriteFile(env, path, "v1").ok());
  EXPECT_EQ(*env.ReadFile(path), "v1");
  ASSERT_TRUE(AtomicWriteFile(env, path, "v2").ok());
  EXPECT_EQ(*env.ReadFile(path), "v2");
  // No temp files survive a successful write.
  const auto names = env.ListDir(dir);
  ASSERT_TRUE(names.ok());
  for (const std::string& name : *names) {
    EXPECT_FALSE(IsTempFileName(name)) << name;
  }
}

using Op = FaultInjectionEnv::Op;

TEST(FaultInjectionTest, FailsExactlyTheScheduledOp) {
  FaultInjectionEnv env;
  const std::string dir = TestDir();
  env.FailNth(Op::kWrite, 1);
  EXPECT_TRUE(env.WriteFile(dir + "/a", "x").ok());   // op 0
  auto second = env.WriteFile(dir + "/b", "x");       // op 1: injected
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), StatusCode::kIOError);
  EXPECT_NE(second.message().find("injected"), std::string::npos);
  EXPECT_TRUE(env.WriteFile(dir + "/c", "x").ok());   // one-shot: op 2 passes
  EXPECT_EQ(env.faults_triggered(), 1u);
  EXPECT_EQ(env.op_count(Op::kWrite), 3u);
}

TEST(FaultInjectionTest, ResetClearsFaultsAndCounters) {
  FaultInjectionEnv env;
  env.FailNth(Op::kRename, 0);
  env.Reset();
  const std::string dir = TestDir();
  ASSERT_TRUE(env.WriteFile(dir + "/a", "x").ok());
  EXPECT_TRUE(env.Rename(dir + "/a", dir + "/b").ok());
  EXPECT_EQ(env.faults_triggered(), 0u);
  EXPECT_EQ(env.op_count(Op::kWrite), 1u);
}

TEST(FaultInjectionTest, TornWriteLeavesHalfTheData) {
  FaultInjectionEnv env;
  env.set_torn_writes(true);
  env.FailNth(Op::kWrite, 0);
  const std::string path = TestDir() + "/torn";
  ASSERT_FALSE(env.WriteFile(path, "0123456789").ok());
  auto left = Env::Default()->ReadFile(path);
  ASSERT_TRUE(left.ok());
  EXPECT_EQ(*left, "01234");  // first half flushed, rest lost
}

TEST(AtomicWriteTest, FailedWriteLeavesTargetUntouched) {
  FaultInjectionEnv env;
  const std::string path = TestDir() + "/state.bin";
  ASSERT_TRUE(AtomicWriteFile(env, path, "v1").ok());
  for (Op op : {Op::kWrite, Op::kFsync, Op::kRename}) {
    env.Reset();
    env.set_torn_writes(true);
    env.FailNth(op, 0);
    EXPECT_FALSE(AtomicWriteFile(env, path, "v2-should-not-appear").ok());
    EXPECT_EQ(*Env::Default()->ReadFile(path), "v1")
        << "op " << static_cast<int>(op);
  }
  // A fsync fault after the rename (the directory sync) is reported, but by
  // then the new data is already in place — both are crash-consistent states.
  env.Reset();
  env.FailNth(Op::kFsync, 1);
  EXPECT_FALSE(AtomicWriteFile(env, path, "v2").ok());
  EXPECT_EQ(*Env::Default()->ReadFile(path), "v2");
}

}  // namespace
}  // namespace sttr
