// FaultInjectionSocket + sttr::net wrapper semantics: the seam every chaos
// suite drives. One-shot and always-on faults must fire exactly where
// armed, and each Mode must surface through Send/Recv/Connect as the
// documented errno/short-count/EOF behaviour — the router's transient-error
// classification is built on these exact contracts.

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/socket_fault.h"
#include "util/socket_io.h"

namespace sttr {
namespace {

using Op = FaultInjectionSocket::Op;
using Mode = FaultInjectionSocket::Mode;

/// A connected AF_UNIX stream pair: real send/recv without a listener.
struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(SocketFaultTest, NthOperationFiresExactlyOnce) {
  FaultInjectionSocket fault;
  fault.FailNth(Op::kSend, 2);
  EXPECT_FALSE(fault.Apply(Op::kSend).fire);
  EXPECT_FALSE(fault.Apply(Op::kSend).fire);
  EXPECT_TRUE(fault.Apply(Op::kSend).fire);
  EXPECT_FALSE(fault.Apply(Op::kSend).fire);  // one-shot: disarmed after
  EXPECT_EQ(fault.op_count(Op::kSend), 4u);
  EXPECT_EQ(fault.faults_triggered(), 1u);
  // Other op kinds are independent.
  EXPECT_FALSE(fault.Apply(Op::kRecv).fire);
  EXPECT_EQ(fault.op_count(Op::kRecv), 1u);
}

TEST(SocketFaultTest, FailAlwaysUntilCleared) {
  FaultInjectionSocket fault;
  fault.FailAlways(Op::kRecv, Mode::kEof);
  for (int i = 0; i < 3; ++i) {
    const auto decision = fault.Apply(Op::kRecv);
    EXPECT_TRUE(decision.fire);
    EXPECT_EQ(decision.mode, Mode::kEof);
  }
  fault.Clear(Op::kRecv);
  EXPECT_FALSE(fault.Apply(Op::kRecv).fire);
  EXPECT_EQ(fault.faults_triggered(), 3u);
  EXPECT_EQ(fault.op_count(Op::kRecv), 4u);  // Clear keeps counters
  fault.Reset();
  EXPECT_EQ(fault.op_count(Op::kRecv), 0u);
  EXPECT_EQ(fault.faults_triggered(), 0u);
}

TEST(SocketFaultTest, PassthroughWithoutInjector) {
  SocketPair pair;
  const std::string msg = "hello shard";
  ASSERT_EQ(net::Send(pair.a, msg.data(), msg.size(), 0),
            static_cast<ssize_t>(msg.size()));
  char buf[64] = {};
  ASSERT_EQ(net::Recv(pair.b, buf, sizeof(buf), 0),
            static_cast<ssize_t>(msg.size()));
  EXPECT_EQ(std::string(buf, msg.size()), msg);
}

TEST(SocketFaultTest, ShortSendTearsTheFrame) {
  SocketPair pair;
  FaultInjectionSocket fault;
  fault.FailNth(Op::kSend, 0, Mode::kShort);
  const std::string msg(10, 'x');
  const ssize_t sent = net::Send(pair.a, msg.data(), msg.size(), 0, &fault);
  EXPECT_EQ(sent, 5);  // max(1, len/2): deterministic torn write
  char buf[64];
  EXPECT_EQ(net::Recv(pair.b, buf, sizeof(buf), MSG_DONTWAIT), 5);
}

TEST(SocketFaultTest, FailAndEofModesSurfaceAsErrno) {
  SocketPair pair;
  FaultInjectionSocket fault;

  fault.FailNth(Op::kSend, 0, Mode::kFail);
  errno = 0;
  EXPECT_EQ(net::Send(pair.a, "x", 1, 0, &fault), -1);
  EXPECT_EQ(errno, EPIPE);

  fault.FailNth(Op::kRecv, 0, Mode::kFail);
  errno = 0;
  char c;
  EXPECT_EQ(net::Recv(pair.b, &c, 1, 0, &fault), -1);
  EXPECT_EQ(errno, ECONNRESET);

  // kEof: the peer vanished cleanly — recv 0, send EPIPE.
  fault.FailNth(Op::kRecv, 0, Mode::kEof);
  EXPECT_EQ(net::Recv(pair.b, &c, 1, 0, &fault), 0);
  fault.FailNth(Op::kSend, 0, Mode::kEof);
  errno = 0;
  EXPECT_EQ(net::Send(pair.a, "x", 1, 0, &fault), -1);
  EXPECT_EQ(errno, EPIPE);

  // Injected connect failure never touches the (unconnectable) address.
  fault.FailNth(Op::kConnect, 0, Mode::kFail);
  errno = 0;
  EXPECT_EQ(net::Connect(pair.a, nullptr, 0, &fault), -1);
  EXPECT_EQ(errno, ECONNREFUSED);
}

TEST(SocketFaultTest, StallSleepsThenEagain) {
  SocketPair pair;
  FaultInjectionSocket fault;
  fault.set_stall(std::chrono::milliseconds(30));
  fault.FailNth(Op::kRecv, 0, Mode::kStall);
  char c;
  const auto start = std::chrono::steady_clock::now();
  errno = 0;
  EXPECT_EQ(net::Recv(pair.b, &c, 1, 0, &fault), -1);
  EXPECT_EQ(errno, EAGAIN);
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(25));
}

// The router fans gathers out from concurrent scoring workers, so the
// injector must count and trigger correctly under contention (this is also
// what earns it a slot in the TSan suite).
TEST(SocketFaultTest, ConcurrentApplyCountsEveryOperation) {
  FaultInjectionSocket fault;
  fault.FailAlways(Op::kSend, Mode::kFail);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fault] {
      for (int i = 0; i < kPerThread; ++i) fault.Apply(Op::kSend);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(fault.op_count(Op::kSend), size_t{kThreads} * kPerThread);
  EXPECT_EQ(fault.faults_triggered(), size_t{kThreads} * kPerThread);
}

}  // namespace
}  // namespace sttr
