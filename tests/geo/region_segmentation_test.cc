#include "geo/region_segmentation.h"

#include <gtest/gtest.h>

namespace sttr {
namespace {

BoundingBox UnitBox() { return BoundingBox{0.0, 1.0, 0.0, 1.0}; }

TEST(RegionSegmenterTest, CellDistanceMatchesEq5) {
  GridIndex grid(UnitBox(), 1, 2);
  RegionSegmenter seg(grid, 0.5);
  // U_0 = {1,2,3}, U_1 = {2,3,4,5}: overlap 2, min size 3 -> 2/3.
  for (int64_t u : {1, 2, 3}) seg.AddVisit(0, u);
  for (int64_t u : {2, 3, 4, 5}) seg.AddVisit(1, u);
  EXPECT_NEAR(seg.CellDistance(0, 1), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(seg.CellUserCount(0), 3u);
  EXPECT_EQ(seg.CellUserCount(1), 4u);
}

TEST(RegionSegmenterTest, EmptyCellHasZeroDistance) {
  GridIndex grid(UnitBox(), 1, 2);
  RegionSegmenter seg(grid, 0.5);
  seg.AddVisit(0, 1);
  EXPECT_EQ(seg.CellDistance(0, 1), 0.0);
}

TEST(RegionSegmenterTest, EveryCellGetsExactlyOneRegion) {
  GridIndex grid(UnitBox(), 4, 4);
  RegionSegmenter seg(grid, 0.3);
  Rng rng(1);
  for (int i = 0; i < 60; ++i) {
    seg.AddVisit(rng.UniformInt(16), static_cast<int64_t>(rng.UniformInt(10)));
  }
  const RegionAssignment regions = seg.Segment(rng);
  std::vector<int> seen(16, 0);
  for (size_t r = 0; r < regions.num_regions(); ++r) {
    for (size_t cell : regions.region_cells[r]) {
      EXPECT_EQ(regions.cell_to_region[cell], static_cast<int>(r));
      seen[cell] += 1;
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(RegionSegmenterTest, SharedUsersMergeNeighbours) {
  // Cells 0 and 1 share all users; cell 2 shares nobody with them.
  GridIndex grid(UnitBox(), 1, 3);
  RegionSegmenter seg(grid, 0.5);
  for (int64_t u : {1, 2, 3}) {
    seg.AddVisit(0, u);
    seg.AddVisit(1, u);
  }
  for (int64_t u : {7, 8}) seg.AddVisit(2, u);
  Rng rng(2);
  const RegionAssignment regions = seg.Segment(rng);
  EXPECT_EQ(regions.cell_to_region[0], regions.cell_to_region[1]);
  EXPECT_NE(regions.cell_to_region[0], regions.cell_to_region[2]);
}

TEST(RegionSegmenterTest, HighThresholdPreventsMerging) {
  GridIndex grid(UnitBox(), 1, 2);
  RegionSegmenter seg(grid, 1.0);
  seg.AddVisit(0, 1);
  seg.AddVisit(0, 2);
  seg.AddVisit(1, 2);  // overlap 1/1 = 1.0 >= 1.0 still merges
  Rng rng(3);
  const RegionAssignment merged = seg.Segment(rng);
  EXPECT_EQ(merged.cell_to_region[0], merged.cell_to_region[1]);

  RegionSegmenter seg2(grid, 1.0);
  seg2.AddVisit(0, 1);
  seg2.AddVisit(0, 2);
  seg2.AddVisit(1, 2);
  seg2.AddVisit(1, 3);  // overlap 1, min 2 -> 0.5 < 1.0: no merge
  const RegionAssignment split = seg2.Segment(rng);
  EXPECT_NE(split.cell_to_region[0], split.cell_to_region[1]);
}

TEST(RegionSegmenterTest, MergeIsTransitiveThroughChain) {
  // 0-1 and 1-2 similar, 0-2 not adjacent: all three end up together.
  GridIndex grid(UnitBox(), 1, 3);
  RegionSegmenter seg(grid, 0.5);
  for (int64_t u : {1, 2}) seg.AddVisit(0, u);
  for (int64_t u : {1, 2, 3, 4}) seg.AddVisit(1, u);
  for (int64_t u : {3, 4}) seg.AddVisit(2, u);
  Rng rng(4);
  const RegionAssignment regions = seg.Segment(rng);
  EXPECT_EQ(regions.cell_to_region[0], regions.cell_to_region[1]);
  EXPECT_EQ(regions.cell_to_region[1], regions.cell_to_region[2]);
}

TEST(RegionSegmenterTest, EmptyCellsBecomeSingletons) {
  GridIndex grid(UnitBox(), 2, 2);
  RegionSegmenter seg(grid, 0.1);
  seg.AddVisit(0, 1);
  Rng rng(5);
  const RegionAssignment regions = seg.Segment(rng);
  // 4 cells, no merges possible: 4 singleton regions.
  EXPECT_EQ(regions.num_regions(), 4u);
}

TEST(RegionSegmenterTest, DeterministicGivenSameRngState) {
  GridIndex grid(UnitBox(), 3, 3);
  RegionSegmenter seg(grid, 0.4);
  Rng data_rng(6);
  for (int i = 0; i < 40; ++i) {
    seg.AddVisit(data_rng.UniformInt(9),
                 static_cast<int64_t>(data_rng.UniformInt(12)));
  }
  Rng r1(9), r2(9);
  const auto a = seg.Segment(r1);
  const auto b = seg.Segment(r2);
  EXPECT_EQ(a.cell_to_region, b.cell_to_region);
}

}  // namespace
}  // namespace sttr
