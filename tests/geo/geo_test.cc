#include "geo/geo.h"

#include <gtest/gtest.h>

namespace sttr {
namespace {

TEST(HaversineTest, ZeroDistanceToSelf) {
  GeoPoint p{34.05, -118.25};
  EXPECT_DOUBLE_EQ(HaversineKm(p, p), 0.0);
}

TEST(HaversineTest, KnownCityPairs) {
  // LA <-> SF is ~559 km, LA <-> Las Vegas ~368 km.
  GeoPoint la{34.0522, -118.2437};
  GeoPoint sf{37.7749, -122.4194};
  GeoPoint lv{36.1699, -115.1398};
  EXPECT_NEAR(HaversineKm(la, sf), 559.0, 10.0);
  EXPECT_NEAR(HaversineKm(la, lv), 368.0, 10.0);
}

TEST(HaversineTest, Symmetric) {
  GeoPoint a{10.0, 20.0}, b{-5.0, 120.0};
  EXPECT_DOUBLE_EQ(HaversineKm(a, b), HaversineKm(b, a));
}

TEST(HaversineTest, OneDegreeLatitudeIsAbout111Km) {
  GeoPoint a{0.0, 0.0}, b{1.0, 0.0};
  EXPECT_NEAR(HaversineKm(a, b), 111.2, 1.0);
}

TEST(HaversineTest, AntipodalIsHalfCircumference) {
  GeoPoint a{0.0, 0.0}, b{0.0, 180.0};
  EXPECT_NEAR(HaversineKm(a, b), 20015.0, 10.0);
}

TEST(BoundingBoxTest, Contains) {
  BoundingBox box{0.0, 1.0, 10.0, 11.0};
  EXPECT_TRUE(box.Contains({0.5, 10.5}));
  EXPECT_TRUE(box.Contains({0.0, 10.0}));
  EXPECT_TRUE(box.Contains({1.0, 11.0}));
  EXPECT_FALSE(box.Contains({1.5, 10.5}));
  EXPECT_FALSE(box.Contains({0.5, 9.9}));
}

TEST(BoundingBoxTest, ExpandToInclude) {
  BoundingBox box{0.0, 1.0, 0.0, 1.0};
  box.ExpandToInclude({-2.0, 3.0});
  EXPECT_DOUBLE_EQ(box.min_lat, -2.0);
  EXPECT_DOUBLE_EQ(box.max_lon, 3.0);
  EXPECT_DOUBLE_EQ(box.lat_span(), 3.0);
  EXPECT_DOUBLE_EQ(box.lon_span(), 3.0);
}

TEST(BoundingBoxTest, ToStringMentionsBounds) {
  BoundingBox box{1.0, 2.0, 3.0, 4.0};
  const std::string s = box.ToString();
  EXPECT_NE(s.find("1.0000"), std::string::npos);
  EXPECT_NE(s.find("4.0000"), std::string::npos);
}

}  // namespace
}  // namespace sttr
