#include "geo/grid.h"

#include <gtest/gtest.h>

namespace sttr {
namespace {

BoundingBox UnitBox() { return BoundingBox{0.0, 1.0, 0.0, 1.0}; }

TEST(GridIndexTest, Dimensions) {
  GridIndex grid(UnitBox(), 4, 5);
  EXPECT_EQ(grid.rows(), 4u);
  EXPECT_EQ(grid.cols(), 5u);
  EXPECT_EQ(grid.NumCells(), 20u);
}

TEST(GridIndexTest, CornersMapToCornerCells) {
  GridIndex grid(UnitBox(), 4, 4);
  EXPECT_EQ(grid.CellOf({0.0, 0.0}), 0u);
  EXPECT_EQ(grid.CellOf({0.99, 0.99}), 15u);
  // Max edges clamp into the last cell.
  EXPECT_EQ(grid.CellOf({1.0, 1.0}), 15u);
}

TEST(GridIndexTest, OutsidePointsClampToBorder) {
  GridIndex grid(UnitBox(), 4, 4);
  EXPECT_EQ(grid.CellOf({-5.0, -5.0}), 0u);
  EXPECT_EQ(grid.CellOf({9.0, 9.0}), 15u);
  EXPECT_EQ(grid.CellOf({-1.0, 0.6}), grid.CellOf({0.0, 0.6}));
}

TEST(GridIndexTest, RowColDecomposition) {
  GridIndex grid(UnitBox(), 3, 7);
  const size_t cell = grid.CellOf({0.5, 0.5});
  EXPECT_EQ(cell, grid.RowOf(cell) * 7 + grid.ColOf(cell));
}

TEST(GridIndexTest, CellCenterRoundTrips) {
  GridIndex grid(UnitBox(), 6, 6);
  for (size_t c = 0; c < grid.NumCells(); ++c) {
    EXPECT_EQ(grid.CellOf(grid.CellCenter(c)), c);
  }
}

TEST(GridIndexTest, Neighbors4Interior) {
  GridIndex grid(UnitBox(), 4, 4);
  const auto n = grid.Neighbors4(5);  // row1,col1
  EXPECT_EQ(n.size(), 4u);
}

TEST(GridIndexTest, Neighbors4Corner) {
  GridIndex grid(UnitBox(), 4, 4);
  EXPECT_EQ(grid.Neighbors4(0).size(), 2u);
  EXPECT_EQ(grid.Neighbors4(15).size(), 2u);
}

TEST(GridIndexTest, Neighbors4Edge) {
  GridIndex grid(UnitBox(), 4, 4);
  EXPECT_EQ(grid.Neighbors4(1).size(), 3u);
}

TEST(GridIndexTest, Neighbors4SingleCellGrid) {
  GridIndex grid(UnitBox(), 1, 1);
  EXPECT_TRUE(grid.Neighbors4(0).empty());
}

TEST(GridIndexTest, NeighborsAreMutual) {
  GridIndex grid(UnitBox(), 5, 3);
  for (size_t c = 0; c < grid.NumCells(); ++c) {
    for (size_t nb : grid.Neighbors4(c)) {
      const auto back = grid.Neighbors4(nb);
      EXPECT_NE(std::find(back.begin(), back.end(), c), back.end());
    }
  }
}

TEST(GridIndexDeathTest, DegenerateBoxAborts) {
  BoundingBox flat{0.0, 0.0, 0.0, 1.0};
  EXPECT_DEATH(GridIndex(flat, 2, 2), "");
}

}  // namespace
}  // namespace sttr
