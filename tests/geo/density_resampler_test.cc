#include "geo/density_resampler.h"

#include <map>

#include <gtest/gtest.h>

namespace sttr {
namespace {

// Two regions: region 0 dense (1 cell, 10 check-ins on POI 100),
// region 1 sparse (2 cells, 4 check-ins on POIs 200/201).
DensityResampler MakeTwoRegionResampler() {
  std::vector<size_t> sizes = {1, 2};
  std::vector<int> regions;
  std::vector<int64_t> pois;
  for (int i = 0; i < 10; ++i) {
    regions.push_back(0);
    pois.push_back(100);
  }
  for (int i = 0; i < 4; ++i) {
    regions.push_back(1);
    pois.push_back(i % 2 == 0 ? 200 : 201);
  }
  return DensityResampler(std::move(sizes), regions, pois);
}

TEST(DensityResamplerTest, DensitiesMatchDefinition) {
  auto rs = MakeTwoRegionResampler();
  ASSERT_EQ(rs.stats().size(), 2u);
  EXPECT_DOUBLE_EQ(rs.stats()[0].density, 10.0);
  EXPECT_DOUBLE_EQ(rs.stats()[1].density, 2.0);
  EXPECT_DOUBLE_EQ(rs.max_density(), 10.0);
}

TEST(DensityResamplerTest, DeficitSatisfiesEq6) {
  auto rs = MakeTwoRegionResampler();
  // Eq. 6: (n_r + n'_r)/S_r = rho_max -> n'_1 = 10*2 - 4 = 16, n'_0 = 0.
  EXPECT_EQ(rs.stats()[0].deficit, 0u);
  EXPECT_EQ(rs.stats()[1].deficit, 16u);
  EXPECT_EQ(rs.TotalDeficit(), 16u);
}

TEST(DensityResamplerTest, NumExtraScalesWithAlpha) {
  auto rs = MakeTwoRegionResampler();
  EXPECT_EQ(rs.NumExtra(0.0), 0u);
  EXPECT_EQ(rs.NumExtra(1.0), 16u);
  EXPECT_EQ(rs.NumExtra(0.5), 8u);
  EXPECT_EQ(rs.NumExtra(0.1), 2u);  // round(1.6)
}

TEST(DensityResamplerTest, SampleExtraDrawsFromSparseRegions) {
  auto rs = MakeTwoRegionResampler();
  Rng rng(1);
  const auto extra = rs.SampleExtra(1.0, rng);
  EXPECT_EQ(extra.size(), 16u);
  size_t sparse_draws = 0;
  for (int64_t v : extra) {
    EXPECT_TRUE(v == 100 || v == 200 || v == 201);
    if (v != 100) ++sparse_draws;
  }
  // Region weights rho*/rho: region0 weight 1, region1 weight 5 -> ~83% of
  // draws should come from the sparse region.
  EXPECT_GT(sparse_draws, 10u);
}

TEST(DensityResamplerTest, WithinRegionDrawsFollowEq7) {
  // Single region, two POIs with 3:1 check-in ratio.
  std::vector<size_t> sizes = {1};
  std::vector<int> regions = {0, 0, 0, 0};
  std::vector<int64_t> pois = {7, 7, 7, 9};
  DensityResampler rs(std::move(sizes), regions, pois);
  // Make draws possible: add a second, denser region.
  // (Single-region cities have zero deficit; sample through Eq. 9 anyway by
  // constructing an imbalanced pair.)
  std::vector<size_t> sizes2 = {1, 4};
  std::vector<int> regions2 = {0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<int64_t> pois2 = {7, 7, 7, 9, 5, 5, 6, 6};
  DensityResampler rs2(std::move(sizes2), regions2, pois2);
  Rng rng(2);
  std::map<int64_t, int> counts;
  for (int trial = 0; trial < 4000; ++trial) {
    for (int64_t v : rs2.SampleExtra(1.0, rng)) counts[v] += 1;
  }
  // Draws from region 0 must hit POI 7 about 3x as often as POI 9.
  ASSERT_GT(counts[9], 0);
  const double ratio =
      static_cast<double>(counts[7]) / static_cast<double>(counts[9]);
  EXPECT_NEAR(ratio, 3.0, 0.4);
}

TEST(DensityResamplerTest, UniformRegionsNeedNoResampling) {
  std::vector<size_t> sizes = {1, 1};
  std::vector<int> regions = {0, 1};
  std::vector<int64_t> pois = {1, 2};
  DensityResampler rs(std::move(sizes), regions, pois);
  EXPECT_EQ(rs.TotalDeficit(), 0u);
  Rng rng(3);
  EXPECT_TRUE(rs.SampleExtra(1.0, rng).empty());
}

TEST(DensityResamplerTest, EmptyRegionExcludedFromSampling) {
  std::vector<size_t> sizes = {1, 1};
  std::vector<int> regions = {0, 0};
  std::vector<int64_t> pois = {1, 1};
  DensityResampler rs(std::move(sizes), regions, pois);
  EXPECT_DOUBLE_EQ(rs.RegionProbability(1), 0.0);
  EXPECT_DOUBLE_EQ(rs.RegionProbability(0), 1.0);
}

TEST(DensityResamplerTest, RegionProbabilitiesSumToOne) {
  auto rs = MakeTwoRegionResampler();
  EXPECT_NEAR(rs.RegionProbability(0) + rs.RegionProbability(1), 1.0, 1e-12);
  // Eq. 8: P(r) proportional to rho*/rho_r -> 1 : 5.
  EXPECT_NEAR(rs.RegionProbability(1) / rs.RegionProbability(0), 5.0, 1e-9);
}

TEST(DensityResamplerTest, NoCheckinsMeansNoDraws) {
  DensityResampler rs({1, 2}, {}, {});
  EXPECT_EQ(rs.TotalDeficit(), 0u);
  Rng rng(4);
  EXPECT_TRUE(rs.SampleExtra(1.0, rng).empty());
  EXPECT_DOUBLE_EQ(rs.max_density(), 0.0);
}

TEST(DensityResamplerDeathTest, AlphaOutOfRangeAborts) {
  auto rs = MakeTwoRegionResampler();
  EXPECT_DEATH(rs.NumExtra(1.5), "");
  EXPECT_DEATH(rs.NumExtra(-0.1), "");
}

class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, ExtraCountIsMonotoneInAlpha) {
  auto rs = MakeTwoRegionResampler();
  const double alpha = GetParam();
  Rng rng(5);
  EXPECT_EQ(rs.SampleExtra(alpha, rng).size(), rs.NumExtra(alpha));
  if (alpha >= 0.5) {
    EXPECT_GE(rs.NumExtra(alpha), rs.NumExtra(alpha / 2));
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep,
                         ::testing::Values(0.0, 0.06, 0.1, 0.15, 0.5, 1.0));

}  // namespace
}  // namespace sttr
