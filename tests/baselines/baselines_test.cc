#include <cmath>

#include <gtest/gtest.h>

#include "baselines/common.h"
#include "baselines/crcf.h"
#include "baselines/ctlm.h"
#include "baselines/item_pop.h"
#include "baselines/lce.h"
#include "baselines/pace.h"
#include "baselines/pr_uidt.h"
#include "baselines/registry.h"
#include "baselines/sh_cdl.h"
#include "baselines/st_lda.h"
#include "data/synth/world_generator.h"
#include "util/string_util.h"

namespace sttr::baselines {
namespace {

struct Fixture {
  synth::SynthWorld world;
  CrossCitySplit split;
};

const Fixture& SharedFixture() {
  static const Fixture* f = [] {
    auto cfg = synth::SynthWorldConfig::FoursquareLike(synth::Scale::kTiny);
    auto* out = new Fixture{synth::GenerateWorld(cfg), {}};
    out->split = MakeCrossCitySplit(out->world.dataset, cfg.target_city);
    return out;
  }();
  return *f;
}

double Recall10(const Recommender& rec, const Fixture& f) {
  EvalConfig ec;
  return EvaluateRanking(f.world.dataset, f.split, rec, ec).At(10).recall;
}

TEST(TrainViewTest, CountsMatchSplit) {
  const auto& f = SharedFixture();
  const TrainView view = MakeTrainView(f.world.dataset, f.split);
  EXPECT_EQ(view.positives.size(), f.split.train.size());
  size_t pop_total = 0;
  for (size_t p : view.poi_popularity) pop_total += p;
  EXPECT_EQ(pop_total, f.split.train.size());
  EXPECT_EQ(view.city_pois.size(), f.world.dataset.num_cities());
}

TEST(TrainViewTest, UserPoisDeduplicated) {
  const auto& f = SharedFixture();
  const TrainView view = MakeTrainView(f.world.dataset, f.split);
  for (const auto& pois : view.user_pois) {
    for (size_t i = 1; i < pois.size(); ++i) {
      EXPECT_LT(pois[i - 1], pois[i]);
    }
  }
}

TEST(TfIdfTest, PoiVectorsAreUnitNorm) {
  const auto& f = SharedFixture();
  TfIdfModel tfidf(f.world.dataset);
  for (PoiId v = 0; v < 20; ++v) {
    double norm = 0;
    for (const auto& [w, x] : tfidf.PoiVector(v)) norm += x * x;
    EXPECT_NEAR(norm, 1.0, 1e-9);
  }
}

TEST(TfIdfTest, CosineOfIdenticalVectorsIsOne) {
  const auto& f = SharedFixture();
  TfIdfModel tfidf(f.world.dataset);
  EXPECT_NEAR(TfIdfModel::Cosine(tfidf.PoiVector(0), tfidf.PoiVector(0)),
              1.0, 1e-9);
}

TEST(TfIdfTest, UserProfileReflectsVisits) {
  const auto& f = SharedFixture();
  TfIdfModel tfidf(f.world.dataset);
  auto profile = tfidf.UserProfile({0});
  // Profile of just POI 0 must align best with POI 0 itself.
  EXPECT_NEAR(TfIdfModel::Cosine(profile, tfidf.PoiVector(0)), 1.0, 1e-9);
}

TEST(DocumentsTest, TokensCarryCityTags) {
  const auto& f = SharedFixture();
  const auto docs = BuildUserDocuments(f.world.dataset, f.split);
  EXPECT_EQ(docs.size(), f.world.dataset.num_users());
  size_t total = 0;
  for (const auto& d : docs) {
    for (const DocToken& t : d) {
      EXPECT_GE(t.word, 0);
      EXPECT_GE(t.city, 0);
      ++total;
    }
  }
  EXPECT_GT(total, f.split.train.size());  // several words per check-in
}

TEST(ItemPopTest, ScoreEqualsTrainPopularity) {
  const auto& f = SharedFixture();
  ItemPop pop;
  ASSERT_TRUE(pop.Fit(f.world.dataset, f.split).ok());
  std::vector<size_t> counts(f.world.dataset.num_pois(), 0);
  for (size_t idx : f.split.train) {
    counts[static_cast<size_t>(f.world.dataset.checkins()[idx].poi)] += 1;
  }
  for (PoiId v = 0; v < 30; ++v) {
    EXPECT_DOUBLE_EQ(pop.Score(1, v),
                     static_cast<double>(counts[static_cast<size_t>(v)]));
  }
}

TEST(ItemPopTest, UserIndependent) {
  const auto& f = SharedFixture();
  ItemPop pop;
  ASSERT_TRUE(pop.Fit(f.world.dataset, f.split).ok());
  EXPECT_DOUBLE_EQ(pop.Score(0, 5), pop.Score(42, 5));
}

TEST(ItemPopTest, BeatsRandom) {
  const auto& f = SharedFixture();
  ItemPop pop;
  ASSERT_TRUE(pop.Fit(f.world.dataset, f.split).ok());
  EXPECT_GT(Recall10(pop, f), 0.10);
}

TEST(CrcfTest, BeatsRandomAndIsPersonalised) {
  const auto& f = SharedFixture();
  Crcf crcf;
  ASSERT_TRUE(crcf.Fit(f.world.dataset, f.split).ok());
  EXPECT_GT(Recall10(crcf, f), 0.12);
  // Different users get different content scores somewhere.
  bool differs = false;
  for (PoiId v = 0; v < 20 && !differs; ++v) {
    differs = crcf.Score(f.split.test_users[0].user, v) !=
              crcf.Score(f.split.test_users[1].user, v);
  }
  EXPECT_TRUE(differs);
}

TEST(CrcfTest, LocationComponentFlatForCrossingUsers) {
  // The location preference needs the user's own target-city history;
  // crossing-city test users have none, so a pure-location CRCF cannot
  // distinguish target candidates for them (the paper's stated weakness).
  const auto& f = SharedFixture();
  Crcf pure_location(0.0);
  ASSERT_TRUE(pure_location.Fit(f.world.dataset, f.split).ok());
  const UserId crossing = f.split.test_users.front().user;
  const auto& pois = f.world.dataset.PoisInCity(0);
  for (size_t i = 1; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(pure_location.Score(crossing, pois[0]),
                     pure_location.Score(crossing, pois[i]));
  }
}

TEST(CrcfTest, LocalsGetInformativeLocationScores) {
  const auto& f = SharedFixture();
  Crcf pure_location(0.0);
  ASSERT_TRUE(pure_location.Fit(f.world.dataset, f.split).ok());
  // Find a target-city local with training check-ins there.
  UserId local = -1;
  for (const User& u : f.world.dataset.users()) {
    if (u.home_city == 0) {
      local = u.id;
      break;
    }
  }
  ASSERT_GE(local, 0);
  const auto& pois = f.world.dataset.PoisInCity(0);
  bool differs = false;
  for (size_t i = 1; i < pois.size() && !differs; ++i) {
    differs = pure_location.Score(local, pois[0]) !=
              pure_location.Score(local, pois[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(LceTest, FitsAndImprovesReconstruction) {
  const auto& f = SharedFixture();
  Lce lce(16, 25, 1.0, 7);
  ASSERT_TRUE(lce.Fit(f.world.dataset, f.split).ok());
  const auto& hist = lce.loss_history();
  ASSERT_GE(hist.size(), 2u);
  EXPECT_LT(hist.back(), hist.front());
  EXPECT_GT(Recall10(lce, f), 0.10);
}

TEST(LceTest, ScoresNonNegative) {
  const auto& f = SharedFixture();
  Lce lce(8, 10, 1.0, 7);
  ASSERT_TRUE(lce.Fit(f.world.dataset, f.split).ok());
  for (PoiId v = 0; v < 25; ++v) {
    EXPECT_GE(lce.Score(0, v), 0.0);  // NMF factors are non-negative
  }
}

TEST(PrUidtTest, FitsAndScores) {
  const auto& f = SharedFixture();
  PrUidt model(16, 4);
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());
  const double s = model.Score(0, 0);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
  EXPECT_GT(Recall10(model, f), 0.10);
}

TEST(StLdaTest, TopicsSumToOne) {
  const auto& f = SharedFixture();
  StLda lda(8, 40);
  ASSERT_TRUE(lda.Fit(f.world.dataset, f.split).ok());
  for (const auto& theta : lda.user_topics()) {
    double sum = 0;
    for (double t : theta) sum += t;
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
  EXPECT_GT(Recall10(lda, f), 0.10);
}

TEST(CtlmTest, CommonProbabilityInUnitInterval) {
  const auto& f = SharedFixture();
  Ctlm ctlm(8, 40);
  ASSERT_TRUE(ctlm.Fit(f.world.dataset, f.split).ok());
  for (size_t t = 0; t < 8; ++t) {
    for (CityId c = 0; c < 2; ++c) {
      const double p = ctlm.CommonProbability(t, c);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(CtlmTest, CityWordsPreferSpecificDistributions) {
  // Landmark words appear in one city only, so the common distributions
  // should put less mass on them than on shared topic words.
  const auto& f = SharedFixture();
  Ctlm ctlm(8, 60);
  ASSERT_TRUE(ctlm.Fit(f.world.dataset, f.split).ok());
  const auto& vocab = f.world.dataset.vocabulary();
  double city_mass = 0, topic_mass = 0;
  size_t n_city = 0, n_topic = 0;
  for (size_t w = 0; w < vocab.size(); ++w) {
    double best = 0;
    for (const auto& phi : ctlm.common_phi()) {
      best = std::max(best, phi[w]);
    }
    const bool is_city_word =
        vocab.WordOf(static_cast<int64_t>(w)).find('_') != std::string::npos;
    if (is_city_word) {
      city_mass += best;
      ++n_city;
    } else {
      topic_mass += best;
      ++n_topic;
    }
  }
  ASSERT_GT(n_city, 0u);
  ASSERT_GT(n_topic, 0u);
  EXPECT_GT(topic_mass / static_cast<double>(n_topic),
            city_mass / static_cast<double>(n_city));
}

TEST(ShCdlTest, RepresentationsLearned) {
  const auto& f = SharedFixture();
  ShCdl::Config cfg;
  cfg.dae_epochs = 4;
  cfg.mf_epochs = 3;
  ShCdl model(cfg);
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());
  const auto rep = model.PoiRepresentation(0);
  EXPECT_EQ(rep.size(), cfg.representation_dim);
  double norm = 0;
  for (float x : rep) norm += static_cast<double>(x) * x;
  EXPECT_GT(norm, 0.0);
  EXPECT_GT(Recall10(model, f), 0.10);
}

TEST(PaceTest, DisablesTransferAndResampling) {
  Pace pace;
  EXPECT_EQ(pace.name(), "PACE");
  EXPECT_FALSE(pace.inner().config().use_mmd);
  EXPECT_EQ(pace.inner().config().resample_alpha, 0.0);
  EXPECT_TRUE(pace.inner().config().use_geo_context);
  EXPECT_TRUE(pace.inner().config().use_text);
}

TEST(RegistryTest, AllComparisonMethodsConstruct) {
  for (const auto& name : ComparisonMethodNames()) {
    auto rec = MakeRecommender(name);
    ASSERT_TRUE(rec.ok()) << name;
    EXPECT_EQ((*rec)->name(), name);
  }
}

TEST(RegistryTest, AblationRosterConstructs) {
  for (const auto& name : AblationMethodNames()) {
    auto rec = MakeRecommender(name);
    ASSERT_TRUE(rec.ok()) << name;
    EXPECT_EQ((*rec)->name(), name);
  }
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  auto rec = MakeRecommender("DeepFM");
  EXPECT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace sttr::baselines
