#include "core/recommender.h"

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/synth/world_generator.h"

namespace sttr {
namespace {

struct Fixture {
  synth::SynthWorld world;
  CrossCitySplit split;
};

const Fixture& SharedFixture() {
  static const Fixture* f = [] {
    auto cfg = synth::SynthWorldConfig::FoursquareLike(synth::Scale::kTiny);
    auto* out = new Fixture{synth::GenerateWorld(cfg), {}};
    out->split = MakeCrossCitySplit(out->world.dataset, cfg.target_city);
    return out;
  }();
  return *f;
}

/// Minimal Recommender whose scores come from a caller-supplied function;
/// exercises RecommendTopK's bounded-heap selection in isolation.
class FnRecommender : public Recommender {
 public:
  using ScoreFn = double (*)(UserId, PoiId);
  explicit FnRecommender(ScoreFn fn) : fn_(fn) {}
  Status Fit(const Dataset&, const CrossCitySplit&) override {
    return Status::OK();
  }
  std::string name() const override { return "Fn"; }
  double Score(UserId user, PoiId poi) const override {
    return fn_(user, poi);
  }

 private:
  ScoreFn fn_;
};

double ConstantScore(UserId, PoiId) { return 0.5; }

double HashScore(UserId user, PoiId poi) {
  uint64_t x = static_cast<uint64_t>(user) * 2654435761u +
               static_cast<uint64_t>(poi) * 40503u;
  x ^= x >> 13;
  x *= 0x2545F4914F6CDD1DULL;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Few distinct score levels, so ties are common and the id tie-break is
/// actually load-bearing.
double BucketedScore(UserId, PoiId poi) {
  return static_cast<double>(poi % 3);
}

/// Reference implementation: score everything, full sort, truncate.
std::vector<std::pair<PoiId, double>> FullSortTopK(
    const Recommender& rec, const Dataset& dataset, CityId city, UserId user,
    size_t k, const std::unordered_set<PoiId>* exclude = nullptr) {
  std::vector<std::pair<PoiId, double>> scored;
  for (PoiId v : dataset.PoisInCity(city)) {
    if (exclude != nullptr && exclude->count(v)) continue;
    scored.emplace_back(v, rec.Score(user, v));
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

TEST(RecommendTopKTest, MatchesFullSortReference) {
  const auto& f = SharedFixture();
  FnRecommender rec(&HashScore);
  for (size_t k : {1u, 5u, 10u, 1000000u}) {
    const auto got = rec.RecommendTopK(f.world.dataset, 0, 7, k);
    const auto want = FullSortTopK(rec, f.world.dataset, 0, 7, k);
    EXPECT_EQ(got, want) << "k=" << k;
  }
}

TEST(RecommendTopKTest, AllTiesReturnSmallestIdsInOrder) {
  const auto& f = SharedFixture();
  FnRecommender rec(&ConstantScore);
  const size_t k = 6;
  const auto top = rec.RecommendTopK(f.world.dataset, 0, 3, k);
  ASSERT_EQ(top.size(), k);
  // With every score equal, the result must be the k smallest POI ids of
  // the city, ascending — regardless of heap eviction order.
  std::vector<PoiId> ids = f.world.dataset.PoisInCity(0);
  std::sort(ids.begin(), ids.end());
  for (size_t i = 0; i < k; ++i) {
    EXPECT_EQ(top[i].first, ids[i]) << "position " << i;
    EXPECT_EQ(top[i].second, 0.5);
  }
}

TEST(RecommendTopKTest, TieBreakDeterministicAcrossCalls) {
  const auto& f = SharedFixture();
  FnRecommender rec(&BucketedScore);
  const auto a = rec.RecommendTopK(f.world.dataset, 0, 1, 10);
  const auto b = rec.RecommendTopK(f.world.dataset, 0, 1, 10);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, FullSortTopK(rec, f.world.dataset, 0, 1, 10));
  // Within a tied score level, ids ascend.
  for (size_t i = 1; i < a.size(); ++i) {
    if (a[i - 1].second == a[i].second) {
      EXPECT_LT(a[i - 1].first, a[i].first);
    }
  }
}

TEST(RecommendTopKTest, KZeroAndExclusionEdgeCases) {
  const auto& f = SharedFixture();
  FnRecommender rec(&HashScore);
  EXPECT_TRUE(rec.RecommendTopK(f.world.dataset, 0, 1, 0).empty());

  std::unordered_set<PoiId> all(f.world.dataset.PoisInCity(0).begin(),
                                f.world.dataset.PoisInCity(0).end());
  EXPECT_TRUE(rec.RecommendTopK(f.world.dataset, 0, 1, 5, &all).empty());

  // Excluding one POI shifts the ranking but never returns the excluded id.
  const auto top = rec.RecommendTopK(f.world.dataset, 0, 1, 5);
  ASSERT_FALSE(top.empty());
  std::unordered_set<PoiId> one{top.front().first};
  const auto rest = rec.RecommendTopK(f.world.dataset, 0, 1, 5, &one);
  EXPECT_EQ(rest, FullSortTopK(rec, f.world.dataset, 0, 1, 5, &one));
  for (const auto& [poi, score] : rest) EXPECT_NE(poi, top.front().first);
}

}  // namespace
}  // namespace sttr
