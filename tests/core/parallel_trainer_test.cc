#include "core/parallel_trainer.h"

#include <gtest/gtest.h>

#include "data/synth/world_generator.h"

namespace sttr {
namespace {

struct Fixture {
  synth::SynthWorld world;
  CrossCitySplit split;
};

const Fixture& SharedFixture() {
  static const Fixture* f = [] {
    auto cfg = synth::SynthWorldConfig::FoursquareLike(synth::Scale::kTiny);
    auto* out = new Fixture{synth::GenerateWorld(cfg), {}};
    out->split = MakeCrossCitySplit(out->world.dataset, cfg.target_city);
    return out;
  }();
  return *f;
}

StTransRecConfig TestConfig() {
  StTransRecConfig cfg;
  cfg.embedding_dim = 16;
  cfg.hidden_dims = {32, 16};
  cfg.batch_size = 64;
  cfg.mmd_batch = 16;
  cfg.learning_rate = 1e-2f;
  return cfg;
}

TEST(ParallelTrainerTest, SingleWorkerTrains) {
  const auto& f = SharedFixture();
  ParallelTrainer trainer(TestConfig(), 1);
  ASSERT_TRUE(trainer.Init(f.world.dataset, f.split).ok());
  const double secs = trainer.RunIterations(5);
  EXPECT_GT(secs, 0.0);
}

TEST(ParallelTrainerTest, TwoWorkersTrainAndModelScores) {
  const auto& f = SharedFixture();
  ParallelTrainer trainer(TestConfig(), 2);
  ASSERT_TRUE(trainer.Init(f.world.dataset, f.split).ok());
  ASSERT_TRUE(trainer.TrainEpochs(2).ok());
  const UserId u = f.split.test_users.front().user;
  const PoiId v = f.world.dataset.PoisInCity(0).front();
  const double s = trainer.master().Score(u, v);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

TEST(ParallelTrainerTest, TwoWorkersReachUsefulModel) {
  const auto& f = SharedFixture();
  auto cfg = TestConfig();
  ParallelTrainer trainer(cfg, 2);
  ASSERT_TRUE(trainer.Init(f.world.dataset, f.split).ok());
  ASSERT_TRUE(trainer.TrainEpochs(6).ok());
  EvalConfig ec;
  const EvalResult r =
      EvaluateRanking(f.world.dataset, f.split, trainer.master(), ec);
  EXPECT_GT(r.At(10).recall, 0.11);  // above the ~0.096 chance level
}

TEST(ParallelTrainerTest, GradAggregationLeavesReplicasClean) {
  const auto& f = SharedFixture();
  ParallelTrainer trainer(TestConfig(), 2);
  ASSERT_TRUE(trainer.Init(f.world.dataset, f.split).ok());
  trainer.RunIterations(1);
  // After an iteration the master applied the step; a fresh iteration must
  // start from zero master gradient (Step() clears it).
  for (const auto& p : trainer.master().Parameters()) {
    EXPECT_EQ(p.grad().MaxAbs(), 0.0);
  }
}

TEST(ParallelTrainerTest, WorkersSeeSameWeightsAfterBroadcast) {
  const auto& f = SharedFixture();
  ParallelTrainer trainer(TestConfig(), 2);
  ASSERT_TRUE(trainer.Init(f.world.dataset, f.split).ok());
  trainer.RunIterations(3);
  // Master Score must be usable; replicas are internal, but at minimum the
  // training must have moved the master away from initialisation.
  double total = 0;
  for (const auto& p : trainer.master().Parameters()) {
    total += p.value().MaxAbs();
  }
  EXPECT_GT(total, 0.0);
}

TEST(ParallelTrainerDeathTest, ZeroWorkersAborts) {
  EXPECT_DEATH(ParallelTrainer(TestConfig(), 0), "");
}

TEST(ParallelTrainerDeathTest, RunBeforeInitAborts) {
  ParallelTrainer trainer(TestConfig(), 1);
  EXPECT_DEATH(trainer.RunIterations(1), "Init");
}

}  // namespace
}  // namespace sttr
