// Kill-and-resume tests for the crash-safe checkpointing in StTransRec:
// training interrupted at a checkpointed epoch and resumed in a fresh
// process must be indistinguishable — bit-identical loss history and
// scores — from an uninterrupted run, for both the serial and the
// data-parallel trainer. The fault-injection soak at the bottom proves a
// failure at any IO step never leaves a torn checkpoint behind.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/st_transrec.h"
#include "data/synth/world_generator.h"
#include "util/fault_injection.h"

namespace sttr {
namespace {

std::string TestDir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::filesystem::path dir = ::testing::TempDir();
  dir /= std::string("sttr_resume_") + info->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

struct Fixture {
  synth::SynthWorld world;
  CrossCitySplit split;
};

Fixture MakeFixture() {
  auto cfg = synth::SynthWorldConfig::FoursquareLike(synth::Scale::kTiny);
  Fixture f{synth::GenerateWorld(cfg), {}};
  f.split = MakeCrossCitySplit(f.world.dataset, cfg.target_city);
  return f;
}

StTransRecConfig SmallConfig(size_t workers) {
  StTransRecConfig cfg;
  cfg.embedding_dim = 8;
  cfg.hidden_dims = {16};
  cfg.num_epochs = 4;
  cfg.batch_size = 32;
  cfg.mmd_batch = 8;
  cfg.num_train_workers = workers;
  return cfg;
}

/// Scores of `model` for one test user over every target-city POI.
std::vector<double> TargetScores(const StTransRec& model, const Fixture& f) {
  const UserId u = f.split.test_users.front().user;
  const auto& pois = f.world.dataset.PoisInCity(f.split.target_city);
  return model.ScoreBatch(u, {pois.data(), pois.size()});
}

/// The acceptance criterion of the checkpointing subsystem: train
/// uninterrupted for num_epochs; separately train to `kill_at` epochs with
/// checkpointing on, then Resume() a fresh model from the directory. Both
/// loss histories and all scores must be bit-identical.
void ExpectKillAndResumeBitIdentical(size_t workers, size_t kill_at) {
  auto f = MakeFixture();

  auto full_cfg = SmallConfig(workers);
  StTransRec uninterrupted(full_cfg);
  ASSERT_TRUE(uninterrupted.Fit(f.world.dataset, f.split).ok());

  const std::string dir = TestDir();
  auto killed_cfg = SmallConfig(workers);
  killed_cfg.num_epochs = kill_at;  // the "crash" after epoch kill_at
  killed_cfg.checkpoint_dir = dir;
  StTransRec killed(killed_cfg);
  ASSERT_TRUE(killed.Fit(f.world.dataset, f.split).ok());

  auto resumed_cfg = SmallConfig(workers);
  resumed_cfg.checkpoint_dir = dir;
  StTransRec resumed(resumed_cfg);
  ASSERT_TRUE(resumed.Resume(f.world.dataset, f.split).ok());

  ASSERT_EQ(resumed.loss_history().size(),
            uninterrupted.loss_history().size());
  for (size_t e = 0; e < resumed.loss_history().size(); ++e) {
    EXPECT_DOUBLE_EQ(resumed.loss_history()[e],
                     uninterrupted.loss_history()[e])
        << "epoch " << e;
  }
  const auto want = TargetScores(uninterrupted, f);
  const auto got = TargetScores(resumed, f);
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_DOUBLE_EQ(want[i], got[i]) << "poi index " << i;
  }
}

TEST(ResumeTest, SerialKillAndResumeIsBitIdentical) {
  ExpectKillAndResumeBitIdentical(/*workers=*/1, /*kill_at=*/2);
}

TEST(ResumeTest, ParallelKillAndResumeIsBitIdentical) {
  ExpectKillAndResumeBitIdentical(/*workers=*/2, /*kill_at=*/2);
}

TEST(ResumeTest, SerialKillAfterOneEpochResumes) {
  ExpectKillAndResumeBitIdentical(/*workers=*/1, /*kill_at=*/1);
}

TEST(ResumeTest, EmptyDirectoryIsNotFound) {
  auto f = MakeFixture();
  auto cfg = SmallConfig(1);
  cfg.checkpoint_dir = TestDir();
  StTransRec model(cfg);
  EXPECT_EQ(model.Resume(f.world.dataset, f.split).code(),
            StatusCode::kNotFound);
}

TEST(ResumeTest, NoDirectoryConfiguredIsInvalidArgument) {
  auto f = MakeFixture();
  StTransRec model(SmallConfig(1));
  EXPECT_EQ(model.Resume(f.world.dataset, f.split).code(),
            StatusCode::kInvalidArgument);
}

TEST(ResumeTest, DifferentConfigIsRejected) {
  auto f = MakeFixture();
  const std::string dir = TestDir();
  auto cfg = SmallConfig(1);
  cfg.num_epochs = 1;
  cfg.checkpoint_dir = dir;
  StTransRec writer(cfg);
  ASSERT_TRUE(writer.Fit(f.world.dataset, f.split).ok());

  auto other = SmallConfig(1);
  other.checkpoint_dir = dir;
  other.learning_rate = 5e-3f;  // hyper-parameter drift since the checkpoint
  StTransRec model(other);
  const Status s = model.Resume(f.world.dataset, f.split);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("different config"), std::string::npos);
}

TEST(ResumeTest, ChangedWorkerCountIsRejected) {
  auto f = MakeFixture();
  const std::string dir = TestDir();
  auto cfg = SmallConfig(1);
  cfg.num_epochs = 1;
  cfg.checkpoint_dir = dir;
  StTransRec writer(cfg);
  ASSERT_TRUE(writer.Fit(f.world.dataset, f.split).ok());

  auto parallel = SmallConfig(2);
  parallel.checkpoint_dir = dir;
  StTransRec model(parallel);
  EXPECT_EQ(model.Resume(f.world.dataset, f.split).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ResumeTest, AlreadyCompleteRunResumesToFittedNoop) {
  auto f = MakeFixture();
  const std::string dir = TestDir();
  auto cfg = SmallConfig(1);
  cfg.num_epochs = 2;
  cfg.checkpoint_dir = dir;
  StTransRec writer(cfg);
  ASSERT_TRUE(writer.Fit(f.world.dataset, f.split).ok());

  StTransRec model(cfg);  // same epoch budget: nothing left to train
  ASSERT_TRUE(model.Resume(f.world.dataset, f.split).ok());
  EXPECT_EQ(model.loss_history().size(), 2u);
  const auto want = TargetScores(writer, f);
  const auto got = TargetScores(model, f);
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_DOUBLE_EQ(want[i], got[i]);
  }
}

TEST(ResumeTest, CheckpointCadenceAndFinalEpoch) {
  auto f = MakeFixture();
  const std::string dir = TestDir();
  auto cfg = SmallConfig(1);
  cfg.num_epochs = 5;
  cfg.checkpoint_every_n_epochs = 2;
  cfg.checkpoint_keep_last = 10;
  cfg.checkpoint_dir = dir;
  StTransRec model(cfg);
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());
  // Epochs 2 and 4 by cadence, 5 because the final epoch always checkpoints.
  EXPECT_EQ(*Env::Default()->ListDir(dir),
            (std::vector<std::string>{CheckpointFileName(2),
                                      CheckpointFileName(4),
                                      CheckpointFileName(5)}));
}

TEST(ResumeTest, RotationKeepsLastK) {
  auto f = MakeFixture();
  const std::string dir = TestDir();
  auto cfg = SmallConfig(1);
  cfg.num_epochs = 4;
  cfg.checkpoint_keep_last = 2;
  cfg.checkpoint_dir = dir;
  StTransRec model(cfg);
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());
  EXPECT_EQ(*Env::Default()->ListDir(dir),
            (std::vector<std::string>{CheckpointFileName(3),
                                      CheckpointFileName(4)}));
}

using Op = FaultInjectionEnv::Op;

/// Fault-injection soak: fail each write, fsync and rename of the checkpoint
/// write protocol in turn (with torn writes on, so a failed write leaves half
/// the bytes behind). Every failure must surface as a Status, and the
/// directory must still hold a fully valid checkpoint afterwards — the
/// previous one if the new write did not complete.
TEST(CheckpointFaultSoakTest, EveryIoFaultLeavesAValidCheckpoint) {
  auto f = MakeFixture();
  FaultInjectionEnv fenv;
  const std::string dir = TestDir();
  auto cfg = SmallConfig(1);
  cfg.num_epochs = 1;
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_keep_last = 1;
  cfg.env = &fenv;
  StTransRec model(cfg);
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());

  // Dry run to count the IO operations one checkpoint write performs.
  fenv.Reset();
  ASSERT_TRUE(model.WriteCheckpoint().ok());
  const std::vector<std::pair<Op, size_t>> plan = {
      {Op::kWrite, fenv.op_count(Op::kWrite)},
      {Op::kFsync, fenv.op_count(Op::kFsync)},
      {Op::kRename, fenv.op_count(Op::kRename)},
  };

  const auto expect_dir_still_valid = [&](const std::string& context) {
    auto names = fenv.ListDir(dir);
    ASSERT_TRUE(names.ok());
    size_t valid = 0;
    for (const std::string& name : *names) {
      if (IsTempFileName(name)) continue;  // residue, ignored by recovery
      EXPECT_TRUE(CheckpointReader::Open(fenv, dir + "/" + name).ok())
          << context << ": torn checkpoint " << name;
      ++valid;
    }
    EXPECT_GE(valid, 1u) << context;
    EXPECT_TRUE(FindLatestValidCheckpoint(fenv, dir).ok()) << context;
  };

  for (const auto& [op, count] : plan) {
    ASSERT_GT(count, 0u);
    for (size_t n = 0; n < count; ++n) {
      fenv.Reset();
      fenv.set_torn_writes(true);
      fenv.FailNth(op, n);
      const Status s = model.WriteCheckpoint();
      EXPECT_FALSE(s.ok());
      EXPECT_EQ(fenv.faults_triggered(), 1u);
      fenv.Reset();  // verification IO runs fault-free
      expect_dir_still_valid("op " + std::to_string(static_cast<int>(op)) +
                             " #" + std::to_string(n));
    }
  }

  // A failed Remove during rotation reports the error but the freshly
  // written checkpoint stays the valid newest one.
  const std::string stale = dir + "/" + CheckpointFileName(0);
  ASSERT_TRUE(
      fenv.WriteFile(stale, *fenv.ReadFile(*FindLatestValidCheckpoint(
                                fenv, dir)))
          .ok());
  fenv.Reset();
  fenv.FailNth(Op::kRemove, 0);
  EXPECT_FALSE(model.WriteCheckpoint().ok());
  fenv.Reset();
  auto latest = FindLatestValidCheckpoint(fenv, dir);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(BaseName(*latest), CheckpointFileName(1));

  // After all that abuse, a clean write still succeeds and resume works.
  fenv.Reset();
  ASSERT_TRUE(model.WriteCheckpoint().ok());
  StTransRec resumed(cfg);
  ASSERT_TRUE(resumed.Resume(f.world.dataset, f.split).ok());
  EXPECT_EQ(resumed.loss_history().size(), 1u);
}

}  // namespace
}  // namespace sttr
