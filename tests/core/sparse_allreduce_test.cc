#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "autograd/variable.h"
#include "core/parallel_trainer.h"
#include "data/synth/world_generator.h"

namespace sttr {
namespace {

struct Fixture {
  synth::SynthWorld world;
  CrossCitySplit split;
};

const Fixture& SharedFixture() {
  static const Fixture* f = [] {
    auto cfg = synth::SynthWorldConfig::FoursquareLike(synth::Scale::kTiny);
    auto* out = new Fixture{synth::GenerateWorld(cfg), {}};
    out->split = MakeCrossCitySplit(out->world.dataset, cfg.target_city);
    return out;
  }();
  return *f;
}

StTransRecConfig TestConfig() {
  StTransRecConfig cfg;
  cfg.embedding_dim = 16;
  cfg.hidden_dims = {32, 16};
  cfg.batch_size = 64;
  cfg.mmd_batch = 16;
  cfg.learning_rate = 1e-2f;
  return cfg;
}

void ExpectParamsBitIdentical(StTransRec& a, StTransRec& b) {
  const auto pa = a.Parameters();
  const auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    const Tensor& ta = pa[i].value();
    const Tensor& tb = pb[i].value();
    ASSERT_EQ(ta.size(), tb.size()) << "param " << i;
    EXPECT_EQ(0, std::memcmp(ta.data(), tb.data(), ta.size() * sizeof(float)))
        << "param " << i << " diverged";
  }
}

// The tentpole guarantee: reducing/broadcasting only touched embedding rows
// must produce exactly the parameters the dense whole-table walk produces —
// both modes fold replicas per row in the same order with the same kernel.
TEST(SparseAllReduceTest, SparseBitIdenticalToDenseReference) {
  const auto& f = SharedFixture();
  ParallelTrainer sparse(TestConfig(), 2);
  ParallelTrainer dense(TestConfig(), 2);
  sparse.set_reduce_mode(ParallelTrainer::ReduceMode::kSparse);
  dense.set_reduce_mode(ParallelTrainer::ReduceMode::kDense);
  ASSERT_TRUE(sparse.Init(f.world.dataset, f.split).ok());
  ASSERT_TRUE(dense.Init(f.world.dataset, f.split).ok());
  sparse.RunIterations(5);
  dense.RunIterations(5);
  ExpectParamsBitIdentical(sparse.master(), dense.master());
}

TEST(SparseAllReduceTest, RepeatedRunsAreBitIdentical) {
  const auto& f = SharedFixture();
  ParallelTrainer a(TestConfig(), 2);
  ParallelTrainer b(TestConfig(), 2);
  ASSERT_TRUE(a.Init(f.world.dataset, f.split).ok());
  ASSERT_TRUE(b.Init(f.world.dataset, f.split).ok());
  a.RunIterations(4);
  b.RunIterations(4);
  ExpectParamsBitIdentical(a.master(), b.master());
}

TEST(SparseAllReduceTest, TrainEpochsRecordsLossHistory) {
  const auto& f = SharedFixture();
  ParallelTrainer trainer(TestConfig(), 2);
  ASSERT_TRUE(trainer.Init(f.world.dataset, f.split).ok());
  ASSERT_TRUE(trainer.TrainEpochs(3).ok());
  const auto& history = trainer.master().loss_history();
  ASSERT_EQ(history.size(), 3u);
  for (double l : history) {
    EXPECT_TRUE(std::isfinite(l));
    EXPECT_GT(l, 0.0);
  }
}

TEST(SparseAllReduceTest, FitRoutesThroughParallelTrainer) {
  const auto& f = SharedFixture();
  auto cfg = TestConfig();
  cfg.num_train_workers = 2;
  cfg.num_epochs = 2;
  StTransRec model(cfg);
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());
  ASSERT_EQ(model.loss_history().size(), 2u);
  const UserId u = f.split.test_users.front().user;
  const PoiId v = f.world.dataset.PoisInCity(0).front();
  const double s = model.Score(u, v);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

TEST(SparseAllReduceTest, ParallelFitIsDeterministic) {
  const auto& f = SharedFixture();
  auto cfg = TestConfig();
  cfg.num_train_workers = 2;
  cfg.num_epochs = 1;
  StTransRec a(cfg);
  StTransRec b(cfg);
  ASSERT_TRUE(a.Fit(f.world.dataset, f.split).ok());
  ASSERT_TRUE(b.Fit(f.world.dataset, f.split).ok());
  ExpectParamsBitIdentical(a, b);
  ASSERT_EQ(a.loss_history().size(), b.loss_history().size());
  for (size_t i = 0; i < a.loss_history().size(); ++i) {
    EXPECT_EQ(a.loss_history()[i], b.loss_history()[i]);
  }
}

TEST(SparseAllReduceTest, DefaultTrainWorkersReadsEnvironment) {
  ASSERT_EQ(setenv("STTR_TRAIN_WORKERS", "3", 1), 0);
  EXPECT_EQ(DefaultTrainWorkers(), 3u);
  ASSERT_EQ(setenv("STTR_TRAIN_WORKERS", "0", 1), 0);
  EXPECT_EQ(DefaultTrainWorkers(), 1u);
  ASSERT_EQ(setenv("STTR_TRAIN_WORKERS", "junk", 1), 0);
  EXPECT_EQ(DefaultTrainWorkers(), 1u);
  ASSERT_EQ(unsetenv("STTR_TRAIN_WORKERS"), 0);
  EXPECT_EQ(DefaultTrainWorkers(), 1u);
}

// Regression guards: the lazy-Adam path depends on touched_rows being
// maintained and cleared correctly by both grad-clearing entry points.
TEST(SparseAllReduceTest, ZeroGradSparseClearsOnlyTouchedRows) {
  ag::Variable v(Tensor({4, 3}), /*requires_grad=*/true);
  v.mutable_grad().Fill(1.0f);
  v.node()->touched_rows = {1, 3, 3};  // duplicates allowed
  v.ZeroGradSparse();
  EXPECT_TRUE(v.touched_rows().empty());
  const Tensor& g = v.grad();
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(g[0 * 3 + j], 1.0f);  // untouched rows keep their values
    EXPECT_EQ(g[1 * 3 + j], 0.0f);
    EXPECT_EQ(g[2 * 3 + j], 1.0f);
    EXPECT_EQ(g[3 * 3 + j], 0.0f);
  }
}

TEST(SparseAllReduceTest, ZeroGradSparseFallsBackToDenseClear) {
  ag::Variable v(Tensor({4, 3}), /*requires_grad=*/true);
  v.mutable_grad().Fill(2.0f);
  v.ZeroGradSparse();  // no touched rows recorded
  EXPECT_EQ(v.grad().MaxAbs(), 0.0);
}

TEST(SparseAllReduceTest, ZeroGradClearsTouchedRows) {
  ag::Variable v(Tensor({4, 3}), /*requires_grad=*/true);
  v.mutable_grad().Fill(1.0f);
  v.node()->touched_rows = {0, 2};
  v.ZeroGrad();
  EXPECT_TRUE(v.touched_rows().empty());
  EXPECT_EQ(v.grad().MaxAbs(), 0.0);
}

}  // namespace
}  // namespace sttr
