// Unit tests for the v3 delta checkpoint format (core/delta.h): container
// roundtrip, provenance fields, corruption/version rejection, the
// delta-directory naming scheme, torn-file skipping and rotation.

#include "core/delta.h"

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"

namespace sttr {
namespace {

std::string DeltaTestDir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::filesystem::path dir = ::testing::TempDir();
  dir /= std::string("sttr_delta_") + info->test_suite_name() + "_" +
         info->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// A fully populated delta with distinct content per table.
DeltaCheckpoint MakeDelta(uint64_t seq) {
  DeltaCheckpoint d;
  d.base_epoch = 7;
  d.base_model_crc = 0xdeadbeef;
  d.seq = seq;
  d.events_applied = 96;
  d.config_fingerprint = "fp:test";
  d.user.dim = 4;
  d.user.rows = {2, 5};
  d.user.values = {1, 2, 3, 4, 5, 6, 7, 8};
  d.poi.dim = 4;
  d.poi.rows = {0};
  d.poi.values = {9, 10, 11, 12};
  d.word.dim = 4;  // zero rows is legal: no word touched this delta
  return d;
}

TEST(DeltaCheckpointTest, EncodeParseRoundtrip) {
  const DeltaCheckpoint d = MakeDelta(3);
  const std::string bytes = EncodeDeltaCheckpoint(d);
  StatusOr<CheckpointReader> reader = CheckpointReader::Parse(bytes);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->version(), kDeltaCheckpointFormatVersion);

  StatusOr<DeltaCheckpoint> back = ParseDeltaCheckpoint(*reader);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->base_epoch, 7u);
  EXPECT_EQ(back->base_model_crc, 0xdeadbeefu);
  EXPECT_EQ(back->seq, 3u);
  EXPECT_EQ(back->events_applied, 96u);
  EXPECT_EQ(back->config_fingerprint, "fp:test");
  EXPECT_EQ(back->user.rows, d.user.rows);
  EXPECT_EQ(back->user.values, d.user.values);
  EXPECT_EQ(back->poi.rows, d.poi.rows);
  EXPECT_EQ(back->poi.values, d.poi.values);
  EXPECT_EQ(back->word.num_rows(), 0u);
  EXPECT_TRUE(back->dense_params.empty());
  EXPECT_EQ(back->total_rows(), 3u);
}

TEST(DeltaCheckpointTest, DensePayloadRoundtrips) {
  DeltaCheckpoint d = MakeDelta(1);
  d.dense_params = std::string("\x01\x02\x00\x03", 4);
  StatusOr<CheckpointReader> reader =
      CheckpointReader::Parse(EncodeDeltaCheckpoint(d));
  ASSERT_TRUE(reader.ok());
  StatusOr<DeltaCheckpoint> back = ParseDeltaCheckpoint(*reader);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->dense_params, d.dense_params);
}

TEST(DeltaCheckpointTest, WriteReadRoundtrip) {
  const std::string dir = DeltaTestDir();
  const std::string path = dir + "/" + DeltaFileName(1);
  ASSERT_TRUE(WriteDeltaCheckpoint(*Env::Default(), path, MakeDelta(1)).ok());
  StatusOr<DeltaCheckpoint> back = ReadDeltaCheckpoint(*Env::Default(), path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->seq, 1u);
  EXPECT_EQ(back->user.num_rows(), 2u);
}

TEST(DeltaCheckpointTest, RejectsNonDeltaVersion) {
  // A well-formed v1 container is not a delta and must be refused, not
  // misparsed.
  CheckpointWriter writer(kCheckpointFormatVersion);
  writer.AddSection("meta", std::string(8, '\0'));
  StatusOr<CheckpointReader> reader = CheckpointReader::Parse(writer.Encode());
  ASSERT_TRUE(reader.ok());
  StatusOr<DeltaCheckpoint> parsed = ParseDeltaCheckpoint(*reader);
  EXPECT_FALSE(parsed.ok());
}

TEST(DeltaCheckpointTest, CorruptionIsDetected) {
  std::string bytes = EncodeDeltaCheckpoint(MakeDelta(2));
  // Flip one payload byte near the end: some section's CRC must catch it.
  bytes[bytes.size() - 3] ^= 0x40;
  StatusOr<CheckpointReader> reader = CheckpointReader::Parse(bytes);
  EXPECT_FALSE(reader.ok());
}

TEST(DeltaCheckpointTest, TruncatedRowSectionRejected) {
  // A well-formed v3 container whose row section claims 2 rows but carries
  // bytes for 1: the container CRC passes, so only the decode-time size
  // check can refuse it.
  CheckpointWriter writer(kDeltaCheckpointFormatVersion);
  std::string meta;
  AppendU64(meta, 7);           // base_epoch
  AppendU32(meta, 0xdeadbeef);  // base_model_crc
  AppendU64(meta, 1);           // seq
  AppendU64(meta, 1);           // events
  writer.AddSection("delta_meta", std::move(meta));
  writer.AddSection("config", "fp:test");
  std::string rows;
  AppendU64(rows, 4);                    // dim
  AppendU64(rows, 2);                    // claims two rows...
  AppendU64(rows, 2);                    // row id
  rows.append(4 * sizeof(float), '\0');  // ...carries one
  writer.AddSection("delta_rows_user", std::move(rows));
  std::string empty_table;
  AppendU64(empty_table, 4);
  AppendU64(empty_table, 0);
  writer.AddSection("delta_rows_poi", empty_table);
  writer.AddSection("delta_rows_word", empty_table);

  StatusOr<CheckpointReader> reader = CheckpointReader::Parse(writer.Encode());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  StatusOr<DeltaCheckpoint> parsed = ParseDeltaCheckpoint(*reader);
  EXPECT_FALSE(parsed.ok());
}

TEST(DeltaFileNameTest, Roundtrip) {
  EXPECT_EQ(DeltaFileName(7), "delta-000007.sttr");
  StatusOr<uint64_t> seq = ParseDeltaSeq("delta-000042.sttr");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 42u);
  EXPECT_FALSE(ParseDeltaSeq("ckpt-000042.sttr").ok());
  EXPECT_FALSE(ParseDeltaSeq("delta-000042.sttr.tmp.123").ok());
  EXPECT_FALSE(ParseDeltaSeq("delta-.sttr").ok());
}

TEST(DeltaDirTest, FindLatestSkipsTornNewest) {
  const std::string dir = DeltaTestDir();
  Env& env = *Env::Default();
  ASSERT_TRUE(
      WriteDeltaCheckpoint(env, dir + "/" + DeltaFileName(1), MakeDelta(1))
          .ok());
  ASSERT_TRUE(
      WriteDeltaCheckpoint(env, dir + "/" + DeltaFileName(2), MakeDelta(2))
          .ok());
  // Newest is torn mid-write: truncate its bytes.
  StatusOr<std::string> full = env.ReadFile(dir + "/" + DeltaFileName(2));
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(env.WriteFile(dir + "/" + DeltaFileName(2),
                            std::string_view(*full).substr(0, full->size() / 2))
                  .ok());
  StatusOr<std::string> latest = FindLatestValidDelta(env, dir);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(*latest, dir + "/" + DeltaFileName(1));
}

TEST(DeltaDirTest, FindLatestEmptyDirIsNotFound) {
  const std::string dir = DeltaTestDir();
  StatusOr<std::string> latest = FindLatestValidDelta(*Env::Default(), dir);
  EXPECT_FALSE(latest.ok());
  EXPECT_EQ(latest.status().code(), StatusCode::kNotFound);
}

TEST(DeltaDirTest, RotateKeepsNewestK) {
  const std::string dir = DeltaTestDir();
  Env& env = *Env::Default();
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    ASSERT_TRUE(WriteDeltaCheckpoint(env, dir + "/" + DeltaFileName(seq),
                                     MakeDelta(seq))
                    .ok());
  }
  ASSERT_TRUE(RotateDeltas(env, dir, 2).ok());
  StatusOr<std::vector<std::string>> names = env.ListDir(dir);
  ASSERT_TRUE(names.ok());
  std::vector<std::string> kept = *names;
  std::sort(kept.begin(), kept.end());
  EXPECT_EQ(kept,
            (std::vector<std::string>{DeltaFileName(4), DeltaFileName(5)}));
  EXPECT_FALSE(RotateDeltas(env, dir, 0).ok());
}

}  // namespace
}  // namespace sttr
