#include "core/st_transrec.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synth/world_generator.h"

namespace sttr {
namespace {

struct Fixture {
  synth::SynthWorld world;
  CrossCitySplit split;
};

const Fixture& SharedFixture() {
  static const Fixture* f = [] {
    auto cfg = synth::SynthWorldConfig::FoursquareLike(synth::Scale::kTiny);
    auto* out = new Fixture{synth::GenerateWorld(cfg), {}};
    out->split = MakeCrossCitySplit(out->world.dataset, cfg.target_city);
    return out;
  }();
  return *f;
}

/// Small/fast config for tests.
StTransRecConfig TestConfig() {
  StTransRecConfig cfg;
  cfg.embedding_dim = 16;
  cfg.hidden_dims = {32, 16};
  cfg.num_epochs = 2;
  cfg.batch_size = 64;
  cfg.mmd_batch = 16;
  cfg.learning_rate = 1e-2f;
  return cfg;
}

TEST(StTransRecTest, VariantNames) {
  EXPECT_EQ(StTransRec(TestConfig()).name(), "ST-TransRec");
  EXPECT_EQ(StTransRec(MakeVariant1(TestConfig())).name(), "ST-TransRec-1");
  EXPECT_EQ(StTransRec(MakeVariant2(TestConfig())).name(), "ST-TransRec-2");
  EXPECT_EQ(StTransRec(MakeVariant3(TestConfig())).name(), "ST-TransRec-3");
}

TEST(StTransRecTest, VariantFactoriesFlipExactlyOneSwitch) {
  const auto base = TestConfig();
  const auto v1 = MakeVariant1(base);
  EXPECT_FALSE(v1.use_mmd);
  EXPECT_TRUE(v1.use_text);
  EXPECT_EQ(v1.resample_alpha, base.resample_alpha);
  const auto v2 = MakeVariant2(base);
  EXPECT_FALSE(v2.use_text);
  EXPECT_TRUE(v2.use_mmd);
  const auto v3 = MakeVariant3(base);
  EXPECT_EQ(v3.resample_alpha, 0.0);
  EXPECT_TRUE(v3.use_mmd);
}

TEST(StTransRecTest, FitProducesDecreasingLoss) {
  const auto& f = SharedFixture();
  auto cfg = TestConfig();
  cfg.num_epochs = 4;
  StTransRec model(cfg);
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());
  const auto& hist = model.loss_history();
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_LT(hist.back(), hist.front());
}

TEST(StTransRecTest, ScoresAreProbabilities) {
  const auto& f = SharedFixture();
  StTransRec model(TestConfig());
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());
  const UserId u = f.split.test_users.front().user;
  for (PoiId v : f.world.dataset.PoisInCity(0)) {
    const double s = model.Score(u, v);
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(StTransRecTest, ScoreIsDeterministicAfterFit) {
  const auto& f = SharedFixture();
  StTransRec model(TestConfig());
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());
  const UserId u = f.split.test_users.front().user;
  const PoiId v = f.world.dataset.PoisInCity(0).front();
  EXPECT_DOUBLE_EQ(model.Score(u, v), model.Score(u, v));
}

TEST(StTransRecTest, BeatsRandomRanking) {
  const auto& f = SharedFixture();
  auto cfg = TestConfig();
  cfg.num_epochs = 10;
  StTransRec model(cfg);
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());
  EvalConfig ec;
  const EvalResult r = EvaluateRanking(f.world.dataset, f.split, model, ec);
  // Chance level for Recall@10 with 100 negatives is ~0.096.
  EXPECT_GT(r.At(10).recall, 0.11);
}

TEST(StTransRecTest, AllVariantsTrainAndScore) {
  const auto& f = SharedFixture();
  for (auto make : {&MakeVariant1, &MakeVariant2, &MakeVariant3}) {
    StTransRec model(make(TestConfig()));
    ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok()) << model.name();
    const UserId u = f.split.test_users.front().user;
    const PoiId v = f.world.dataset.PoisInCity(0).front();
    EXPECT_TRUE(std::isfinite(model.Score(u, v))) << model.name();
  }
}

TEST(StTransRecTest, GeoContextVariantTrains) {
  const auto& f = SharedFixture();
  auto cfg = TestConfig();
  cfg.use_geo_context = true;
  cfg.geo_neighbors = 3;
  StTransRec model(cfg);
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());
  Rng rng(1);
  const TrainingBatch batch = model.SampleBatch(rng);
  EXPECT_FALSE(batch.geo_pois_a.empty());
  EXPECT_EQ(batch.geo_pois_a.size(), batch.geo_pois_b.size());
}

TEST(StTransRecTest, SampleBatchShapes) {
  const auto& f = SharedFixture();
  auto cfg = TestConfig();
  StTransRec model(cfg);
  ASSERT_TRUE(model.Prepare(f.world.dataset, f.split).ok());
  Rng rng(2);
  const TrainingBatch batch = model.SampleBatch(rng);
  const size_t rows = cfg.batch_size * (1 + cfg.negatives_per_positive);
  EXPECT_EQ(batch.users.size(), rows);
  EXPECT_EQ(batch.pois.size(), rows);
  EXPECT_EQ(batch.labels.size(), rows);
  EXPECT_EQ(batch.sg_pois.size(),
            cfg.batch_size * (1 + cfg.word_negatives));
  EXPECT_EQ(batch.mmd_source.size(), cfg.mmd_batch);
  EXPECT_EQ(batch.mmd_target.size(), cfg.mmd_batch);
  // One in (1 + negatives) labels are positive.
  EXPECT_NEAR(batch.labels.Mean(), 1.0 / (1 + cfg.negatives_per_positive),
              1e-6);
}

TEST(StTransRecTest, NegativesAreUnvisitedSameCity) {
  const auto& f = SharedFixture();
  StTransRec model(TestConfig());
  ASSERT_TRUE(model.Prepare(f.world.dataset, f.split).ok());
  Rng rng(3);
  const TrainingBatch batch = model.SampleBatch(rng);
  for (size_t i = 0; i + 1 < batch.pois.size(); i += 5) {
    const CityId city = f.world.dataset.poi(batch.pois[i]).city;
    for (size_t j = 1; j <= 4; ++j) {
      EXPECT_EQ(f.world.dataset.poi(batch.pois[i + j]).city, city);
    }
  }
}

TEST(StTransRecTest, VariantThreeHasNoResampledPool) {
  const auto& f = SharedFixture();
  StTransRec with(TestConfig());
  StTransRec without(MakeVariant3(TestConfig()));
  ASSERT_TRUE(with.Prepare(f.world.dataset, f.split).ok());
  ASSERT_TRUE(without.Prepare(f.world.dataset, f.split).ok());
  // alpha=0 -> pool has exactly the raw check-ins; alpha>0 adds extras
  // whenever any region is below max density.
  size_t with_extra = 0;
  for (const auto& rs : with.resamplers()) with_extra += rs.TotalDeficit();
  EXPECT_GT(with_extra, 0u);
}

TEST(StTransRecTest, NaiveSegmentationUsesPerCellRegions) {
  const auto& f = SharedFixture();
  auto cfg = TestConfig();
  cfg.use_region_merging = false;
  StTransRec model(cfg);
  ASSERT_TRUE(model.Prepare(f.world.dataset, f.split).ok());
  // Every city with check-ins gets exactly grid_rows*grid_cols regions.
  const auto& rs = model.resamplers()[0];
  EXPECT_EQ(rs.stats().size(), cfg.grid_rows * cfg.grid_cols);
}

TEST(StTransRecTest, ComputeGradientsPopulatesLosses) {
  const auto& f = SharedFixture();
  StTransRec model(TestConfig());
  ASSERT_TRUE(model.Prepare(f.world.dataset, f.split).ok());
  Rng rng(4);
  const StepLosses losses = model.ComputeGradients(model.SampleBatch(rng),
                                                   rng);
  EXPECT_GT(losses.interaction, 0.0);
  EXPECT_GT(losses.text, 0.0);
  EXPECT_TRUE(std::isfinite(losses.mmd));
  const auto& cfg = TestConfig();
  EXPECT_NEAR(losses.total,
              losses.interaction + cfg.text_loss_weight * losses.text +
                  cfg.lambda_mmd * losses.mmd,
              0.05);
}

TEST(StTransRecTest, PoiEmbeddingHasConfiguredWidth) {
  const auto& f = SharedFixture();
  StTransRec model(TestConfig());
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());
  EXPECT_EQ(model.PoiEmbedding(0).size(), TestConfig().embedding_dim);
}

TEST(StTransRecTest, TextEmbeddingsClusterByTopic) {
  // After training, POIs sharing a topic should be closer in embedding
  // space than POIs of different topics (the word bridge at work).
  const auto& f = SharedFixture();
  auto cfg = TestConfig();
  cfg.num_epochs = 6;
  StTransRec model(cfg);
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());

  auto cosine = [](const std::vector<float>& a, const std::vector<float>& b) {
    double dot = 0, na = 0, nb = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      dot += static_cast<double>(a[i]) * b[i];
      na += static_cast<double>(a[i]) * a[i];
      nb += static_cast<double>(b[i]) * b[i];
    }
    return dot / (std::sqrt(na * nb) + 1e-12);
  };
  double same = 0, diff = 0;
  size_t n_same = 0, n_diff = 0;
  const auto& pois = f.world.dataset.pois();
  for (size_t i = 0; i < pois.size(); i += 3) {
    for (size_t j = i + 1; j < pois.size(); j += 7) {
      const double c = cosine(model.PoiEmbedding(pois[i].id),
                              model.PoiEmbedding(pois[j].id));
      if (f.world.truth.poi_topic[i] == f.world.truth.poi_topic[j]) {
        same += c;
        ++n_same;
      } else {
        diff += c;
        ++n_diff;
      }
    }
  }
  ASSERT_GT(n_same, 0u);
  ASSERT_GT(n_diff, 0u);
  EXPECT_GT(same / n_same, diff / n_diff);
}

TEST(StTransRecTest, EmptySplitIsInvalidArgument) {
  const auto& f = SharedFixture();
  CrossCitySplit empty;
  empty.target_city = 0;
  StTransRec model(TestConfig());
  const Status s = model.Fit(f.world.dataset, empty);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(StTransRecDeathTest, ScoreBeforeFitAborts) {
  StTransRec model(TestConfig());
  EXPECT_DEATH(model.Score(0, 0), "Fit");
}

TEST(StTransRecTest, ScoreBatchMatchesPerPairScoreExactly) {
  const auto& f = SharedFixture();
  StTransRec model(TestConfig());
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());
  const UserId u = f.split.test_users.front().user;
  const std::vector<PoiId>& candidates = f.world.dataset.PoisInCity(0);
  ASSERT_GT(candidates.size(), 1u);

  // The batched MLP tower (one N x D matmul per layer) must reproduce the
  // per-pair path bit for bit — the ranking protocol depends on it.
  const std::vector<double> batched = model.ScoreBatch(u, candidates);
  ASSERT_EQ(batched.size(), candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(batched[i], model.Score(u, candidates[i])) << "poi index " << i;
  }
  // And against the base-class fallback loop explicitly.
  const std::vector<double> looped =
      model.PoiScorer::ScoreBatch(u, candidates);
  EXPECT_EQ(batched, looped);
}

TEST(StTransRecTest, ScoreBatchHandlesDegenerateSpans) {
  const auto& f = SharedFixture();
  StTransRec model(TestConfig());
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());
  const UserId u = f.split.test_users.front().user;
  EXPECT_TRUE(model.ScoreBatch(u, {}).empty());
  const PoiId v = f.world.dataset.PoisInCity(0).front();
  const std::vector<double> one = model.ScoreBatch(u, {&v, 1});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], model.Score(u, v));
}

TEST(StTransRecTest, RecommendTopKExcludes) {
  const auto& f = SharedFixture();
  StTransRec model(TestConfig());
  ASSERT_TRUE(model.Fit(f.world.dataset, f.split).ok());
  const UserId u = f.split.test_users.front().user;
  auto top = model.RecommendTopK(f.world.dataset, 0, u, 5);
  EXPECT_EQ(top.size(), 5u);
  std::unordered_set<PoiId> exclude{top[0].first};
  auto filtered = model.RecommendTopK(f.world.dataset, 0, u, 5, &exclude);
  for (const auto& [poi, score] : filtered) EXPECT_NE(poi, top[0].first);
  // Scores sorted descending.
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
}

}  // namespace
}  // namespace sttr
