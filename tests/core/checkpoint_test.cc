#include "core/checkpoint.h"

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace sttr {
namespace {

std::string TestDir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::filesystem::path dir = ::testing::TempDir();
  dir /= std::string("sttr_ckpt_") + info->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(Crc32Test, MatchesKnownCheckValue) {
  // The standard CRC-32/IEEE check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, SeedContinuesAcrossPieces) {
  EXPECT_EQ(Crc32("456789", Crc32("123")), Crc32("123456789"));
}

TEST(PackingTest, ScalarRoundTrip) {
  std::string buf;
  AppendU32(buf, 0xDEADBEEFu);
  AppendU64(buf, 0x0123456789ABCDEFull);
  AppendDouble(buf, -2.5);
  std::string_view in(buf);
  uint32_t a = 0;
  uint64_t b = 0;
  double c = 0;
  ASSERT_TRUE(ReadU32(in, &a));
  ASSERT_TRUE(ReadU64(in, &b));
  ASSERT_TRUE(ReadDouble(in, &c));
  EXPECT_EQ(a, 0xDEADBEEFu);
  EXPECT_EQ(b, 0x0123456789ABCDEFull);
  EXPECT_EQ(c, -2.5);
  EXPECT_TRUE(in.empty());
}

TEST(PackingTest, ReadersRefuseTruncatedInput) {
  std::string buf;
  AppendU32(buf, 7);
  std::string_view in(std::string_view(buf).substr(0, 3));
  uint32_t v = 0;
  EXPECT_FALSE(ReadU32(in, &v));
  uint64_t w = 0;
  EXPECT_FALSE(ReadU64(in, &w));
  std::string_view bytes;
  EXPECT_FALSE(ReadBytes(in, 4, &bytes));
  EXPECT_EQ(in.size(), 3u);  // a failed read consumes nothing
}

CheckpointWriter ThreeSectionWriter() {
  CheckpointWriter writer;
  writer.AddSection("alpha", "first payload");
  writer.AddSection("beta", std::string("\x00\x01\x02\x03", 4));
  writer.AddSection("gamma", "");
  return writer;
}

TEST(CheckpointContainerTest, EncodeParseRoundTrip) {
  const std::string bytes = ThreeSectionWriter().Encode();
  auto reader = CheckpointReader::Parse(bytes);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->version(), 1u);
  ASSERT_EQ(reader->sections().size(), 3u);
  EXPECT_TRUE(reader->HasSection("alpha"));
  EXPECT_FALSE(reader->HasSection("delta"));
  EXPECT_EQ(reader->Section("alpha").value(), "first payload");
  EXPECT_EQ(reader->Section("beta").value(),
            std::string("\x00\x01\x02\x03", 4));
  EXPECT_EQ(reader->Section("gamma").value(), "");  // empty payloads are legal
  EXPECT_EQ(reader->Section("delta").status().code(), StatusCode::kNotFound);
}

TEST(CheckpointContainerTest, WriteToAndOpen) {
  const std::string path = TestDir() + "/c.sttr";
  ASSERT_TRUE(ThreeSectionWriter().WriteTo(*Env::Default(), path).ok());
  auto reader = CheckpointReader::Open(*Env::Default(), path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->Section("alpha").value(), "first payload");
}

TEST(CheckpointContainerTest, NotACheckpointFileRejected) {
  EXPECT_FALSE(CheckpointReader::Parse("").ok());
  EXPECT_FALSE(CheckpointReader::Parse("short").ok());
  EXPECT_FALSE(CheckpointReader::Parse("definitely not a checkpoint").ok());
}

TEST(CheckpointContainerTest, TrailingGarbageRejected) {
  std::string bytes = ThreeSectionWriter().Encode();
  bytes.push_back('x');
  auto reader = CheckpointReader::Parse(bytes);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("trailing"), std::string::npos);
}

// Corruption matrix, part 1: truncation at *every* byte offset — which
// includes every section boundary — must fail with a Status, never crash or
// return a partial reader.
TEST(CheckpointCorruptionTest, TruncationAtEveryOffsetFails) {
  const std::string bytes = ThreeSectionWriter().Encode();
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto reader = CheckpointReader::Parse(bytes.substr(0, len));
    EXPECT_FALSE(reader.ok()) << "prefix of length " << len << " parsed";
  }
}

// Corruption matrix, part 2: single-bit flips in every byte whose integrity
// the format guarantees — magic, version, section count, payloads and CRCs —
// must fail. (Section names are not checksummed by design: the per-section
// CRC covers the payload.)
TEST(CheckpointCorruptionTest, BitFlipsInCheckedBytesFail) {
  CheckpointWriter writer;
  const std::vector<std::pair<std::string, std::string>> sections = {
      {"alpha", "first payload"},
      {"beta", std::string("\x00\x01\x02\x03", 4)},
  };
  for (const auto& [name, payload] : sections) {
    writer.AddSection(name, payload);
  }
  const std::string bytes = writer.Encode();

  // Walk the known layout collecting the byte ranges that must be detected.
  std::vector<std::pair<size_t, size_t>> checked;  // [begin, end)
  checked.emplace_back(0, 16);  // magic + version + section count
  size_t off = 16;
  for (const auto& [name, payload] : sections) {
    off += 4 + name.size();                         // name_len + name
    off += 8;                                       // payload_len
    checked.emplace_back(off, off + payload.size());  // payload
    off += payload.size();
    checked.emplace_back(off, off + 4);             // crc
    off += 4;
  }
  ASSERT_EQ(off, bytes.size());

  for (const auto& [begin, end] : checked) {
    for (size_t i = begin; i < end; ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string corrupt = bytes;
        corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
        auto reader = CheckpointReader::Parse(corrupt);
        if (reader.ok()) {
          // A flip inside the version word can land on another *supported*
          // format version (v2 quantized, v3 delta) — a well-formed
          // container by design. The guarantee then lives one layer up:
          // every typed decoder checks its exact version, so the parsed
          // version must differ from the one written.
          ASSERT_GE(i, 8u) << "flip of bit " << bit << " in byte " << i
                           << " parsed";
          ASSERT_LT(i, 12u) << "flip of bit " << bit << " in byte " << i
                            << " parsed";
          EXPECT_NE(reader->version(), kCheckpointFormatVersion);
        }
      }
    }
  }
}

// Corruption never crashes, whatever byte it hits (name bytes may legally
// reparse under a different section name; everything else must error).
TEST(CheckpointCorruptionTest, AnySingleByteCorruptionIsSafe) {
  const std::string bytes = ThreeSectionWriter().Encode();
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    (void)CheckpointReader::Parse(corrupt);  // must not crash / trip ASan
  }
}

TEST(CheckpointDirTest, FileNameRoundTrip) {
  EXPECT_EQ(CheckpointFileName(42), "ckpt-000042.sttr");
  EXPECT_EQ(ParseCheckpointEpoch("ckpt-000042.sttr").value(), 42u);
  EXPECT_FALSE(ParseCheckpointEpoch("ckpt-000042.sttr.tmp.77").ok());
  EXPECT_FALSE(ParseCheckpointEpoch("model.bin").ok());
}

TEST(CheckpointDirTest, LatestSkipsCorruptAndTempFiles) {
  Env& env = *Env::Default();
  const std::string dir = TestDir();
  ASSERT_TRUE(ThreeSectionWriter()
                  .WriteTo(env, dir + "/" + CheckpointFileName(1))
                  .ok());
  ASSERT_TRUE(ThreeSectionWriter()
                  .WriteTo(env, dir + "/" + CheckpointFileName(2))
                  .ok());
  // Corrupt the newest checkpoint and drop a torn temp file next to it.
  std::string bytes = *env.ReadFile(dir + "/" + CheckpointFileName(2));
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  ASSERT_TRUE(env.WriteFile(dir + "/" + CheckpointFileName(2), bytes).ok());
  ASSERT_TRUE(
      env.WriteFile(dir + "/" + CheckpointFileName(3) + ".tmp.99", "torn").ok());

  auto latest = FindLatestValidCheckpoint(env, dir);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(BaseName(*latest), CheckpointFileName(1));
}

TEST(CheckpointDirTest, LatestIsNotFoundWhenNothingValid) {
  Env& env = *Env::Default();
  const std::string dir = TestDir();
  auto r = FindLatestValidCheckpoint(env, dir);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(env.WriteFile(dir + "/ckpt-000001.sttr.tmp.1", "residue").ok());
  EXPECT_EQ(FindLatestValidCheckpoint(env, dir).status().code(),
            StatusCode::kNotFound);
}

TEST(CheckpointDirTest, RotationKeepsNewestAndSweepsResidue) {
  Env& env = *Env::Default();
  const std::string dir = TestDir();
  for (size_t epoch = 1; epoch <= 5; ++epoch) {
    ASSERT_TRUE(ThreeSectionWriter()
                    .WriteTo(env, dir + "/" + CheckpointFileName(epoch))
                    .ok());
  }
  ASSERT_TRUE(env.WriteFile(dir + "/ckpt-000006.sttr.tmp.1", "torn").ok());
  ASSERT_TRUE(RotateCheckpoints(env, dir, 2).ok());
  EXPECT_EQ(*env.ListDir(dir), (std::vector<std::string>{
                                   CheckpointFileName(4),
                                   CheckpointFileName(5)}));
  EXPECT_EQ(RotateCheckpoints(env, dir, 0).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sttr
