#include <sstream>

#include <gtest/gtest.h>

#include "core/st_transrec.h"
#include "data/synth/world_generator.h"

namespace sttr {
namespace {

struct Fixture {
  synth::SynthWorld world;
  CrossCitySplit split;
};

Fixture MakeFixture() {
  auto cfg = synth::SynthWorldConfig::FoursquareLike(synth::Scale::kTiny);
  Fixture f{synth::GenerateWorld(cfg), {}};
  f.split = MakeCrossCitySplit(f.world.dataset, cfg.target_city);
  return f;
}

StTransRecConfig SmallConfig() {
  StTransRecConfig cfg;
  cfg.embedding_dim = 8;
  cfg.hidden_dims = {16};
  cfg.num_epochs = 1;
  cfg.batch_size = 32;
  cfg.mmd_batch = 8;
  return cfg;
}

TEST(StTransRecSaveLoadTest, RoundTripReproducesScores) {
  auto f = MakeFixture();
  StTransRec a(SmallConfig());
  ASSERT_TRUE(a.Fit(f.world.dataset, f.split).ok());
  std::stringstream ss;
  ASSERT_TRUE(a.Save(ss).ok());

  StTransRec b(SmallConfig());
  ASSERT_TRUE(b.Prepare(f.world.dataset, f.split).ok());
  ASSERT_TRUE(b.Load(ss).ok());

  const UserId u = f.split.test_users.front().user;
  for (PoiId v : f.world.dataset.PoisInCity(0)) {
    EXPECT_DOUBLE_EQ(a.Score(u, v), b.Score(u, v));
  }
}

TEST(StTransRecSaveLoadTest, SaveBeforePrepareFails) {
  StTransRec model(SmallConfig());
  std::stringstream ss;
  EXPECT_EQ(model.Save(ss).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(model.Load(ss).code(), StatusCode::kFailedPrecondition);
}

TEST(StTransRecSaveLoadTest, LoadWrongShapeFails) {
  auto f = MakeFixture();
  StTransRec a(SmallConfig());
  ASSERT_TRUE(a.Prepare(f.world.dataset, f.split).ok());
  std::stringstream ss;
  ASSERT_TRUE(a.Save(ss).ok());

  auto other_cfg = SmallConfig();
  other_cfg.embedding_dim = 16;
  StTransRec b(other_cfg);
  ASSERT_TRUE(b.Prepare(f.world.dataset, f.split).ok());
  EXPECT_FALSE(b.Load(ss).ok());
}

TEST(StTransRecSaveLoadTest, LoadTruncatedStreamFails) {
  auto f = MakeFixture();
  StTransRec a(SmallConfig());
  ASSERT_TRUE(a.Prepare(f.world.dataset, f.split).ok());
  std::stringstream ss;
  ss << "garbage";
  EXPECT_FALSE(a.Load(ss).ok());
}

}  // namespace
}  // namespace sttr
