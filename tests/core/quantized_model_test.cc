// Quantized serving snapshots (core/quantized_model.h): scoring parity
// against the fp32 model within the documented error bounds, internal
// Score/ScoreBatch/ScorePairs agreement, the v2 checkpoint round trip, and
// the version accept/reject matrix keeping training checkpoints and serving
// artifacts from crossing paths.

#include "core/quantized_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/st_transrec.h"
#include "data/synth/world_generator.h"

namespace sttr {
namespace {

struct Fixture {
  synth::SynthWorld world;
  CrossCitySplit split;
};

Fixture MakeFixture() {
  auto cfg = synth::SynthWorldConfig::FoursquareLike(synth::Scale::kTiny);
  Fixture f{synth::GenerateWorld(cfg), {}};
  f.split = MakeCrossCitySplit(f.world.dataset, cfg.target_city);
  return f;
}

StTransRecConfig SmallConfig() {
  StTransRecConfig cfg;
  cfg.embedding_dim = 8;
  cfg.hidden_dims = {16};
  cfg.num_epochs = 2;
  cfg.batch_size = 32;
  cfg.mmd_batch = 8;
  return cfg;
}

std::string TestDir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::filesystem::path dir = ::testing::TempDir();
  dir /= std::string("sttr_quant_") + info->test_suite_name() + "_" +
         info->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// All (test user, target-city POI) pairs, the serving workload.
void TestPairs(const Fixture& f, std::vector<UserId>* users,
               std::vector<PoiId>* pois) {
  const auto& city_pois = f.world.dataset.PoisInCity(f.split.target_city);
  for (const CrossCitySplit::TestUser& tu : f.split.test_users) {
    for (const PoiId p : city_pois) {
      users->push_back(tu.user);
      pois->push_back(p);
    }
  }
}

class QuantizedModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new Fixture(MakeFixture());
    model_ = new StTransRec(SmallConfig());
    STTR_CHECK_OK(model_->Fit(fixture_->world.dataset, fixture_->split));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete fixture_;
    model_ = nullptr;
    fixture_ = nullptr;
  }

  static Fixture* fixture_;
  static StTransRec* model_;
};

Fixture* QuantizedModelTest::fixture_ = nullptr;
StTransRec* QuantizedModelTest::model_ = nullptr;

TEST_F(QuantizedModelTest, ScoresTrackFp32Closely) {
  const auto quant = QuantizedModel::Quantize(*model_);
  ASSERT_TRUE(quant.ok()) << quant.status().ToString();
  std::vector<UserId> users;
  std::vector<PoiId> pois;
  TestPairs(*fixture_, &users, &pois);
  const std::vector<double> ref = model_->ScorePairs(users, pois);
  const std::vector<double> got = quant->ScorePairs(users, pois);
  ASSERT_EQ(ref.size(), got.size());
  double max_delta = 0.0;
  for (size_t i = 0; i < ref.size(); ++i) {
    max_delta = std::max(max_delta, std::fabs(ref[i] - got[i]));
  }
  // Post-sigmoid scores; one quantized layer with per-row scales stays well
  // inside this (measured ~7e-3 on the tiny world).
  EXPECT_LT(max_delta, 0.05);
}

TEST_F(QuantizedModelTest, ScoreVariantsAgreeBitwise) {
  const auto quant = QuantizedModel::Quantize(*model_);
  ASSERT_TRUE(quant.ok());
  const auto& pois = fixture_->world.dataset.PoisInCity(0);
  const size_t n = std::min<size_t>(pois.size(), 12);
  const UserId u = fixture_->split.test_users.front().user;
  const std::vector<double> batch =
      quant->ScoreBatch(u, {pois.data(), n});
  const std::vector<UserId> users(n, u);
  const std::vector<double> paired =
      quant->ScorePairs(users, {pois.data(), n});
  ASSERT_EQ(batch.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(batch[i], paired[i]) << i;
    EXPECT_EQ(quant->Score(u, pois[i]), batch[i]) << i;
  }
}

TEST_F(QuantizedModelTest, EmbeddingBytesMatchQuantizedLayout) {
  const auto quant = QuantizedModel::Quantize(*model_);
  ASSERT_TRUE(quant.ok());
  const size_t rows = quant->num_users() + quant->num_pois();
  // int8 data plus a fp32 scale and int32 zero point per row (affine
  // default). At this test's dim=8 the per-row metadata caps the shrink
  // near 2x; the headline >= 3x holds from dim ~24 up (quant_test checks it
  // at 32, micro_quant measures 3.56x at the paper's 64).
  EXPECT_EQ(quant->EmbeddingBytes(),
            rows * quant->embedding_dim() +
                rows * (sizeof(float) + sizeof(int32_t)));
  EXPECT_LT(quant->EmbeddingBytes(),
            rows * quant->embedding_dim() * sizeof(float));
  EXPECT_GT(quant->ApproxBytes(), quant->EmbeddingBytes());
}

TEST_F(QuantizedModelTest, CheckpointRoundTripIsBitIdentical) {
  for (const bool fp16_tail : {true, false}) {
    QuantizationConfig cfg;
    cfg.fp16_tail = fp16_tail;
    const auto quant = QuantizedModel::Quantize(*model_, cfg);
    ASSERT_TRUE(quant.ok());
    const std::string path = TestDir() + "/" + CheckpointFileName(2);
    ASSERT_TRUE(quant->WriteCheckpointFile(*Env::Default(), path).ok());

    const auto back = QuantizedModel::LoadFromCheckpoint(*Env::Default(), path);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->epoch(), quant->epoch());
    EXPECT_EQ(back->config_fingerprint(), quant->config_fingerprint());
    EXPECT_EQ(back->fp16_tail(), fp16_tail);

    // Quantize() pre-round-trips the tail through fp16, so the reloaded
    // scorer must reproduce the in-memory one bit for bit — the property
    // that makes --fidelity numbers measured in-process match production.
    std::vector<UserId> users;
    std::vector<PoiId> pois;
    TestPairs(*fixture_, &users, &pois);
    EXPECT_EQ(quant->ScorePairs(users, pois), back->ScorePairs(users, pois))
        << "fp16_tail=" << fp16_tail;
  }
}

TEST_F(QuantizedModelTest, SymmetricSchemeAlsoRoundTrips) {
  QuantizationConfig cfg;
  cfg.embedding_scheme = QuantScheme::kSymmetric;
  const auto quant = QuantizedModel::Quantize(*model_, cfg);
  ASSERT_TRUE(quant.ok());
  EXPECT_EQ(quant->embedding_scheme(), QuantScheme::kSymmetric);
  const std::string path = TestDir() + "/" + CheckpointFileName(2);
  ASSERT_TRUE(quant->WriteCheckpointFile(*Env::Default(), path).ok());
  const auto back = QuantizedModel::LoadFromCheckpoint(*Env::Default(), path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->embedding_scheme(), QuantScheme::kSymmetric);
}

TEST_F(QuantizedModelTest, EpochDefaultsToLossHistoryAndHonorsOverride) {
  const auto from_fit = QuantizedModel::Quantize(*model_);
  ASSERT_TRUE(from_fit.ok());
  EXPECT_EQ(from_fit->epoch(), model_->loss_history().size());

  QuantizationConfig cfg;
  cfg.epoch = 41;  // what sttr_quantize passes from the source meta section
  const auto overridden = QuantizedModel::Quantize(*model_, cfg);
  ASSERT_TRUE(overridden.ok());
  EXPECT_EQ(overridden->epoch(), 41u);
}

TEST_F(QuantizedModelTest, QuantizeRejectsUnfittedModel) {
  StTransRec unfitted(SmallConfig());
  EXPECT_FALSE(QuantizedModel::Quantize(unfitted).ok());
}

// ---- Version accept/reject matrix ------------------------------------------

class VersionMatrixTest : public QuantizedModelTest {
 protected:
  /// Writes one v1 training checkpoint and one v2 artifact into a fresh dir.
  void WriteBoth(std::string* v1_path, std::string* v2_path) {
    const std::string dir = TestDir();
    StTransRecConfig cfg = SmallConfig();
    cfg.checkpoint_dir = dir;
    StTransRec trainer(cfg);
    STTR_CHECK_OK(trainer.Fit(fixture_->world.dataset, fixture_->split));
    const auto latest = FindLatestValidCheckpoint(*Env::Default(), dir);
    STTR_CHECK_OK(latest.status());
    *v1_path = *latest;

    const auto quant = QuantizedModel::Quantize(trainer);
    STTR_CHECK_OK(quant.status());
    *v2_path = dir + "/quant-" + CheckpointFileName(2);
    STTR_CHECK_OK(quant->WriteCheckpointFile(*Env::Default(), *v2_path));
  }
};

TEST_F(VersionMatrixTest, ReadersAcceptAndRejectByVersion) {
  std::string v1_path, v2_path;
  WriteBoth(&v1_path, &v2_path);

  // Current reader accepts both container versions.
  const auto v1 = CheckpointReader::Open(*Env::Default(), v1_path);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->version(), kCheckpointFormatVersion);
  const auto v2 = CheckpointReader::Open(*Env::Default(), v2_path);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->version(), kQuantCheckpointFormatVersion);

  // An old (v1-only) reader must reject a v2 file cleanly, not misparse it.
  const auto old_reader = CheckpointReader::Open(
      *Env::Default(), v2_path, /*max_supported_version=*/1);
  ASSERT_FALSE(old_reader.ok());
  EXPECT_NE(old_reader.status().ToString().find("unsupported format version"),
            std::string::npos)
      << old_reader.status().ToString();
  // ...while still accepting v1 files.
  EXPECT_TRUE(CheckpointReader::Open(*Env::Default(), v1_path, 1).ok());
}

TEST_F(VersionMatrixTest, TrainingRestoreRejectsServingArtifact) {
  std::string v1_path, v2_path;
  WriteBoth(&v1_path, &v2_path);
  StTransRec model(SmallConfig());
  ASSERT_TRUE(model.Prepare(fixture_->world.dataset, fixture_->split).ok());
  const Status status = model.RestoreFromCheckpoint(v2_path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.ToString().find("not a training checkpoint"),
            std::string::npos)
      << status.ToString();
  // The v1 file restores fine into the same prepared model.
  EXPECT_TRUE(model.RestoreFromCheckpoint(v1_path).ok());
}

TEST_F(VersionMatrixTest, QuantizedLoadRejectsTrainingCheckpoint) {
  std::string v1_path, v2_path;
  WriteBoth(&v1_path, &v2_path);
  EXPECT_FALSE(
      QuantizedModel::LoadFromCheckpoint(*Env::Default(), v1_path).ok());
  EXPECT_TRUE(
      QuantizedModel::LoadFromCheckpoint(*Env::Default(), v2_path).ok());
}

}  // namespace
}  // namespace sttr
