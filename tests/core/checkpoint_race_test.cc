// Concurrency test for checkpoint-directory maintenance: readers running
// FindLatestValidCheckpoint while a trainer-style writer thread lands new
// checkpoints and rotates after each one must always come back with a fully
// valid, fully verifiable checkpoint — never a torn file (rotation only
// deletes old checkpoints; the newest is sacrosanct). This is the
// serving-side contract ModelBundle's hot-reload watcher depends on.

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "util/fs.h"

namespace sttr {
namespace {

std::string TestDir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::filesystem::path dir = ::testing::TempDir();
  dir /= std::string("sttr_ckpt_race_") + info->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// A small but real checkpoint container whose payload encodes its epoch.
std::string CheckpointBytes(size_t epoch) {
  CheckpointWriter writer;
  std::string meta;
  AppendU64(meta, epoch);
  writer.AddSection("meta", meta);
  writer.AddSection("model", std::string(1024, static_cast<char>(epoch % 251)));
  return writer.Encode();
}

TEST(CheckpointRaceTest, FindLatestRacingRotationAndWrites) {
  const std::string dir = TestDir();
  Env& env = *Env::Default();

  // Seed one checkpoint so readers never start on an empty directory.
  ASSERT_TRUE(
      AtomicWriteFile(env, dir + "/" + CheckpointFileName(0), CheckpointBytes(0))
          .ok());

  constexpr size_t kEpochs = 60;
  std::atomic<size_t> newest_written{0};
  std::atomic<bool> writer_done{false};
  std::atomic<int> failures{0};

  // Writer: lands checkpoints epoch 1..kEpochs and rotates after each one,
  // exactly as the trainer loop does. (Rotation must stay in the writer
  // thread: it sweeps `*.tmp.*` residue, so running it concurrently with an
  // in-flight AtomicWriteFile would delete the writer's live temp file.)
  std::thread writer([&] {
    for (size_t epoch = 1; epoch <= kEpochs; ++epoch) {
      const std::string path = dir + "/" + CheckpointFileName(epoch);
      if (!AtomicWriteFile(env, path, CheckpointBytes(epoch)).ok()) {
        failures.fetch_add(1);
        break;
      }
      newest_written.store(epoch, std::memory_order_release);
      if (!RotateCheckpoints(env, dir, /*keep=*/2).ok()) {
        failures.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    writer_done.store(true, std::memory_order_release);
  });

  // Readers: what the serving watcher does every poll. Every result must
  // (a) exist, (b) re-verify end to end, (c) not be older than rotation
  // allows at the time the lookup started.
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!writer_done.load(std::memory_order_acquire)) {
        const size_t floor_epoch =
            newest_written.load(std::memory_order_acquire);
        StatusOr<std::string> latest = FindLatestValidCheckpoint(env, dir);
        if (!latest.ok()) {
          // The directory is never empty, so a lookup can only fail in the
          // sub-millisecond window where every file of a stale listing was
          // rotated away; an immediate retry must recover.
          latest = FindLatestValidCheckpoint(env, dir);
          if (!latest.ok()) {
            failures.fetch_add(1);
            continue;
          }
        }
        // The found file must re-verify end to end — unless rotation beat
        // us to it because two newer checkpoints landed in between, in
        // which case it is gone entirely; what it may never be is torn.
        const StatusOr<CheckpointReader> reader =
            CheckpointReader::Open(env, *latest);
        if (!reader.ok()) {
          if (std::filesystem::exists(*latest)) failures.fetch_add(1);
          continue;
        }
        const StatusOr<size_t> epoch =
            ParseCheckpointEpoch(std::filesystem::path(*latest).filename());
        if (!epoch.ok() || *epoch < floor_epoch) {
          // Monotonicity: a lookup can never surface something older than
          // what was durably the newest before the lookup began.
          failures.fetch_add(1);
        }
      }
    });
  }

  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Steady state after the dust settles: rotation kept the newest files,
  // and the very newest epoch survived.
  ASSERT_TRUE(RotateCheckpoints(env, dir, 2).ok());
  const auto latest = FindLatestValidCheckpoint(env, dir);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*ParseCheckpointEpoch(std::filesystem::path(*latest).filename()),
            kEpochs);
  size_t remaining = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++remaining;
  }
  EXPECT_EQ(remaining, 2u);
}

}  // namespace
}  // namespace sttr
