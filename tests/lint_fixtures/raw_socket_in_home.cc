// lint-fixture-as: src/util/socket_io.cc
//
// The one place a bare socket syscall belongs: the wrapper itself. Linted
// under the home path, the same calls that trip raw-socket everywhere else
// must stay clean here (no expect-violation lines).
#include <sys/socket.h>

long WrapperBody(int fd, char* buf, unsigned long len) {
  long n = ::recv(fd, buf, len, 0);
  if (n > 0) n = ::send(fd, buf, static_cast<unsigned long>(n), 0);
  return n;
}
