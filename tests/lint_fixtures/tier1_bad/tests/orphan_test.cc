// Fixture: NOT registered in the sibling CMakeLists.txt -> tier1-label.
int main() { return 0; }
