// Fixture: registered in the sibling CMakeLists.txt; must not be flagged.
int main() { return 0; }
