// lint-fixture-as: src/util/escape_without_reason.cc
// expect-violation: no-analysis-escape
#include "util/thread_annotations.h"

struct Escapes {
  // Justified on the preceding line: static init happens-before all readers.
  void Fine() NO_THREAD_SAFETY_ANALYSIS {}

  void AlsoFine() NO_THREAD_SAFETY_ANALYSIS {}  // justified on the same line

  void Bad() NO_THREAD_SAFETY_ANALYSIS {}
};
