// lint-fixture-as: src/serve/raw_poll_in_serve.cc
// expect-violation: raw-socket
//
// ::poll and ::accept4 joined the raw-socket rule when the router's fan-out
// loop was found to wait on shard sockets outside the fault-injection seam
// (a stalled shard could never be simulated). The legal spellings below
// must NOT fire: the net::Poll wrapper, ::epoll_wait (the event loop's own
// mechanism, faulted at a different layer), plain ::accept (the listener
// path is exercised by killing real connections), and an identifier that
// merely ends in "poll".
#include <poll.h>
#include <sys/socket.h>

#include "util/socket_io.h"

int Legal(pollfd* fds, int epfd, int listen_fd) {
  int n = sttr::net::Poll(fds, 1, 10, nullptr);
  n += ::epoll_wait(epfd, nullptr, 0, 0);
  n += ::accept(listen_fd, nullptr, nullptr);
  n += my::poll_count();
  return n;
}

int IllegalPoll(pollfd* fds) {
  return ::poll(fds, 1, 10);
}

int IllegalAccept4(int listen_fd) {
  return ::accept4(listen_fd, nullptr, nullptr, 0);
}
