// Fixture: the cycle's first hop comes from a REQUIRES entry capability,
// not a literal MutexLock — proves annotations seed the held set.
#include "util/mutex.h"

namespace fx {

class Pair {
 public:
  void HoldingATakeB() REQUIRES(a_mu_) {
    MutexLock b(b_mu_);
    ++n_;
  }
  void HoldingBTakeA() REQUIRES(b_mu_) {
    MutexLock a(a_mu_);
    --n_;
  }

 private:
  Mutex a_mu_;
  Mutex b_mu_;
  int n_ = 0;
};

}  // namespace fx
