#include "util/status.h"

namespace fx {

Status DoThing();

int Caller() {
  Status s = DoThing();
  if (!s.ok()) return 1;
  (void)DoThing();
  return 0;
}

}  // namespace fx
