// Fixture: both result classes carry [[nodiscard]].
#pragma once
class [[nodiscard]] Status {
 public:
  bool ok() const { return true; }
};

template <typename T>
class [[nodiscard]] StatusOr {
 public:
  bool ok() const { return true; }
};
