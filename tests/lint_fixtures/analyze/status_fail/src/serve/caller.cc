#include "util/status.h"

namespace fx {

Status DoThing();

int Caller() {
  DoThing();
  return 0;
}

}  // namespace fx
