// Fixture: result classes without [[nodiscard]] — discards compile silently.
#pragma once
class Status {
 public:
  bool ok() const { return true; }
};

template <typename T>
class StatusOr {
 public:
  bool ok() const { return true; }
};
