// Fixture: same-directory include cycle — legal by the DAG, still a bug.
#pragma once
#include "geo/cell.h"
namespace fx {
struct Grid { Cell* c; };
}  // namespace fx
