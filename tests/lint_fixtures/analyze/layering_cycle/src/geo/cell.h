#pragma once
#include "geo/grid.h"
namespace fx {
struct Cell { Grid* g; };
}  // namespace fx
