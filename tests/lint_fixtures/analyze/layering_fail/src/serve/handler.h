#pragma once
namespace fx {
void Handle();
}  // namespace fx
