// Fixture: util reaching up into serve inverts the layering.
#include "serve/handler.h"

namespace fx {
void Log(int level) { Handle(); }
}  // namespace fx
