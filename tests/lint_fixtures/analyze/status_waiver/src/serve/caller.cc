#include "util/status.h"

namespace fx {

Status DoThing();

int Caller() {
  // sttr-analyze: allow-discard: best-effort notification; failure is benign
  DoThing();
  return 0;
}

}  // namespace fx
