// Fixture: the same inversion, justified and waived.
// sttr-analyze: allow-layering: fixture-only; interface split tracked elsewhere
#include "serve/handler.h"

namespace fx {
void Log(int level) { Handle(); }
}  // namespace fx
