// Fixture: the blocking write is one call away from the lock scope — only
// the propagated callee summary can connect them.
#include "util/mutex.h"

namespace fx {

class Pump {
 public:
  void WriteOut() {
    ::send(fd_, data_, len_, 0);
  }
  void Flush() {
    MutexLock lock(mu_);
    WriteOut();
  }

 private:
  Mutex mu_;
  int fd_ = -1;
  const char* data_ = nullptr;
  unsigned long len_ = 0;
};

}  // namespace fx
