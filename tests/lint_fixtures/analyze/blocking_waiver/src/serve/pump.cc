// Fixture: blocking under a lock, justified and waived.
#include "util/mutex.h"

namespace fx {

class Pump {
 public:
  void Flush() {
    MutexLock lock(mu_);
    // sttr-analyze: allow-blocking: single-threaded fixture; no waiter can queue on mu_
    ::send(fd_, data_, len_, 0);
  }

 private:
  Mutex mu_;
  int fd_ = -1;
  const char* data_ = nullptr;
  unsigned long len_ = 0;
};

}  // namespace fx
