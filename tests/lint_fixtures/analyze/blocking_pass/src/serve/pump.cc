// Fixture: state flips under the lock, IO after the scope closes, and a
// CondVar wait (which releases the mutex) under the lock — all clean.
#include "util/mutex.h"

namespace fx {

class Pump {
 public:
  void Flush() {
    {
      MutexLock lock(mu_);
      while (!ready_) cv_.Wait(mu_);
      ready_ = false;
    }
    ::send(fd_, data_, len_, 0);
  }

 private:
  Mutex mu_;
  CondVar cv_;
  bool ready_ = false;
  int fd_ = -1;
  const char* data_ = nullptr;
  unsigned long len_ = 0;
};

}  // namespace fx
