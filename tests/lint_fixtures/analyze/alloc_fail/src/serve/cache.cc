// Fixture: heap allocation inside a lock scope on a serving path.
#include "util/mutex.h"

namespace fx {

class Cache {
 public:
  void Fill() {
    MutexLock lock(mu_);
    entry_ = std::make_shared<int>(7);
  }

 private:
  Mutex mu_;
  std::shared_ptr<int> entry_;
};

}  // namespace fx
