// Fixture: the bottom layer depends on nothing.
#pragma once
namespace fx {
void Log(int level);
}  // namespace fx
