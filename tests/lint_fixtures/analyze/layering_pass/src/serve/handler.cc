// Fixture: serve depending on util follows the blessed order.
#include "util/log.h"

namespace fx {
void Handle() { Log(1); }
}  // namespace fx
