// Fixture: a justified waiver whose finding no longer exists — stale
// documentation the tree must not accumulate.
#include "util/mutex.h"

namespace fx {

class Pump {
 public:
  void Flush() {
    MutexLock lock(mu_);
    // sttr-analyze: allow-blocking: the send that used to live here
    ready_ = false;
  }

 private:
  Mutex mu_;
  bool ready_ = true;
};

}  // namespace fx
