// Fixture: the same two-lock cycle as lock_order_fail, with one edge
// waived by the justification-comment syntax — breaking the cycle.
#include "util/mutex.h"

namespace fx {

class Pair {
 public:
  void AThenB() {
    MutexLock a(a_mu_);
    MutexLock b(b_mu_);
    ++n_;
  }
  void BThenA() {
    MutexLock b(b_mu_);
    // sttr-analyze: allow-lock-order(Pair::b_mu_ -> Pair::a_mu_): fixture edge; callers of BThenA never hold a_mu_
    MutexLock a(a_mu_);
    --n_;
  }

 private:
  Mutex a_mu_;
  Mutex b_mu_;
  int n_ = 0;
};

}  // namespace fx
