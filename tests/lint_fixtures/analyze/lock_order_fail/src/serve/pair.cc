// Fixture: a_mu_ -> b_mu_ in one method and b_mu_ -> a_mu_ in another —
// the classic two-lock deadlock cycle.
#include "util/mutex.h"

namespace fx {

class Pair {
 public:
  void AThenB() {
    MutexLock a(a_mu_);
    MutexLock b(b_mu_);
    ++n_;
  }
  void BThenA() {
    MutexLock b(b_mu_);
    MutexLock a(a_mu_);
    --n_;
  }

 private:
  Mutex a_mu_;
  Mutex b_mu_;
  int n_ = 0;
};

}  // namespace fx
