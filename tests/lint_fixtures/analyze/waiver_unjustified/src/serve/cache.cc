// Fixture: a waiver with no justification waives nothing — both the empty
// waiver and the underlying allocation must fire.
#include "util/mutex.h"

namespace fx {

class Cache {
 public:
  void Fill() {
    MutexLock lock(mu_);
    // sttr-analyze: allow-alloc:
    entry_ = std::make_shared<int>(7);
  }

 private:
  Mutex mu_;
  std::shared_ptr<int> entry_;
};

}  // namespace fx
