// Fixture: the same allocation, justified and waived.
#include "util/mutex.h"

namespace fx {

class Cache {
 public:
  void Fill() {
    MutexLock lock(mu_);
    // sttr-analyze: allow-alloc: one-time warmup; never on the request path
    entry_ = std::make_shared<int>(7);
  }

 private:
  Mutex mu_;
  std::shared_ptr<int> entry_;
};

}  // namespace fx
