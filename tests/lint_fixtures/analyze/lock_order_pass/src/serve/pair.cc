// Fixture: two mutexes always taken in the same order — no cycle.
#include "util/mutex.h"

namespace fx {

class Pair {
 public:
  void First() {
    MutexLock a(a_mu_);
    MutexLock b(b_mu_);
    ++n_;
  }
  void Second() {
    MutexLock a(a_mu_);
    MutexLock b(b_mu_);
    --n_;
  }

 private:
  Mutex a_mu_;
  Mutex b_mu_;
  int n_ = 0;
};

}  // namespace fx
