// Fixture: neither function takes both locks directly — the second hop of
// each edge is inside a callee, so only cross-TU summary propagation can
// see the cycle.
#include "util/mutex.h"

namespace fx {

class Pair {
 public:
  void TakeB() {
    MutexLock b(b_mu_);
    ++n_;
  }
  void TakeA() {
    MutexLock a(a_mu_);
    --n_;
  }
  void AThenCallB() {
    MutexLock a(a_mu_);
    TakeB();
  }
  void BThenCallA() {
    MutexLock b(b_mu_);
    TakeA();
  }

 private:
  Mutex a_mu_;
  Mutex b_mu_;
  int n_ = 0;
};

}  // namespace fx
