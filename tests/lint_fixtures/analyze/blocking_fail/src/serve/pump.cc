// Fixture: a raw socket write inside a lock scope — every thread queued on
// mu_ stalls behind the kernel.
#include "util/mutex.h"

namespace fx {

class Pump {
 public:
  void Flush() {
    MutexLock lock(mu_);
    ::send(fd_, data_, len_, 0);
  }

 private:
  Mutex mu_;
  int fd_ = -1;
  const char* data_ = nullptr;
  unsigned long len_ = 0;
};

}  // namespace fx
