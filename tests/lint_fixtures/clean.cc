// lint-fixture-as: src/core/clean.cc
//
// The idiomatic shapes: randomness through sttr::Rng, locking through the
// annotated wrapper. No rule may fire here (no expect-violation lines).
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

class CleanCounter {
 public:
  // Identifiers *containing* banned substrings must not trip the word
  // boundaries: operand, grand_total, uptime.
  int operand_grand_total_uptime = 0;

  void Bump(sttr::Rng& rng) {
    sttr::MutexLock lock(mu_);
    value_ += static_cast<int>(rng.UniformInt(uint64_t{10}));
  }

 private:
  sttr::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};
