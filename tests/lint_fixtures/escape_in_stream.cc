// lint-fixture-as: src/stream/escape_in_stream.cc
// expect-violation: no-analysis-escape
//
// The streaming ingestion layer shares the serving stack's lock discipline
// (event log, trainer loop, delta publishing); like src/serve/, no code
// there may opt out of the analysis, justified or not.
#include "util/thread_annotations.h"

struct Ingesty {
  // A justification comment does not help inside src/stream/.
  void Sneaky() NO_THREAD_SAFETY_ANALYSIS {}
};
