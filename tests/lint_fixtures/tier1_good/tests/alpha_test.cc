// Fixture: registered; must not be flagged.
int main() { return 0; }
