// Fixture: registered via its subdirectory-relative path; must not flag.
int main() { return 0; }
