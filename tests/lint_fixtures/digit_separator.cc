// lint-fixture-as: src/core/digit_separator.cc
// expect-violation: raw-mutex
//
// Pins the stripper against C++14 digit separators: the tick in 1'000 must
// not open a char-literal state. The std::mutex member sits *between* two
// separated literals, exactly where a separator-as-quote bug blanks the
// source (the first tick "opens" the bogus literal, the tick in the next
// literal "closes" it), so a regression makes raw-mutex vanish here and
// this fixture fail its expectation.
#include <mutex>

struct DigitSeparator {
  char digit_char = '0';  // a real char literal next to digits still works
  static constexpr long kThousand = 1'000;
  std::mutex masked_by_a_buggy_stripper;  // violation — must stay visible
  static constexpr unsigned kMask = 0xdead'beef;
};
