// lint-fixture-as: src/stream/raw_socket_in_stream.cc
// expect-violation: raw-socket
// expect-violation: raw-mutex
//
// The streaming layer is covered by the generic src/-wide rules too: a raw
// socket call would bypass the fault-injection seam the streaming chaos
// suite drives, and a raw mutex would hide the ingest locks from
// -Wthread-safety.
#include <mutex>

void StreamBad(int fd, const void* buf, unsigned long n) {
  std::mutex mu;            // violation: raw-mutex
  ::send(fd, buf, n, 0);    // violation: raw-socket
}
