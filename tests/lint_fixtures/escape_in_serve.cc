// lint-fixture-as: src/serve/escape_in_serve.cc
// expect-violation: no-analysis-escape
//
// The serving stack carries the hot-reload/batching lock contract; no code
// there may opt out of the analysis, justified or not.
#include "util/thread_annotations.h"

struct Batchy {
  // A justification comment does not help inside src/serve/.
  void Sneaky() NO_THREAD_SAFETY_ANALYSIS {}
};
