// lint-fixture-as: src/data/uses_banned_randomness.cc
// expect-violation: banned-randomness
//
// Every construct below bypasses sttr::Rng, so a repeated run would not be
// bit-identical. Note the rule must NOT fire on the commented-out line or
// the string literal — only on live code.
#include <cstdlib>
#include <ctime>
#include <random>

int BadSeed() {
  // std::srand(42);  <- in a comment: must not fire
  const char* msg = "calling rand() here would be bad";  // string: no fire
  std::srand(static_cast<unsigned>(time(nullptr)));
  std::random_device rd;
  std::mt19937 gen(rd());
  (void)msg;
  return std::rand() + static_cast<int>(gen());
}
