// lint-fixture-as: src/serve/includes_tests.cc
// expect-violation: test-include
//
// Library code reaching into tests/ inverts the dependency direction; the
// include in the comment below must not fire.
// #include "tests/serve/serve_test_util.h"  <- commented: no fire
#include "tests/serve/serve_test_util.h"
#include "../tests/util/helpers.h"

int Library() { return 0; }
