// lint-fixture-as: src/core/uses_raw_mutex.cc
// expect-violation: raw-mutex
//
// Raw std primitives are invisible to -Wthread-safety; only src/util/mutex.h
// may hold them. sttr::Mutex in the same file is fine and must not fire.
#include <mutex>

#include "util/mutex.h"

struct BadGuarded {
  std::mutex mu;                 // violation
  std::condition_variable cv;    // violation
  sttr::Mutex good_mu;           // the wrapper: no violation
  int value = 0;

  void Set(int v) {
    std::lock_guard<std::mutex> lock(mu);  // violation
    value = v;
  }
};
