// lint-fixture-as: src/serve/uses_raw_socket.cc
// expect-violation: raw-socket
//
// Raw socket syscalls outside src/util/socket_io.* bypass the
// FaultInjectionSocket seam, so the chaos suites can never exercise their
// failure paths. The legal spellings below must NOT fire: the wrapper
// calls, a member named send, and a commented-out ::recv.
#include <sys/socket.h>

#include "util/socket_io.h"

struct Peer {
  int fd = -1;
  long send(const char* buf, unsigned long len);  // member, not a syscall
};

long Legal(Peer& peer, const char* buf, unsigned long len) {
  // ::recv(peer.fd, nullptr, 0, 0);  (commented out: stripper blanks it)
  long n = peer.send(buf, len);
  n += sttr::net::Send(peer.fd, buf, len, 0, nullptr);
  return n;
}

long Illegal(int fd, const char* buf, unsigned long len) {
  return ::send(fd, buf, len, 0);
}
