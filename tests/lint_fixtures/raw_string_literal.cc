// lint-fixture-as: src/core/raw_string_literal.cc
// expect-violation: raw-mutex
//
// Pins the stripper against raw string literals: content runs to )delim",
// with inner quotes and banned-looking identifiers inert. A stripper that
// treats the opening quote as an ordinary string start exits at the first
// inner quote, leaking the raw string body into code state — a false
// banned-randomness below — and its quote accounting then blanks real code,
// hiding the raw-mutex violation at the end.
#include "util/mutex.h"

struct RawStringLiteral {
  const char* doc = R"(" rand() mt19937 std::random_device time(nullptr) ")";
  const char* delimited = R"lint(quote " paren ) inside)lint";
  std::mutex after_raw_strings;  // violation — must stay visible
};
