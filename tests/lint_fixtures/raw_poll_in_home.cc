// lint-fixture-as: src/util/socket_io.cc
//
// Under the home path the same calls are the wrapper's own implementation;
// nothing may fire.
#include <poll.h>
#include <sys/socket.h>

int Impl(pollfd* fds, int listen_fd) {
  int n = ::poll(fds, 1, 10);
  n += ::accept4(listen_fd, nullptr, nullptr, 0);
  return n;
}
