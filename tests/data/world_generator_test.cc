#include "data/synth/world_generator.h"

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "data/synth/lexicon.h"
#include "util/string_util.h"

namespace sttr::synth {
namespace {

TEST(LexiconTest, TopicsAreDisjoint) {
  std::set<std::string> seen;
  for (const Topic& t : TopicLexicon()) {
    EXPECT_GE(t.words.size(), 10u);
    for (const std::string& w : t.words) {
      EXPECT_TRUE(seen.insert(w).second) << "duplicate word " << w;
    }
  }
  EXPECT_GE(TopicLexicon().size(), 10u);
}

TEST(LexiconTest, CityLandmarkWordsArePrefixedAndUnique) {
  const auto words = CityLandmarkWords("vegas", 30);
  EXPECT_EQ(words.size(), 30u);
  std::set<std::string> uniq(words.begin(), words.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (const auto& w : words) EXPECT_TRUE(StartsWith(w, "vegas_"));
}

TEST(WorldGeneratorTest, DeterministicForSeed) {
  auto cfg = SynthWorldConfig::FoursquareLike(Scale::kTiny);
  auto a = GenerateWorld(cfg);
  auto b = GenerateWorld(cfg);
  ASSERT_EQ(a.dataset.num_checkins(), b.dataset.num_checkins());
  for (size_t i = 0; i < a.dataset.num_checkins(); ++i) {
    EXPECT_EQ(a.dataset.checkins()[i].poi, b.dataset.checkins()[i].poi);
    EXPECT_EQ(a.dataset.checkins()[i].user, b.dataset.checkins()[i].user);
  }
}

TEST(WorldGeneratorTest, SeedChangesData) {
  auto cfg = SynthWorldConfig::FoursquareLike(Scale::kTiny);
  auto a = GenerateWorld(cfg);
  cfg.seed += 1;
  auto b = GenerateWorld(cfg);
  bool any_diff = a.dataset.num_checkins() != b.dataset.num_checkins();
  for (size_t i = 0; !any_diff && i < a.dataset.num_checkins(); ++i) {
    any_diff = a.dataset.checkins()[i].poi != b.dataset.checkins()[i].poi;
  }
  EXPECT_TRUE(any_diff);
}

TEST(WorldGeneratorTest, SizesMatchConfig) {
  auto cfg = SynthWorldConfig::FoursquareLike(Scale::kTiny);
  auto world = GenerateWorld(cfg);
  size_t expected_pois = 0, expected_users = cfg.num_crossing_users;
  for (const auto& c : cfg.cities) {
    expected_pois += c.num_pois;
    expected_users += c.num_local_users;
  }
  EXPECT_EQ(world.dataset.num_pois(), expected_pois);
  EXPECT_EQ(world.dataset.num_users(), expected_users);
  EXPECT_EQ(world.dataset.num_cities(), cfg.cities.size());
}

TEST(WorldGeneratorTest, CityWordsStayInTheirCity) {
  auto world = GenerateWorld(SynthWorldConfig::FoursquareLike(Scale::kTiny));
  const auto& ds = world.dataset;
  for (const Poi& p : ds.pois()) {
    const std::string& city_name = ds.city(p.city).name;
    for (WordId w : p.words) {
      const std::string& word = ds.vocabulary().WordOf(w);
      // A word containing a city prefix must belong to that city's POIs.
      for (const City& other : ds.cities()) {
        if (other.id != p.city) {
          EXPECT_FALSE(StartsWith(word, other.name + "_"))
              << word << " leaked into " << city_name;
        }
      }
    }
  }
}

TEST(WorldGeneratorTest, EveryPoiHasTopicAndCityWords) {
  auto cfg = SynthWorldConfig::FoursquareLike(Scale::kTiny);
  auto world = GenerateWorld(cfg);
  for (const Poi& p : world.dataset.pois()) {
    EXPECT_EQ(p.words.size(),
              cfg.topic_words_per_poi + cfg.city_words_per_poi);
  }
}

TEST(WorldGeneratorTest, PoisInsideCityBox) {
  auto world = GenerateWorld(SynthWorldConfig::YelpLike(Scale::kTiny));
  for (const Poi& p : world.dataset.pois()) {
    EXPECT_TRUE(world.dataset.city(p.city).box.Contains(p.location))
        << "poi " << p.id;
  }
}

TEST(WorldGeneratorTest, CheckinsRespectCityOfPoi) {
  auto world = GenerateWorld(SynthWorldConfig::FoursquareLike(Scale::kTiny));
  for (const CheckinRecord& r : world.dataset.checkins()) {
    EXPECT_EQ(r.city, world.dataset.poi(r.poi).city);
  }
}

TEST(WorldGeneratorTest, CrossingUsersAreSparseInTarget) {
  auto cfg = SynthWorldConfig::FoursquareLike(Scale::kSmall);
  auto world = GenerateWorld(cfg);
  const auto stats = world.dataset.ComputeStats(cfg.target_city);
  EXPECT_EQ(stats.num_crossing_users, cfg.num_crossing_users);
  // The paper's motivating observation: crossing check-ins are a tiny
  // fraction (<5%) of the total volume.
  EXPECT_LT(static_cast<double>(stats.num_crossing_checkins) /
                static_cast<double>(stats.num_checkins),
            0.05);
  EXPECT_GT(stats.num_crossing_checkins,
            cfg.num_crossing_users * cfg.min_crossing_target_checkins - 1);
}

TEST(WorldGeneratorTest, DowntownImbalanceExists) {
  // Downtown POIs must absorb disproportionately many check-ins — the
  // imbalance the density resampler corrects.
  auto cfg = SynthWorldConfig::FoursquareLike(Scale::kSmall);
  auto world = GenerateWorld(cfg);
  size_t downtown_checkins = 0;
  for (const CheckinRecord& r : world.dataset.checkins()) {
    if (world.truth.poi_downtown[static_cast<size_t>(r.poi)]) {
      ++downtown_checkins;
    }
  }
  size_t downtown_pois = 0;
  for (bool d : world.truth.poi_downtown) downtown_pois += d;
  const double poi_frac = static_cast<double>(downtown_pois) /
                          static_cast<double>(world.dataset.num_pois());
  const double checkin_frac =
      static_cast<double>(downtown_checkins) /
      static_cast<double>(world.dataset.num_checkins());
  EXPECT_GT(checkin_frac, poi_frac + 0.1);
}

TEST(WorldGeneratorTest, GroundTruthAligned) {
  auto world = GenerateWorld(SynthWorldConfig::FoursquareLike(Scale::kTiny));
  EXPECT_EQ(world.truth.poi_topic.size(), world.dataset.num_pois());
  EXPECT_EQ(world.truth.poi_downtown.size(), world.dataset.num_pois());
  EXPECT_EQ(world.truth.poi_attraction.size(), world.dataset.num_pois());
  EXPECT_EQ(world.truth.user_topic_prefs.size(), world.dataset.num_users());
  for (const auto& prefs : world.truth.user_topic_prefs) {
    double sum = 0;
    for (double p : prefs) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(WorldGeneratorTest, UserCheckinsMatchTopicPreferences) {
  // Users should check into their preferred topics far more often than a
  // uniform-topic baseline would.
  auto cfg = SynthWorldConfig::FoursquareLike(Scale::kTiny);
  auto world = GenerateWorld(cfg);
  double aligned = 0, total = 0;
  for (const CheckinRecord& r : world.dataset.checkins()) {
    const auto& prefs =
        world.truth.user_topic_prefs[static_cast<size_t>(r.user)];
    aligned += prefs[world.truth.poi_topic[static_cast<size_t>(r.poi)]];
    total += 1;
  }
  // Mean preference mass on the visited topic must far exceed 1/num_topics.
  EXPECT_GT(aligned / total,
            2.0 / static_cast<double>(TopicLexicon().size()));
}

TEST(WorldGeneratorTest, ParseScale) {
  EXPECT_EQ(ParseScale("tiny"), Scale::kTiny);
  EXPECT_EQ(ParseScale("PAPER"), Scale::kPaper);
  EXPECT_EQ(ParseScale("small"), Scale::kSmall);
  EXPECT_EQ(ParseScale("unknown"), Scale::kSmall);
}

TEST(WorldGeneratorTest, YelpLikeHasTwoCities) {
  auto cfg = SynthWorldConfig::YelpLike(Scale::kTiny);
  EXPECT_EQ(cfg.cities.size(), 2u);
  EXPECT_EQ(cfg.cities[static_cast<size_t>(cfg.target_city)].name,
            "las_vegas");
}

TEST(WorldGeneratorDeathTest, SingleCityAborts) {
  SynthWorldConfig cfg;
  cfg.cities = {{"only", 10, 10, 1, 0.5, {}}};
  EXPECT_DEATH(GenerateWorld(cfg), "source");
}

}  // namespace
}  // namespace sttr::synth
