#include "data/io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "data/synth/world_generator.h"

namespace sttr {
namespace {

// Per-test directory: the fixed dataset filenames would otherwise collide
// when ctest -j runs several DatasetIoTest cases concurrently.
std::string TestDir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::filesystem::path dir = ::testing::TempDir();
  dir /= std::string("sttr_io_") + info->name();
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(DatasetIoTest, PathsInDirectory) {
  const auto p = DatasetPaths::InDirectory("/data");
  EXPECT_EQ(p.cities, "/data/cities.tsv");
  EXPECT_EQ(p.users, "/data/users.tsv");
  EXPECT_EQ(p.pois, "/data/pois.tsv");
  EXPECT_EQ(p.checkins, "/data/checkins.tsv");
}

TEST(DatasetIoTest, RoundTripPreservesEverything) {
  auto world =
      synth::GenerateWorld(synth::SynthWorldConfig::FoursquareLike(
          synth::Scale::kTiny));
  const Dataset& original = world.dataset;
  const auto paths = DatasetPaths::InDirectory(TestDir());
  ASSERT_TRUE(SaveDataset(original, paths).ok());

  auto loaded = LoadDataset(paths);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Dataset& ds = *loaded;

  ASSERT_EQ(ds.num_cities(), original.num_cities());
  ASSERT_EQ(ds.num_users(), original.num_users());
  ASSERT_EQ(ds.num_pois(), original.num_pois());
  ASSERT_EQ(ds.num_checkins(), original.num_checkins());
  // Unused vocabulary entries are not representable in the format.
  EXPECT_LE(ds.vocabulary().size(), original.vocabulary().size());

  for (size_t c = 0; c < ds.num_cities(); ++c) {
    EXPECT_EQ(ds.city(static_cast<CityId>(c)).name,
              original.city(static_cast<CityId>(c)).name);
  }
  for (PoiId v = 0; v < static_cast<PoiId>(ds.num_pois()); ++v) {
    EXPECT_EQ(ds.poi(v).city, original.poi(v).city);
    EXPECT_NEAR(ds.poi(v).location.lat, original.poi(v).location.lat, 1e-8);
    ASSERT_EQ(ds.poi(v).words.size(), original.poi(v).words.size());
    for (size_t i = 0; i < ds.poi(v).words.size(); ++i) {
      EXPECT_EQ(ds.vocabulary().WordOf(ds.poi(v).words[i]),
                original.vocabulary().WordOf(original.poi(v).words[i]));
    }
  }
  for (size_t i = 0; i < ds.num_checkins(); ++i) {
    EXPECT_EQ(ds.checkins()[i].user, original.checkins()[i].user);
    EXPECT_EQ(ds.checkins()[i].poi, original.checkins()[i].poi);
    EXPECT_EQ(ds.checkins()[i].city, original.checkins()[i].city);
  }
  // Statistics identical -> downstream experiments identical.
  const auto a = original.ComputeStats(0);
  const auto b = ds.ComputeStats(0);
  EXPECT_EQ(a.num_crossing_users, b.num_crossing_users);
  EXPECT_EQ(a.num_crossing_checkins, b.num_crossing_checkins);
}

TEST(DatasetIoTest, SecondRoundTripIsIdentity) {
  auto world = synth::GenerateWorld(
      synth::SynthWorldConfig::FoursquareLike(synth::Scale::kTiny));
  const auto paths = DatasetPaths::InDirectory(TestDir());
  ASSERT_TRUE(SaveDataset(world.dataset, paths).ok());
  auto first = LoadDataset(paths);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(SaveDataset(*first, paths).ok());
  auto second = LoadDataset(paths);
  ASSERT_TRUE(second.ok());
  // After one round trip the representation is a fixpoint: identical ids.
  ASSERT_EQ(first->vocabulary().size(), second->vocabulary().size());
  for (PoiId v = 0; v < static_cast<PoiId>(first->num_pois()); ++v) {
    EXPECT_EQ(first->poi(v).words, second->poi(v).words);
  }
}

TEST(DatasetIoTest, MissingFileIsIOError) {
  auto paths = DatasetPaths::InDirectory("/nonexistent-dir-xyz");
  auto r = LoadDataset(paths);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(DatasetIoTest, CommentsAndBlankLinesSkipped) {
  const std::string dir = TestDir();
  auto paths = DatasetPaths::InDirectory(dir);
  std::ofstream(paths.cities)
      << "# comment\n\n0\tmetropolis\t0.0\t1.0\t0.0\t1.0\n";
  std::ofstream(paths.users) << "0\t0\n";
  std::ofstream(paths.pois) << "0\t0\t0.5\t0.5\tpark scenic\n";
  std::ofstream(paths.checkins) << "0\t0\t1.5\n";
  auto r = LoadDataset(paths);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_cities(), 1u);
  EXPECT_EQ(r->vocabulary().size(), 2u);
  EXPECT_EQ(r->checkins()[0].city, 0);
}

TEST(DatasetIoTest, MalformedLinesReportFileAndLine) {
  const std::string dir = TestDir();
  auto paths = DatasetPaths::InDirectory(dir);
  std::ofstream(paths.cities) << "0\tmetropolis\t0.0\t1.0\t0.0\n";  // 5 fields
  auto r = LoadDataset(paths);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("cities.tsv:1"), std::string::npos);
}

TEST(DatasetIoTest, NonDenseIdsRejected) {
  const std::string dir = TestDir();
  auto paths = DatasetPaths::InDirectory(dir);
  std::ofstream(paths.cities) << "1\tmetropolis\t0.0\t1.0\t0.0\t1.0\n";
  auto r = LoadDataset(paths);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("dense"), std::string::npos);
}

TEST(DatasetIoTest, OutOfRangeReferencesRejected) {
  const std::string dir = TestDir();
  auto paths = DatasetPaths::InDirectory(dir);
  std::ofstream(paths.cities) << "0\tm\t0.0\t1.0\t0.0\t1.0\n";
  std::ofstream(paths.users) << "0\t7\n";  // city 7 does not exist
  auto r = LoadDataset(paths);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos);
}

TEST(DatasetIoTest, BadNumberRejected) {
  const std::string dir = TestDir();
  auto paths = DatasetPaths::InDirectory(dir);
  std::ofstream(paths.cities) << "0\tm\tnot_a_number\t1.0\t0.0\t1.0\n";
  auto r = LoadDataset(paths);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("not a number"), std::string::npos);
}

// A loadable base world the coordinate-validation tests corrupt one file of.
struct ValidFiles {
  std::string dir;
  DatasetPaths paths;
};

ValidFiles WriteValidWorld() {
  ValidFiles f{TestDir(), {}};
  f.paths = DatasetPaths::InDirectory(f.dir);
  std::ofstream(f.paths.cities) << "0\tm\t0.0\t1.0\t0.0\t1.0\n";
  std::ofstream(f.paths.users) << "0\t0\n";
  std::ofstream(f.paths.pois) << "0\t0\t0.5\t0.5\tpark\n";
  std::ofstream(f.paths.checkins) << "0\t0\t1.5\n";
  return f;
}

void ExpectRejected(const DatasetPaths& paths, const std::string& file_and_line,
                    const std::string& what) {
  auto r = LoadDataset(paths);
  ASSERT_FALSE(r.ok()) << "expected rejection: " << what;
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find(file_and_line), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find(what), std::string::npos)
      << r.status().message();
}

TEST(DatasetIoTest, NonFinitePoiCoordinateRejected) {
  auto f = WriteValidWorld();
  std::ofstream(f.paths.pois) << "0\t0\tnan\t0.5\tpark\n";
  ExpectRejected(f.paths, "pois.tsv:1", "non-finite");
  std::ofstream(f.paths.pois) << "0\t0\t0.5\tinf\tpark\n";
  ExpectRejected(f.paths, "pois.tsv:1", "non-finite");
}

TEST(DatasetIoTest, OutOfBoundsPoiLatitudeRejected) {
  auto f = WriteValidWorld();
  std::ofstream(f.paths.pois) << "0\t0\t91.0\t0.5\tpark\n";
  ExpectRejected(f.paths, "pois.tsv:1", "latitude out of range");
  std::ofstream(f.paths.pois) << "0\t0\t-90.5\t0.5\tpark\n";
  ExpectRejected(f.paths, "pois.tsv:1", "latitude out of range");
}

TEST(DatasetIoTest, OutOfBoundsPoiLongitudeRejected) {
  auto f = WriteValidWorld();
  std::ofstream(f.paths.pois) << "0\t0\t0.5\t180.5\tpark\n";
  ExpectRejected(f.paths, "pois.tsv:1", "longitude out of range");
}

TEST(DatasetIoTest, LineNumberCountsPhysicalLines) {
  auto f = WriteValidWorld();
  // The bad POI sits on physical line 3 (after a comment and a valid line,
  // with a second valid POI following).
  std::ofstream(f.paths.pois)
      << "# header\n0\t0\t0.5\t0.5\tpark\n1\t0\t200.0\t0.5\tcafe\n";
  ExpectRejected(f.paths, "pois.tsv:3", "latitude out of range");
}

TEST(DatasetIoTest, NonFiniteCityBoxRejected) {
  auto f = WriteValidWorld();
  std::ofstream(f.paths.cities) << "0\tm\t0.0\tinf\t0.0\t1.0\n";
  ExpectRejected(f.paths, "cities.tsv:1", "non-finite");
}

TEST(DatasetIoTest, InvertedCityBoxRejected) {
  auto f = WriteValidWorld();
  std::ofstream(f.paths.cities) << "0\tm\t1.0\t0.0\t0.0\t1.0\n";
  ExpectRejected(f.paths, "cities.tsv:1", "inverted bounding box");
}

TEST(DatasetIoTest, OutOfRangePoiCityRejected) {
  auto f = WriteValidWorld();
  std::ofstream(f.paths.pois) << "0\t3\t0.5\t0.5\tpark\n";
  ExpectRejected(f.paths, "pois.tsv:1", "city_id out of range");
}

TEST(DatasetIoTest, OutOfRangeCheckinReferencesRejected) {
  auto f = WriteValidWorld();
  std::ofstream(f.paths.checkins) << "5\t0\t1.5\n";
  ExpectRejected(f.paths, "checkins.tsv:1", "user_id out of range");
  std::ofstream(f.paths.checkins) << "0\t5\t1.5\n";
  ExpectRejected(f.paths, "checkins.tsv:1", "poi_id out of range");
}

TEST(DatasetIoTest, NegativeIdsRejected) {
  auto f = WriteValidWorld();
  std::ofstream(f.paths.checkins) << "-1\t0\t1.5\n";
  ExpectRejected(f.paths, "checkins.tsv:1", "user_id out of range");
}

}  // namespace
}  // namespace sttr
