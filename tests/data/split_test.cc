#include "data/split.h"

#include <set>

#include <gtest/gtest.h>

#include "data/synth/world_generator.h"

namespace sttr {
namespace {

synth::SynthWorld TinyWorld() {
  auto cfg = synth::SynthWorldConfig::FoursquareLike(synth::Scale::kTiny);
  return synth::GenerateWorld(cfg);
}

TEST(SplitTest, TrainAndTestPartitionCheckins) {
  auto world = TinyWorld();
  const auto split = MakeCrossCitySplit(world.dataset, 0);
  EXPECT_EQ(split.train.size() + split.num_heldout_checkins,
            world.dataset.num_checkins());
}

TEST(SplitTest, TestUsersAreExactlyCrossingUsers) {
  auto world = TinyWorld();
  const auto split = MakeCrossCitySplit(world.dataset, 0);
  const auto stats = world.dataset.ComputeStats(0);
  EXPECT_EQ(split.test_users.size(), stats.num_crossing_users);
  EXPECT_EQ(split.test_users.size(), world.config.num_crossing_users);
}

TEST(SplitTest, GroundTruthIsInTargetCityAndHeldOut) {
  auto world = TinyWorld();
  const auto split = MakeCrossCitySplit(world.dataset, 0);
  std::set<size_t> train(split.train.begin(), split.train.end());
  for (const auto& tu : split.test_users) {
    EXPECT_FALSE(tu.ground_truth.empty());
    for (PoiId v : tu.ground_truth) {
      EXPECT_EQ(world.dataset.poi(v).city, 0);
    }
    // None of the user's target-city check-ins appear in train.
    for (size_t idx : world.dataset.CheckinsOfUser(tu.user)) {
      if (world.dataset.checkins()[idx].city == 0) {
        EXPECT_EQ(train.count(idx), 0u);
      } else {
        EXPECT_EQ(train.count(idx), 1u);
      }
    }
  }
}

TEST(SplitTest, GroundTruthDeduplicated) {
  auto world = TinyWorld();
  const auto split = MakeCrossCitySplit(world.dataset, 0);
  for (const auto& tu : split.test_users) {
    std::set<PoiId> uniq(tu.ground_truth.begin(), tu.ground_truth.end());
    EXPECT_EQ(uniq.size(), tu.ground_truth.size());
  }
}

TEST(SplitTest, LocalUsersFullyInTrain) {
  auto world = TinyWorld();
  const auto split = MakeCrossCitySplit(world.dataset, 0);
  std::set<UserId> test_users;
  for (const auto& tu : split.test_users) test_users.insert(tu.user);
  std::set<size_t> train(split.train.begin(), split.train.end());
  for (const User& u : world.dataset.users()) {
    if (test_users.count(u.id)) continue;
    for (size_t idx : world.dataset.CheckinsOfUser(u.id)) {
      EXPECT_EQ(train.count(idx), 1u);
    }
  }
}

TEST(SplitTest, DifferentTargetCityChangesSplit) {
  auto world = TinyWorld();
  const auto split0 = MakeCrossCitySplit(world.dataset, 0);
  const auto split1 = MakeCrossCitySplit(world.dataset, 1);
  // The tiny world has crossing users into city 0 only; with city 1 as
  // target the same users cross in the other direction.
  EXPECT_EQ(split1.target_city, 1);
  EXPECT_EQ(split0.test_users.size(), split1.test_users.size());
}

TEST(SplitDeathTest, InvalidCityAborts) {
  auto world = TinyWorld();
  EXPECT_DEATH(MakeCrossCitySplit(world.dataset, 99), "");
  EXPECT_DEATH(MakeCrossCitySplit(world.dataset, -1), "");
}

}  // namespace
}  // namespace sttr
