#include "data/dataset.h"

#include <gtest/gtest.h>

namespace sttr {
namespace {

City MakeCity(CityId id, const std::string& name) {
  City c;
  c.id = id;
  c.name = name;
  c.box = BoundingBox{0.0, 1.0, 0.0, 1.0};
  return c;
}

Dataset TwoCityDataset() {
  Dataset ds;
  ds.AddCity(MakeCity(0, "target"));
  ds.AddCity(MakeCity(1, "source"));
  for (UserId u = 0; u < 3; ++u) ds.AddUser(User{u, u == 0 ? 0 : 1});
  const WordId w0 = ds.mutable_vocabulary().Add("park");
  const WordId w1 = ds.mutable_vocabulary().Add("museum");
  ds.AddPoi(Poi{0, 0, {0.5, 0.5}, {w0}});
  ds.AddPoi(Poi{1, 1, {0.5, 0.5}, {w1}});
  ds.AddPoi(Poi{2, 1, {0.2, 0.2}, {w0, w1}});
  // User 0: local of city 0. User 1: source only. User 2: crossing.
  ds.AddCheckin(CheckinRecord{0, 0, 0, 0.0});
  ds.AddCheckin(CheckinRecord{1, 1, 1, 1.0});
  ds.AddCheckin(CheckinRecord{1, 2, 1, 2.0});
  ds.AddCheckin(CheckinRecord{2, 1, 1, 3.0});
  ds.AddCheckin(CheckinRecord{2, 0, 0, 4.0});
  ds.BuildIndexes();
  return ds;
}

TEST(DatasetTest, SizesAndAccessors) {
  Dataset ds = TwoCityDataset();
  EXPECT_EQ(ds.num_users(), 3u);
  EXPECT_EQ(ds.num_pois(), 3u);
  EXPECT_EQ(ds.num_cities(), 2u);
  EXPECT_EQ(ds.num_checkins(), 5u);
  EXPECT_EQ(ds.city(1).name, "source");
  EXPECT_EQ(ds.poi(2).words.size(), 2u);
  EXPECT_EQ(ds.user(2).home_city, 1);
}

TEST(DatasetTest, CheckinsOfUserIndex) {
  Dataset ds = TwoCityDataset();
  EXPECT_EQ(ds.CheckinsOfUser(0).size(), 1u);
  EXPECT_EQ(ds.CheckinsOfUser(1).size(), 2u);
  EXPECT_EQ(ds.CheckinsOfUser(2).size(), 2u);
  const auto& idx = ds.CheckinsOfUser(2);
  EXPECT_EQ(ds.checkins()[idx[0]].poi, 1);
  EXPECT_EQ(ds.checkins()[idx[1]].poi, 0);
}

TEST(DatasetTest, PoisInCityIndex) {
  Dataset ds = TwoCityDataset();
  EXPECT_EQ(ds.PoisInCity(0), (std::vector<PoiId>{0}));
  EXPECT_EQ(ds.PoisInCity(1), (std::vector<PoiId>{1, 2}));
}

TEST(DatasetTest, StatsWithTargetCity) {
  Dataset ds = TwoCityDataset();
  const DatasetStats s = ds.ComputeStats(0);
  EXPECT_EQ(s.num_users, 3u);
  EXPECT_EQ(s.num_words, 2u);
  EXPECT_EQ(s.num_checkins, 5u);
  // Only user 2 spans target + source.
  EXPECT_EQ(s.num_crossing_users, 1u);
  EXPECT_EQ(s.num_crossing_checkins, 1u);  // their single target check-in
}

TEST(DatasetTest, StatsAnyCityPair) {
  Dataset ds = TwoCityDataset();
  const DatasetStats s = ds.ComputeStats(-1);
  EXPECT_EQ(s.num_crossing_users, 1u);
}

TEST(DatasetDeathTest, NonDenseIdsAbort) {
  Dataset ds;
  ds.AddCity(MakeCity(0, "a"));
  EXPECT_DEATH(ds.AddCity(MakeCity(2, "b")), "dense");
  EXPECT_DEATH(ds.AddUser(User{5, 0}), "dense");
}

TEST(DatasetDeathTest, CheckinValidatesReferences) {
  Dataset ds;
  ds.AddCity(MakeCity(0, "a"));
  ds.AddUser(User{0, 0});
  EXPECT_DEATH(ds.AddCheckin(CheckinRecord{0, 0, 0, 0.0}), "");
}

TEST(DatasetDeathTest, IndexAccessBeforeBuildAborts) {
  Dataset ds;
  ds.AddCity(MakeCity(0, "a"));
  ds.AddUser(User{0, 0});
  EXPECT_DEATH(ds.CheckinsOfUser(0), "BuildIndexes");
}

}  // namespace
}  // namespace sttr
