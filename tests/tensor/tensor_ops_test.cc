#include "tensor/tensor_ops.h"

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sttr {
namespace {

// Force a multi-worker global pool (unless the environment already pins
// one) so the ParallelMatMul tests exercise real cross-thread sharding
// even on single-core CI runners. Runs before main(), i.e. before the
// lazily-constructed pool reads the variable.
const int kForcePoolThreads = [] {
  setenv("STTR_NUM_THREADS", "4", /*overwrite=*/0);
  return 0;
}();

Tensor Naive(const Tensor& a, const Tensor& b) {
  Tensor c({a.rows(), b.cols()});
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double s = 0;
      for (size_t k = 0; k < a.cols(); ++k) {
        s += static_cast<double>(a.at(i, k)) * b.at(k, j);
      }
      c.at(i, j) = static_cast<float>(s);
    }
  }
  return c;
}

Tensor Transpose(const Tensor& a) {
  Tensor t({a.cols(), a.rows()});
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

TEST(MatMulTest, SmallKnownProduct) {
  Tensor a({2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor b({2, 2}, std::vector<float>{5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 19);
  EXPECT_EQ(c.at(0, 1), 22);
  EXPECT_EQ(c.at(1, 0), 43);
  EXPECT_EQ(c.at(1, 1), 50);
}

struct MatDims {
  size_t n, k, m;
};

class MatMulSweep : public ::testing::TestWithParam<MatDims> {};

TEST_P(MatMulSweep, MatchesNaive) {
  const auto [n, k, m] = GetParam();
  Rng rng(n * 100 + k * 10 + m);
  Tensor a = Tensor::RandomNormal({n, k}, rng);
  Tensor b = Tensor::RandomNormal({k, m}, rng);
  EXPECT_TRUE(MatMul(a, b).AllClose(Naive(a, b), 1e-4, 1e-5));
}

TEST_P(MatMulSweep, TransAEqualsExplicitTranspose) {
  const auto [n, k, m] = GetParam();
  Rng rng(7 * n + k + m);
  Tensor a = Tensor::RandomNormal({n, k}, rng);
  Tensor b = Tensor::RandomNormal({n, m}, rng);
  EXPECT_TRUE(
      MatMulTransA(a, b).AllClose(Naive(Transpose(a), b), 1e-4, 1e-5));
}

TEST_P(MatMulSweep, TransBEqualsExplicitTranspose) {
  const auto [n, k, m] = GetParam();
  Rng rng(13 * n + k + m);
  Tensor a = Tensor::RandomNormal({n, k}, rng);
  Tensor b = Tensor::RandomNormal({m, k}, rng);
  EXPECT_TRUE(
      MatMulTransB(a, b).AllClose(Naive(a, Transpose(b)), 1e-4, 1e-5));
}

INSTANTIATE_TEST_SUITE_P(
    Dims, MatMulSweep,
    ::testing::Values(MatDims{1, 1, 1}, MatDims{2, 3, 4}, MatDims{5, 1, 7},
                      MatDims{8, 8, 8}, MatDims{17, 31, 9},
                      MatDims{64, 16, 32}));

// Shapes chosen to land on every path of the blocked kernel: exact
// row/column tile multiples, ragged row remainders, ragged column edges,
// and both at once.
INSTANTIATE_TEST_SUITE_P(
    TileEdges, MatMulSweep,
    ::testing::Values(MatDims{8, 8, 32}, MatDims{16, 5, 64},
                      MatDims{9, 7, 33}, MatDims{23, 31, 40},
                      MatDims{7, 12, 31}, MatDims{1, 64, 32},
                      MatDims{106, 13, 1}));

TEST(MatMulTest, DegenerateShapes) {
  // 0-row and 0-column operands must produce empty (but shaped) results.
  Rng rng(3);
  const Tensor b = Tensor::RandomNormal({4, 5}, rng);
  const Tensor c0 = MatMul(Tensor({0, 4}), b);
  EXPECT_EQ(c0.rows(), 0u);
  EXPECT_EQ(c0.cols(), 5u);
  const Tensor p0 = ParallelMatMul(Tensor({0, 4}), b);
  EXPECT_EQ(p0.rows(), 0u);

  const Tensor a = Tensor::RandomNormal({3, 4}, rng);
  const Tensor cm0 = MatMul(a, Tensor({4, 0}));
  EXPECT_EQ(cm0.rows(), 3u);
  EXPECT_EQ(cm0.cols(), 0u);

  // A single row exercises the remainder-row micro-kernel end to end.
  const Tensor one = Tensor::RandomNormal({1, 4}, rng);
  EXPECT_TRUE(MatMul(one, b).AllClose(Naive(one, b), 1e-5, 1e-6));
}

TEST(ParallelMatMulTest, BitIdenticalToSerialBelowGrain) {
  Rng rng(11);
  const Tensor a = Tensor::RandomNormal({13, 24}, rng);
  const Tensor b = Tensor::RandomNormal({24, 37}, rng);
  const Tensor serial = MatMul(a, b);
  const Tensor parallel = ParallelMatMul(a, b);
  ASSERT_TRUE(serial.SameShape(parallel));
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "element " << i;
  }
}

TEST(ParallelMatMulTest, BitIdenticalToSerialAboveGrain) {
  // 128*128*128 = 2M multiply-adds: over the dispatch threshold, so this
  // goes through the sharded path whenever the pool has >1 worker. Row
  // shards are kRowTile-aligned, so results must match serial bit for bit.
  Rng rng(12);
  const Tensor a = Tensor::RandomNormal({128, 128}, rng);
  const Tensor b = Tensor::RandomNormal({128, 128}, rng);
  const Tensor serial = MatMul(a, b);
  const Tensor parallel = ParallelMatMul(a, b);
  ASSERT_TRUE(serial.SameShape(parallel));
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "element " << i;
  }
}

TEST(ParallelMatMulTest, RaggedShapeAboveGrain) {
  // Non-multiple-of-tile rows and columns through the parallel dispatch.
  Rng rng(13);
  const Tensor a = Tensor::RandomNormal({107, 129}, rng);
  const Tensor b = Tensor::RandomNormal({129, 83}, rng);
  const Tensor serial = MatMul(a, b);
  const Tensor parallel = ParallelMatMul(a, b);
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "element " << i;
  }
  EXPECT_TRUE(serial.AllClose(Naive(a, b), 1e-3, 1e-4));
}

TEST(MatMulTest, ShapeMismatchAborts) {
  Tensor a({2, 3});
  Tensor b({2, 3});
  EXPECT_DEATH(MatMul(a, b), "inner");
}

TEST(ElementwiseTest, AddSubMulScale) {
  Tensor a({2}, std::vector<float>{1, 2});
  Tensor b({2}, std::vector<float>{3, 5});
  EXPECT_EQ(Add(a, b)[1], 7);
  EXPECT_EQ(Sub(a, b)[0], -2);
  EXPECT_EQ(Mul(a, b)[1], 10);
  EXPECT_EQ(Scale(a, -2.0f)[0], -2);
}

TEST(BroadcastTest, AddRowBroadcast) {
  Tensor x({2, 3}, std::vector<float>{0, 0, 0, 1, 1, 1});
  Tensor bias({3}, std::vector<float>{10, 20, 30});
  Tensor y = AddRowBroadcast(x, bias);
  EXPECT_EQ(y.at(0, 2), 30);
  EXPECT_EQ(y.at(1, 0), 11);
}

TEST(ReduceTest, ColSum) {
  Tensor x({3, 2}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor s = ColSum(x);
  EXPECT_EQ(s[0], 9);
  EXPECT_EQ(s[1], 12);
}

TEST(RowwiseDotTest, MatchesManual) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b({2, 3}, std::vector<float>{1, 0, 1, 0, 1, 0});
  Tensor d = RowwiseDot(a, b);
  EXPECT_EQ(d[0], 4);
  EXPECT_EQ(d[1], 5);
}

TEST(ConcatSliceTest, RoundTrip) {
  Rng rng(5);
  Tensor a = Tensor::RandomNormal({4, 3}, rng);
  Tensor b = Tensor::RandomNormal({4, 2}, rng);
  Tensor c = ConcatCols(a, b);
  EXPECT_EQ(c.cols(), 5u);
  EXPECT_TRUE(SliceCols(c, 0, 3).AllClose(a, 0, 0));
  EXPECT_TRUE(SliceCols(c, 3, 5).AllClose(b, 0, 0));
}

TEST(GatherScatterTest, GatherPicksRows) {
  Tensor table({3, 2}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor g = GatherRows(table, {2, 0, 2});
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.at(0, 1), 6);
  EXPECT_EQ(g.at(1, 0), 1);
  EXPECT_EQ(g.at(2, 0), 5);
}

TEST(GatherScatterTest, ScatterAccumulatesDuplicates) {
  Tensor dest({3, 2});
  Tensor src({2, 2}, std::vector<float>{1, 1, 2, 2});
  ScatterRowsAdd(dest, {1, 1}, src);
  EXPECT_EQ(dest.at(1, 0), 3);
  EXPECT_EQ(dest.at(0, 0), 0);
}

TEST(GatherScatterTest, AdjointProperty) {
  // <Gather(T, idx), S> == <T, Scatter(idx, S)> — gather/scatter must be
  // adjoint for the autograd embedding backward to be correct.
  Rng rng(9);
  Tensor table = Tensor::RandomNormal({6, 4}, rng);
  std::vector<int64_t> idx = {5, 0, 3, 3, 1};
  Tensor s = Tensor::RandomNormal({5, 4}, rng);
  const Tensor g = GatherRows(table, idx);
  double lhs = 0;
  for (size_t i = 0; i < g.size(); ++i) lhs += static_cast<double>(g[i]) * s[i];
  Tensor scat({6, 4});
  ScatterRowsAdd(scat, idx, s);
  double rhs = 0;
  for (size_t i = 0; i < scat.size(); ++i) {
    rhs += static_cast<double>(scat[i]) * table[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(GatherScatterTest, OutOfRangeAborts) {
  Tensor table({3, 2});
  EXPECT_DEATH(GatherRows(table, {3}), "");
  EXPECT_DEATH(GatherRows(table, {-1}), "");
}

TEST(ActivationTest, ReluClampsNegatives) {
  Tensor x({4}, std::vector<float>{-1, 0, 2, -0.5});
  Tensor y = Relu(x);
  EXPECT_EQ(y[0], 0);
  EXPECT_EQ(y[1], 0);
  EXPECT_EQ(y[2], 2);
  EXPECT_EQ(y[3], 0);
}

TEST(ActivationTest, SigmoidValues) {
  EXPECT_FLOAT_EQ(SigmoidScalar(0.0f), 0.5f);
  EXPECT_NEAR(SigmoidScalar(2.0f), 1.0f / (1.0f + std::exp(-2.0f)), 1e-6);
  // Extreme inputs must not overflow.
  EXPECT_NEAR(SigmoidScalar(100.0f), 1.0f, 1e-6);
  EXPECT_NEAR(SigmoidScalar(-100.0f), 0.0f, 1e-6);
}

TEST(ActivationTest, LogSigmoidStable) {
  EXPECT_NEAR(LogSigmoid(0.0f), std::log(0.5), 1e-6);
  // Large negative arguments: log sigmoid(x) ~ x.
  EXPECT_NEAR(LogSigmoid(-50.0f), -50.0f, 1e-4);
  // Large positive arguments: ~ 0 but finite.
  EXPECT_GT(LogSigmoid(80.0f), -1e-6);
  EXPECT_LE(LogSigmoid(80.0f), 0.0f);
}

TEST(ActivationTest, TanhMatchesStd) {
  Tensor x({3}, std::vector<float>{-1, 0, 1});
  Tensor y = TanhT(x);
  EXPECT_NEAR(y[0], std::tanh(-1.0f), 1e-6);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_NEAR(y[2], std::tanh(1.0f), 1e-6);
}

}  // namespace
}  // namespace sttr
