#include "tensor/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace sttr {
namespace {

// Sizes straddling the 8-wide vector width so every test exercises both the
// full-vector body and the scalar tail (and n < 8 pure-tail cases).
const size_t kSizes[] = {1, 3, 7, 8, 9, 16, 17, 33, 256};

std::vector<float> RandomVec(size_t n, uint32_t seed, float lo = -8.0f,
                             float hi = 8.0f) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

TEST(SimdTest, AxpyMatchesScalarReference) {
  for (size_t n : kSizes) {
    const auto x = RandomVec(n, 1);
    auto y = RandomVec(n, 2);
    auto y_ref = y;
    simd::Axpy(y.data(), x.data(), 0.37f, n);
    simd::AxpyScalar(y_ref.data(), x.data(), 0.37f, n);
    for (size_t i = 0; i < n; ++i) {
      // FMA contraction may differ from the reference by one rounding.
      EXPECT_NEAR(y[i], y_ref[i], 1e-5f) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdTest, AxpyIsDeterministicAcrossRuns) {
  const size_t n = 123;
  const auto x = RandomVec(n, 3);
  auto y1 = RandomVec(n, 4);
  auto y2 = y1;
  simd::Axpy(y1.data(), x.data(), -1.25f, n);
  simd::Axpy(y2.data(), x.data(), -1.25f, n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(y1[i], y2[i]);
}

TEST(SimdTest, SigmoidManyMatchesScalarReference) {
  for (size_t n : kSizes) {
    const auto x = RandomVec(n, 5, -30.0f, 30.0f);
    std::vector<float> out(n), ref(n);
    simd::SigmoidMany(out.data(), x.data(), n);
    simd::SigmoidManyScalar(ref.data(), x.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(out[i], ref[i], 2e-7f) << "n=" << n << " x=" << x[i];
      // Closed bounds: sigmoid(|x| >~ 17) rounds to exactly 0 or 1 in float.
      EXPECT_GE(out[i], 0.0f);
      EXPECT_LE(out[i], 1.0f);
    }
  }
}

TEST(SimdTest, SigmoidManyWorksInPlace) {
  auto x = RandomVec(40, 6);
  auto ref = x;
  simd::SigmoidMany(x.data(), x.data(), x.size());
  simd::SigmoidManyScalar(ref.data(), ref.data(), ref.size());
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], ref[i], 2e-7f);
}

TEST(SimdTest, SigmoidSaturatesStably) {
  const float xs[] = {-200.0f, -88.0f, 0.0f, 88.0f, 200.0f};
  float out[5];
  simd::SigmoidMany(out, xs, 5);
  EXPECT_GE(out[0], 0.0f);
  EXPECT_NEAR(out[2], 0.5f, 1e-6f);
  EXPECT_LE(out[4], 1.0f);
  for (float o : out) EXPECT_TRUE(std::isfinite(o));
}

TEST(SimdTest, BceWithLogitsSumMatchesScalarReference) {
  for (size_t n : kSizes) {
    const auto x = RandomVec(n, 7, -20.0f, 20.0f);
    std::vector<float> y(n);
    for (size_t i = 0; i < n; ++i) y[i] = (i % 3 == 0) ? 1.0f : 0.0f;
    const double got = simd::BceWithLogitsSum(x.data(), y.data(), n);
    const double ref = simd::BceWithLogitsSumScalar(x.data(), y.data(), n);
    EXPECT_NEAR(got, ref, 1e-4 * (1.0 + std::fabs(ref))) << "n=" << n;
    EXPECT_GE(got, 0.0);
  }
}

TEST(SimdTest, AdamRowMatchesScalarReference) {
  for (size_t n : kSizes) {
    auto w = RandomVec(n, 8, -1.0f, 1.0f);
    auto m = RandomVec(n, 9, -0.1f, 0.1f);
    auto v = RandomVec(n, 10, 0.0f, 0.1f);
    const auto g = RandomVec(n, 11, -1.0f, 1.0f);
    auto w2 = w, m2 = m, v2 = v;
    const float lr = 1e-2f, b1 = 0.9f, b2 = 0.999f, eps = 1e-8f;
    const float bc1 = 1.0f - std::pow(b1, 3.0f);
    const float bc2 = 1.0f - std::pow(b2, 3.0f);
    simd::AdamRow(w.data(), m.data(), v.data(), g.data(), n, lr, b1, b2, bc1,
                  bc2, eps);
    simd::AdamRowScalar(w2.data(), m2.data(), v2.data(), g.data(), n, lr, b1,
                        b2, bc1, bc2, eps);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(w[i], w2[i], 1e-5f) << "n=" << n << " i=" << i;
      EXPECT_NEAR(m[i], m2[i], 1e-6f);
      EXPECT_NEAR(v[i], v2[i], 1e-6f);
    }
  }
}

TEST(SimdTest, AdaGradRowMatchesScalarReference) {
  for (size_t n : kSizes) {
    auto w = RandomVec(n, 12, -1.0f, 1.0f);
    auto acc = RandomVec(n, 13, 0.0f, 0.5f);
    const auto g = RandomVec(n, 14, -1.0f, 1.0f);
    auto w2 = w, acc2 = acc;
    simd::AdaGradRow(w.data(), acc.data(), g.data(), n, 1e-2f, 1e-8f);
    simd::AdaGradRowScalar(w2.data(), acc2.data(), g.data(), n, 1e-2f, 1e-8f);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(w[i], w2[i], 1e-5f) << "n=" << n << " i=" << i;
      EXPECT_NEAR(acc[i], acc2[i], 1e-6f);
    }
  }
}

TEST(SimdTest, SgdRowIsAxpyWithNegatedLr) {
  const size_t n = 19;
  auto w = RandomVec(n, 15);
  const auto g = RandomVec(n, 16);
  auto w_ref = w;
  simd::SgdRow(w.data(), g.data(), n, 0.5f);
  simd::Axpy(w_ref.data(), g.data(), -0.5f, n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(w[i], w_ref[i]);
}

// ---- Int8 inference kernels -------------------------------------------------

std::vector<int8_t> RandomI8(size_t n, uint32_t seed) {
  // Full maddubs-safe range, extremes included: the quantizer clamps to
  // [-127, 127] and the vector==scalar guarantee must hold at the bound.
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(-127, 127);
  std::vector<int8_t> v(n);
  for (auto& x : v) x = static_cast<int8_t>(dist(rng));
  return v;
}

TEST(SimdTest, DotI8MatchesScalarExactlyAtTileEdges) {
  // Sizes straddling the 32-lane int8 vector width: pure tail, one vector
  // minus/plus one, multiples, and a large mixed case. Integer arithmetic,
  // so vector and scalar must agree EXACTLY, not approximately.
  for (size_t n : {size_t{1}, size_t{7}, size_t{31}, size_t{32}, size_t{33},
                   size_t{64}, size_t{100}, size_t{127}, size_t{256},
                   size_t{1000}}) {
    const auto a = RandomI8(n, 20 + static_cast<uint32_t>(n));
    const auto b = RandomI8(n, 40 + static_cast<uint32_t>(n));
    EXPECT_EQ(simd::DotI8(a.data(), b.data(), n),
              simd::DotI8Scalar(a.data(), b.data(), n))
        << "n=" << n;
  }
}

TEST(SimdTest, DotI8SaturationFreeAtExtremes) {
  // All-(-127) x all-(-127) maximises every maddubs pair sum (2 * 127^2 =
  // 32258 < 32767): the one input that would saturate if -128 were allowed.
  for (size_t n : {size_t{32}, size_t{33}, size_t{96}}) {
    const std::vector<int8_t> lo(n, -127);
    const std::vector<int8_t> hi(n, 127);
    const int32_t expect = static_cast<int32_t>(n) * 127 * 127;
    EXPECT_EQ(simd::DotI8(lo.data(), lo.data(), n), expect);
    EXPECT_EQ(simd::DotI8(hi.data(), hi.data(), n), expect);
    EXPECT_EQ(simd::DotI8(lo.data(), hi.data(), n), -expect);
  }
}

TEST(SimdTest, DotI8HandlesZeroLength) {
  const int8_t dummy = 5;
  EXPECT_EQ(simd::DotI8(&dummy, &dummy, 0), 0);
  EXPECT_EQ(simd::DotI8Scalar(&dummy, &dummy, 0), 0);
}

TEST(SimdTest, SumI8MatchesNaiveAccumulation) {
  for (size_t n : {size_t{1}, size_t{31}, size_t{33}, size_t{200}}) {
    const auto v = RandomI8(n, 60 + static_cast<uint32_t>(n));
    int32_t expect = 0;
    for (const int8_t x : v) expect += x;
    EXPECT_EQ(simd::SumI8Scalar(v.data(), n), expect) << "n=" << n;
  }
}

TEST(SimdTest, GemmI8MatchesPerElementDots) {
  // The layer-0 GEMM shape: n activations x m outputs over width k, with k
  // off the 32-lane grid so every dot exercises the tail.
  const size_t n = 5, m = 7, k = 43;
  const auto a = RandomI8(n * k, 70);
  const auto b = RandomI8(m * k, 71);
  std::vector<int32_t> c(n * m, -1);
  simd::GemmI8RowMajor(a.data(), b.data(), c.data(), n, m, k);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      EXPECT_EQ(c[i * m + j],
                simd::DotI8Scalar(a.data() + i * k, b.data() + j * k, k))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(SimdTest, ScalarHelpersAgree) {
  for (float x : {-5.0f, -0.5f, 0.0f, 0.5f, 5.0f}) {
    EXPECT_NEAR(simd::SigmoidOne(x), 1.0f / (1.0f + std::exp(-x)), 1e-6f);
    EXPECT_NEAR(simd::LogSigmoidOne(x), std::log(simd::SigmoidOne(x)), 1e-5f);
  }
  // BCE term at y=1 is -log(sigmoid(x)); at y=0 it is -log(1-sigmoid(x)).
  EXPECT_NEAR(simd::BceTermScalar(2.0f, 1.0f),
              -std::log(1.0 / (1.0 + std::exp(-2.0))), 1e-6);
  EXPECT_NEAR(simd::BceTermScalar(2.0f, 0.0f),
              -std::log(1.0 - 1.0 / (1.0 + std::exp(-2.0))), 1e-5);
}

}  // namespace
}  // namespace sttr
