// Per-row int8 quantization (tensor/quant.h): round-trip error bounds of
// both schemes, the maddubs-safe [-127, 127] clamp, degenerate-row
// exactness, serialization, and the IEEE binary16 storage conversions the
// fp16 MLP tail rides on.

#include "tensor/quant.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <sstream>
#include <vector>

#include "tensor/tensor.h"

namespace sttr {
namespace {

Tensor RandomMatrix(size_t rows, size_t cols, uint32_t seed, float lo = -2.0f,
                    float hi = 2.0f) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  Tensor m({rows, cols});
  for (size_t i = 0; i < m.size(); ++i) m[i] = dist(rng);
  return m;
}

/// The documented per-entry bound: scale/2 interior, 1.5*scale at affine
/// extremes where the zero-point and value roundings collide.
double ErrorBound(const RowQuantizedMatrix& q, size_t r) {
  const double s = q.scale(r);
  return q.scheme == QuantScheme::kAffine ? 1.5 * s : 0.5 * s + 1e-7;
}

TEST(QuantTest, SymmetricRoundTripWithinHalfStep) {
  const Tensor m = RandomMatrix(17, 33, 1);
  const RowQuantizedMatrix q = QuantizeRows(m, QuantScheme::kSymmetric);
  const Tensor back = q.Dequantize();
  for (size_t r = 0; r < q.rows; ++r) {
    for (size_t c = 0; c < q.cols; ++c) {
      EXPECT_NEAR(back.row(r)[c], m.row(r)[c], ErrorBound(q, r))
          << "r=" << r << " c=" << c;
    }
  }
}

TEST(QuantTest, AffineRoundTripWithinBound) {
  // Skewed rows (all-positive) are affine's raison d'etre: symmetric wastes
  // half its range there, affine must still land within its bound.
  const Tensor m = RandomMatrix(17, 33, 2, 0.5f, 3.5f);
  const RowQuantizedMatrix q = QuantizeRows(m, QuantScheme::kAffine);
  const Tensor back = q.Dequantize();
  for (size_t r = 0; r < q.rows; ++r) {
    for (size_t c = 0; c < q.cols; ++c) {
      EXPECT_NEAR(back.row(r)[c], m.row(r)[c], ErrorBound(q, r))
          << "r=" << r << " c=" << c;
    }
  }
}

TEST(QuantTest, AffineBeatsSymmetricOnSkewedRows) {
  const Tensor m = RandomMatrix(8, 64, 3, 10.0f, 11.0f);
  const RowQuantizedMatrix sym = QuantizeRows(m, QuantScheme::kSymmetric);
  const RowQuantizedMatrix aff = QuantizeRows(m, QuantScheme::kAffine);
  // Affine's step covers [10, 11]; symmetric's covers [-11, 11].
  for (size_t r = 0; r < m.rows(); ++r) {
    EXPECT_LT(aff.scale(r), sym.scale(r) / 10.0f) << "r=" << r;
  }
}

TEST(QuantTest, ValuesNeverReachMinus128) {
  // -128 would let the AVX2 maddubs pair-sum saturate (tensor/simd.h); the
  // quantizer must clamp to [-127, 127] even for adversarial inputs.
  Tensor m({2, 4});
  m.row(0)[0] = -1e30f;
  m.row(0)[1] = 1e30f;
  m.row(0)[2] = 0.0f;
  m.row(0)[3] = -1.0f;
  m.row(1)[0] = -0.003f;
  m.row(1)[1] = 0.001f;
  m.row(1)[2] = 0.0015f;
  m.row(1)[3] = -0.0005f;
  for (const QuantScheme scheme :
       {QuantScheme::kSymmetric, QuantScheme::kAffine}) {
    const RowQuantizedMatrix q = QuantizeRows(m, scheme);
    for (const int8_t v : q.data) {
      EXPECT_GE(v, -127) << QuantSchemeName(scheme);
      EXPECT_LE(v, 127) << QuantSchemeName(scheme);
    }
  }
}

TEST(QuantTest, DegenerateRowsEncodeExactly) {
  Tensor m({3, 16});
  for (size_t c = 0; c < 16; ++c) {
    m.row(0)[c] = 0.0f;     // all-zero row
    m.row(1)[c] = 0.75f;    // constant positive row
    m.row(2)[c] = -0.125f;  // constant negative row
  }
  for (const QuantScheme scheme :
       {QuantScheme::kSymmetric, QuantScheme::kAffine}) {
    const RowQuantizedMatrix q = QuantizeRows(m, scheme);
    const Tensor back = q.Dequantize();
    for (size_t r = 0; r < 3; ++r) {
      for (size_t c = 0; c < 16; ++c) {
        EXPECT_FLOAT_EQ(back.row(r)[c], m.row(r)[c])
            << QuantSchemeName(scheme) << " r=" << r;
      }
    }
  }
}

TEST(QuantTest, ByteSizeCountsDataAndPerRowMetadata) {
  const Tensor m = RandomMatrix(10, 32, 4);
  const RowQuantizedMatrix sym = QuantizeRows(m, QuantScheme::kSymmetric);
  const RowQuantizedMatrix aff = QuantizeRows(m, QuantScheme::kAffine);
  EXPECT_EQ(sym.ByteSize(), 10 * 32 + 10 * sizeof(float));
  EXPECT_EQ(aff.ByteSize(),
            10 * 32 + 10 * sizeof(float) + 10 * sizeof(int32_t));
  // The headline property: >= 3x smaller than the fp32 table it replaced.
  EXPECT_GE(10 * 32 * sizeof(float), 3 * aff.ByteSize());
}

TEST(QuantTest, SerializeRoundTripsBitIdentically) {
  for (const QuantScheme scheme :
       {QuantScheme::kSymmetric, QuantScheme::kAffine}) {
    const RowQuantizedMatrix q =
        QuantizeRows(RandomMatrix(9, 24, 5), scheme);
    std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(q.Serialize(stream).ok());
    const auto back = RowQuantizedMatrix::Deserialize(stream);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->rows, q.rows);
    EXPECT_EQ(back->cols, q.cols);
    EXPECT_EQ(back->scheme, q.scheme);
    EXPECT_EQ(back->data, q.data);
    EXPECT_EQ(back->scales, q.scales);
    EXPECT_EQ(back->zero_points, q.zero_points);
  }
}

TEST(QuantTest, DeserializeRejectsGarbageHeaders) {
  // Truncated stream.
  std::istringstream truncated(std::string("\x01\x02", 2), std::ios::binary);
  EXPECT_FALSE(RowQuantizedMatrix::Deserialize(truncated).ok());
  // Implausible dims must be rejected before allocation, not OOM.
  std::ostringstream big(std::ios::binary);
  const uint64_t rows = uint64_t{1} << 40, cols = 8;
  const uint8_t scheme = 0;
  big.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  big.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  big.write(reinterpret_cast<const char*>(&scheme), sizeof(scheme));
  std::istringstream in(big.str(), std::ios::binary);
  EXPECT_FALSE(RowQuantizedMatrix::Deserialize(in).ok());
}

// ---- IEEE binary16 storage conversions --------------------------------------

TEST(HalfTest, KnownValuesConvertExactly) {
  const struct {
    float f;
    uint16_t h;
  } cases[] = {
      {0.0f, 0x0000},     {-0.0f, 0x8000},   {1.0f, 0x3C00},
      {-1.0f, 0xBC00},    {2.0f, 0x4000},    {0.5f, 0x3800},
      {65504.0f, 0x7BFF},                     // largest finite half
      {6.103515625e-5f, 0x0400},              // smallest normal half
      {5.9604644775390625e-8f, 0x0001},       // smallest subnormal half
  };
  for (const auto& c : cases) {
    EXPECT_EQ(FloatToHalf(c.f), c.h) << c.f;
    EXPECT_EQ(HalfToFloat(c.h), c.f) << c.h;
  }
}

TEST(HalfTest, SpecialValuesSurvive) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(FloatToHalf(inf), 0x7C00);
  EXPECT_EQ(FloatToHalf(-inf), 0xFC00);
  EXPECT_EQ(HalfToFloat(0x7C00), inf);
  EXPECT_EQ(HalfToFloat(0xFC00), -inf);
  EXPECT_TRUE(std::isnan(HalfToFloat(FloatToHalf(std::nanf("")))));
  // Overflow rounds to inf, underflow to (signed) zero.
  EXPECT_EQ(FloatToHalf(1e9f), 0x7C00);
  EXPECT_EQ(FloatToHalf(-1e9f), 0xFC00);
  EXPECT_EQ(FloatToHalf(1e-10f), 0x0000);
  EXPECT_EQ(FloatToHalf(-1e-10f), 0x8000);
}

TEST(HalfTest, EveryHalfPatternRoundTripsThroughFloat) {
  // binary16 -> binary32 is exact, so converting back must restore the
  // original bits for every non-NaN pattern — all 63489 of them.
  for (uint32_t h = 0; h <= 0xFFFFu; ++h) {
    const uint32_t exp = (h >> 10) & 0x1Fu;
    const uint32_t mant = h & 0x3FFu;
    if (exp == 31u && mant != 0u) continue;  // NaN payloads may canonicalise
    EXPECT_EQ(FloatToHalf(HalfToFloat(static_cast<uint16_t>(h))), h)
        << "h=" << h;
  }
}

TEST(HalfTest, RoundTripErrorWithinHalfUlp) {
  // Relative error <= 2^-11 for normal-range magnitudes: the bound the
  // fp16 MLP tail's docs promise.
  std::mt19937 rng(6);
  std::uniform_real_distribution<float> dist(-100.0f, 100.0f);
  for (int i = 0; i < 10000; ++i) {
    const float f = dist(rng);
    const float back = HalfToFloat(FloatToHalf(f));
    EXPECT_LE(std::fabs(back - f), std::fabs(f) * 0x1p-11f + 1e-7f) << f;
  }
}

TEST(HalfTest, RoundsToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1 + 2^-10):
  // ties go to the even mantissa, i.e. down to 1.0.
  EXPECT_EQ(FloatToHalf(1.0f + 0x1p-11f), 0x3C00);
  // Just above the tie rounds up.
  EXPECT_EQ(FloatToHalf(1.0f + 0x1p-11f + 0x1p-17f), 0x3C01);
  // 1 + 3 * 2^-11 ties between odd 1+2^-10 and even 1+2^-9: goes up to even.
  EXPECT_EQ(FloatToHalf(1.0f + 3 * 0x1p-11f), 0x3C02);
}

}  // namespace
}  // namespace sttr
