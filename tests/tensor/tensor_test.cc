#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

namespace sttr {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.ndim(), 0u);
}

TEST(TensorTest, ZeroInitialised) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  for (size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FillConstructorAndFactories) {
  EXPECT_EQ(Tensor({4}, 2.5f).Sum(), 10.0);
  EXPECT_EQ(Tensor::Ones({3, 3}).Sum(), 9.0);
  EXPECT_EQ(Tensor::Full({2}, -1.0f).Sum(), -2.0);
  Tensor s = Tensor::Scalar(3.25f);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], 3.25f);
}

TEST(TensorTest, DataConstructorValidatesSize) {
  Tensor t({2, 2}, std::vector<float>{1, 2, 3, 4});
  EXPECT_EQ(t.at(1, 1), 4.0f);
  EXPECT_DEATH(Tensor({2, 2}, std::vector<float>{1, 2}), "shape");
}

TEST(TensorTest, TwoDAccessors) {
  Tensor t({2, 3});
  t.at(0, 1) = 5.0f;
  t.at(1, 2) = -2.0f;
  EXPECT_EQ(t[1], 5.0f);
  EXPECT_EQ(t[5], -2.0f);
  EXPECT_EQ(t.row(1)[2], -2.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r.rows(), 3u);
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_DEATH(t.Reshaped({4, 2}), "");
}

TEST(TensorTest, SumMeanMaxAbs) {
  Tensor t({4}, std::vector<float>{1, -5, 2, 2});
  EXPECT_DOUBLE_EQ(t.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(t.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(t.MaxAbs(), 5.0);
  EXPECT_DOUBLE_EQ(t.SquaredL2Norm(), 1 + 25 + 4 + 4);
}

TEST(TensorTest, AddInPlaceAndAxpy) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{10, 20, 30});
  a.AddInPlace(b);
  EXPECT_EQ(a[2], 33.0f);
  a.Axpy(-0.5f, b);
  EXPECT_EQ(a[0], 6.0f);
  a.ScaleInPlace(2.0f);
  EXPECT_EQ(a[0], 12.0f);
}

TEST(TensorTest, AllClose) {
  Tensor a({2}, std::vector<float>{1.0f, 2.0f});
  Tensor b({2}, std::vector<float>{1.0f + 1e-8f, 2.0f});
  EXPECT_TRUE(a.AllClose(b));
  Tensor c({2}, std::vector<float>{1.1f, 2.0f});
  EXPECT_FALSE(a.AllClose(c));
  Tensor d({1}, std::vector<float>{1.0f});
  EXPECT_FALSE(a.AllClose(d));
}

TEST(TensorTest, RandomUniformBounds) {
  Rng rng(1);
  Tensor t = Tensor::RandomUniform({100, 10}, rng, -1.0f, 2.0f);
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], -1.0f);
    EXPECT_LT(t[i], 2.0f);
  }
}

TEST(TensorTest, RandomNormalMoments) {
  Rng rng(2);
  Tensor t = Tensor::RandomNormal({200, 50}, rng, 1.0f, 2.0f);
  EXPECT_NEAR(t.Mean(), 1.0, 0.05);
}

TEST(TensorTest, GlorotUniformWithinLimit) {
  Rng rng(3);
  Tensor t = Tensor::GlorotUniform(30, 70, rng);
  const float limit = std::sqrt(6.0f / 100.0f);
  EXPECT_EQ(t.rows(), 30u);
  EXPECT_EQ(t.cols(), 70u);
  EXPECT_LE(t.MaxAbs(), limit);
  EXPECT_GT(t.MaxAbs(), 0.5 * limit);  // spread should fill the range
}

TEST(TensorTest, SerializeRoundTrip) {
  Rng rng(4);
  Tensor t = Tensor::RandomNormal({7, 5}, rng);
  std::stringstream ss;
  ASSERT_TRUE(t.Serialize(ss).ok());
  auto back = Tensor::Deserialize(ss);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->AllClose(t, 0, 0));
  EXPECT_EQ(back->shape(), t.shape());
}

TEST(TensorTest, DeserializeTruncatedFails) {
  std::stringstream ss;
  ss.write("junk", 4);
  auto r = Tensor::Deserialize(ss);
  EXPECT_FALSE(r.ok());
}

TEST(TensorTest, ToStringTruncates) {
  Tensor t({100});
  const std::string s = t.ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("100"), std::string::npos);
}

TEST(ShapeTest, Helpers) {
  EXPECT_EQ(ShapeSize({2, 3, 4}), 24u);
  EXPECT_EQ(ShapeSize({}), 0u);
  EXPECT_EQ(ShapeSize({5, 0}), 0u);
  EXPECT_EQ(ShapeToString({2, 3}), "2x3");
}

}  // namespace
}  // namespace sttr
