#include "nn/layers.h"

#include <sstream>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "nn/optimizer.h"

namespace sttr::nn {
namespace {

TEST(EmbeddingTest, ForwardGathersRows) {
  Rng rng(1);
  Embedding emb(10, 4, rng);
  EXPECT_EQ(emb.num_rows(), 10u);
  EXPECT_EQ(emb.dim(), 4u);
  ag::Variable out = emb.Forward({7, 7, 0});
  EXPECT_EQ(out.value().rows(), 3u);
  EXPECT_EQ(out.value().cols(), 4u);
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(out.value().at(0, j), out.value().at(1, j));
    EXPECT_EQ(out.value().at(0, j), emb.table().value().at(7, j));
  }
}

TEST(EmbeddingTest, InitStddevScales) {
  Rng rng(2);
  Embedding tight(100, 32, rng, 0.001f);
  Rng rng2(2);
  Embedding wide(100, 32, rng2, 1.0f);
  EXPECT_LT(tight.table().value().MaxAbs(), 0.01);
  EXPECT_GT(wide.table().value().MaxAbs(), 1.0);
}

TEST(EmbeddingTest, ParametersExposeTable) {
  Rng rng(3);
  Embedding emb(5, 2, rng);
  auto params = emb.Parameters();
  ASSERT_EQ(params.size(), 1u);
  EXPECT_TRUE(params[0].requires_grad());
  EXPECT_EQ(emb.NumParams(), 10u);
}

TEST(LinearTest, AffineTransform) {
  Rng rng(4);
  Linear lin(3, 2, rng);
  EXPECT_EQ(lin.in_dim(), 3u);
  EXPECT_EQ(lin.out_dim(), 2u);
  // With zero input, output equals bias (zero-initialised).
  ag::Variable x = ag::Constant(Tensor({1, 3}));
  ag::Variable y = lin.Forward(x);
  EXPECT_EQ(y.value().at(0, 0), 0.0f);
  EXPECT_EQ(y.value().at(0, 1), 0.0f);
}

TEST(LinearTest, TrainsTowardsTarget) {
  // One linear layer must fit y = 2x exactly.
  Rng rng(5);
  Linear lin(1, 1, rng);
  Adam opt(lin.Parameters(), 0.05f);
  for (int step = 0; step < 300; ++step) {
    Tensor xs({8, 1});
    Tensor ys({8, 1});
    for (size_t i = 0; i < 8; ++i) {
      xs.at(i, 0) = static_cast<float>(rng.Normal());
      ys.at(i, 0) = 2.0f * xs.at(i, 0);
    }
    ag::Variable pred = lin.Forward(ag::Constant(xs));
    ag::Variable diff = ag::Sub(pred, ag::Constant(ys));
    ag::Backward(ag::Mean(ag::Mul(diff, diff)));
    opt.Step();
  }
  ag::Variable probe =
      lin.Forward(ag::Constant(Tensor({1, 1}, std::vector<float>{3.0f})));
  EXPECT_NEAR(probe.value()[0], 6.0f, 0.1f);
}

TEST(MlpTest, OutputShapeIsSingleLogit) {
  Rng rng(6);
  Mlp mlp(8, {16, 4}, 0.0f, rng);
  EXPECT_EQ(mlp.depth(), 2u);
  Rng drop(1);
  ag::Variable y =
      mlp.Forward(ag::Constant(Tensor({5, 8})), /*training=*/false, drop);
  EXPECT_EQ(y.value().rows(), 5u);
  EXPECT_EQ(y.value().cols(), 1u);
}

TEST(MlpTest, ZeroHiddenLayersIsLinear) {
  Rng rng(7);
  Mlp mlp(4, {}, 0.0f, rng);
  EXPECT_EQ(mlp.depth(), 0u);
  Rng drop(1);
  ag::Variable y =
      mlp.Forward(ag::Constant(Tensor({2, 4})), /*training=*/false, drop);
  EXPECT_EQ(y.value().rows(), 2u);
}

TEST(MlpTest, ParameterCount) {
  Rng rng(8);
  Mlp mlp(10, {6}, 0.0f, rng);
  // (10*6 + 6) + (6*1 + 1) = 73.
  EXPECT_EQ(mlp.NumParams(), 73u);
  EXPECT_EQ(mlp.Parameters().size(), 4u);
}

TEST(MlpTest, DropoutOnlyInTraining) {
  Rng rng(9);
  Mlp mlp(4, {8}, 0.5f, rng);
  Tensor x({3, 4}, 1.0f);
  Rng d1(42), d2(42);
  ag::Variable eval1 = mlp.Forward(ag::Constant(x), false, d1);
  ag::Variable eval2 = mlp.Forward(ag::Constant(x), false, d2);
  // Deterministic without dropout.
  EXPECT_TRUE(eval1.value().AllClose(eval2.value(), 0, 0));
}

TEST(ModuleTest, SaveLoadRoundTrip) {
  Rng rng(10);
  Mlp a(6, {4}, 0.0f, rng);
  Mlp b(6, {4}, 0.0f, rng);  // different init
  std::stringstream ss;
  ASSERT_TRUE(a.Save(ss).ok());
  ASSERT_TRUE(b.Load(ss).ok());
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].value().AllClose(pb[i].value(), 0, 0));
  }
}

TEST(ModuleTest, LoadShapeMismatchFails) {
  Rng rng(11);
  Mlp a(6, {4}, 0.0f, rng);
  Mlp b(6, {5}, 0.0f, rng);
  std::stringstream ss;
  ASSERT_TRUE(a.Save(ss).ok());
  EXPECT_FALSE(b.Load(ss).ok());
}

TEST(ModuleTest, CopyParamsFrom) {
  Rng rng(12);
  Embedding a(4, 3, rng), b(4, 3, rng);
  b.CopyParamsFrom(a);
  EXPECT_TRUE(
      a.table().value().AllClose(b.table().value(), 0, 0));
  // Copies values, not aliases.
  b.Parameters()[0].mutable_value()[0] += 1.0f;
  EXPECT_FALSE(a.table().value().AllClose(b.table().value(), 0, 0));
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(13);
  Embedding emb(4, 2, rng);
  ag::Backward(ag::Sum(emb.Forward({1, 2})));
  EXPECT_GT(emb.Parameters()[0].grad().MaxAbs(), 0.0);
  emb.ZeroGrad();
  EXPECT_EQ(emb.Parameters()[0].grad().MaxAbs(), 0.0);
}

}  // namespace
}  // namespace sttr::nn
