#include "nn/module.h"

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "util/rng.h"

namespace sttr::nn {
namespace {

std::vector<Tensor> Snapshot(const Module& m) {
  std::vector<Tensor> out;
  for (const auto& p : m.Parameters()) out.push_back(p.value());
  return out;
}

void ExpectUnchanged(const Module& m, const std::vector<Tensor>& before) {
  const auto params = m.Parameters();
  ASSERT_EQ(params.size(), before.size());
  for (size_t i = 0; i < params.size(); ++i) {
    ASSERT_TRUE(params[i].value().SameShape(before[i])) << "param " << i;
    for (size_t j = 0; j < before[i].size(); ++j) {
      ASSERT_EQ(params[i].value()[j], before[i][j])
          << "param " << i << " element " << j;
    }
  }
}

TEST(ModuleLoadTest, SaveLoadRoundTrip) {
  Rng rng(1);
  Mlp a(4, {3, 2}, 0.0f, rng);
  Mlp b(4, {3, 2}, 0.0f, rng);  // different init draws
  std::stringstream ss;
  ASSERT_TRUE(a.Save(ss).ok());
  ASSERT_TRUE(b.Load(ss).ok());
  ExpectUnchanged(b, Snapshot(a));
}

// Regression test for the partial-overwrite bug: a shape mismatch at a
// *later* parameter used to leave all earlier parameters already replaced.
// Load must validate the whole stream before committing anything.
TEST(ModuleLoadTest, LateShapeMismatchLeavesEveryParameterUntouched) {
  Rng rng(2);
  Mlp source(4, {3, 5}, 0.0f, rng);
  // Same first layer (4 -> 3), so the leading weight and bias tensors match
  // the stream; the second layer (3 -> 2 vs 3 -> 5) does not.
  Mlp victim(4, {3, 2}, 0.0f, rng);
  const auto before = Snapshot(victim);
  std::stringstream ss;
  ASSERT_TRUE(source.Save(ss).ok());
  const Status s = victim.Load(ss);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("shape mismatch"), std::string::npos);
  ExpectUnchanged(victim, before);
}

TEST(ModuleLoadTest, TruncatedStreamLeavesEveryParameterUntouched) {
  Rng rng(3);
  Mlp source(4, {3}, 0.0f, rng);
  Mlp victim(4, {3}, 0.0f, rng);
  const auto before = Snapshot(victim);
  std::stringstream full;
  ASSERT_TRUE(source.Save(full).ok());
  const std::string bytes = full.str();
  // Cut the stream inside the *last* tensor: everything before it is valid.
  std::stringstream truncated(bytes.substr(0, bytes.size() - 3));
  ASSERT_FALSE(victim.Load(truncated).ok());
  ExpectUnchanged(victim, before);
}

TEST(ModuleLoadTest, LoadParametersAtomicNamesTheOffendingParameter) {
  Rng rng(4);
  Embedding a(6, 3, rng);
  Embedding b(5, 3, rng);
  std::stringstream ss;
  ASSERT_TRUE(a.Save(ss).ok());
  const Status s = LoadParametersAtomic(ss, b.Parameters());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("parameter 0"), std::string::npos)
      << s.message();
}

TEST(ModuleLoadTest, LoadedValuesAliasTheLiveParameters) {
  // Load writes through Variable handles; the module must see the new
  // values (i.e. the handles alias the same autograd nodes).
  Rng rng(5);
  Embedding a(4, 2, rng);
  Embedding b(4, 2, rng);
  std::stringstream ss;
  ASSERT_TRUE(a.Save(ss).ok());
  ASSERT_TRUE(b.Load(ss).ok());
  for (size_t j = 0; j < a.table().value().size(); ++j) {
    EXPECT_EQ(b.table().value()[j], a.table().value()[j]);
  }
}

}  // namespace
}  // namespace sttr::nn
