#include "nn/optimizer.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "nn/layers.h"

namespace sttr::nn {
namespace {

/// Minimises f(w) = ||w - target||^2 with the given optimiser factory and
/// returns the final squared distance.
template <typename MakeOpt>
double MinimiseQuadratic(MakeOpt make_opt, int steps) {
  ag::Variable w(Tensor({4}, std::vector<float>{5, -3, 2, 8}), true);
  const Tensor target({4}, std::vector<float>{1, 1, 1, 1});
  auto opt = make_opt(std::vector<ag::Variable>{w});
  for (int s = 0; s < steps; ++s) {
    ag::Variable diff = ag::Sub(w, ag::Constant(target));
    ag::Backward(ag::Sum(ag::Mul(diff, diff)));
    opt->Step();
  }
  double dist = 0;
  for (size_t i = 0; i < 4; ++i) {
    dist += std::pow(static_cast<double>(w.value()[i]) - target[i], 2);
  }
  return dist;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  const double d = MinimiseQuadratic(
      [](auto params) { return std::make_unique<Sgd>(params, 0.05f); }, 200);
  EXPECT_LT(d, 1e-6);
}

TEST(SgdTest, MomentumConverges) {
  const double d = MinimiseQuadratic(
      [](auto params) {
        return std::make_unique<Sgd>(params, 0.02f, 0.9f);
      },
      200);
  EXPECT_LT(d, 1e-4);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  const double d = MinimiseQuadratic(
      [](auto params) { return std::make_unique<Adam>(params, 0.3f); }, 300);
  EXPECT_LT(d, 1e-3);
}

TEST(AdaGradTest, ConvergesOnQuadratic) {
  const double d = MinimiseQuadratic(
      [](auto params) { return std::make_unique<AdaGrad>(params, 1.0f); },
      400);
  EXPECT_LT(d, 1e-2);
}

TEST(OptimizerTest, StepZeroesGradients) {
  ag::Variable w(Tensor({2}, std::vector<float>{1, 1}), true);
  Sgd opt({w}, 0.1f);
  ag::Backward(ag::Sum(w));
  EXPECT_GT(w.grad().MaxAbs(), 0);
  opt.Step();
  EXPECT_EQ(w.grad().MaxAbs(), 0);
  EXPECT_EQ(opt.step_count(), 1);
}

TEST(OptimizerTest, SparseStepOnlyTouchesGatheredRows) {
  Rng rng(1);
  Embedding emb(6, 3, rng);
  const Tensor before = emb.table().value();
  Adam opt(emb.Parameters(), 0.1f);
  ag::Backward(ag::Sum(emb.Forward({2, 4})));
  opt.Step();
  const Tensor& after = emb.table().value();
  for (size_t r = 0; r < 6; ++r) {
    const bool touched = (r == 2 || r == 4);
    for (size_t c = 0; c < 3; ++c) {
      if (touched) {
        EXPECT_NE(before.at(r, c), after.at(r, c)) << r << "," << c;
      } else {
        EXPECT_EQ(before.at(r, c), after.at(r, c)) << r << "," << c;
      }
    }
  }
}

TEST(OptimizerTest, SparseGradClearedAfterStep) {
  Rng rng(2);
  Embedding emb(5, 2, rng);
  Adam opt(emb.Parameters(), 0.1f);
  ag::Backward(ag::Sum(emb.Forward({1})));
  opt.Step();
  EXPECT_EQ(emb.Parameters()[0].grad().MaxAbs(), 0.0);
  EXPECT_TRUE(emb.Parameters()[0].touched_rows().empty());
}

TEST(OptimizerTest, LazyAdamMatchesDenseAdamOnTouchedRows) {
  // A sparse (gather-based) gradient and a mathematically equal dense
  // gradient must produce the same update on the touched rows in step 1.
  Rng rng(3);
  Tensor init = Tensor::RandomNormal({4, 2}, rng);
  ag::Variable sparse(init, true);
  ag::Variable dense(init, true);
  Adam opt_sparse({sparse}, 0.1f);
  Adam opt_dense({dense}, 0.1f);

  ag::Backward(ag::Sum(ag::GatherRows(sparse, {1, 3})));
  // Equivalent dense gradient: ones on rows 1 and 3.
  Tensor& g = dense.mutable_grad();
  for (size_t c = 0; c < 2; ++c) {
    g.at(1, c) = 1.0f;
    g.at(3, c) = 1.0f;
  }
  opt_sparse.Step();
  opt_dense.Step();
  EXPECT_TRUE(sparse.value().AllClose(dense.value(), 1e-6, 1e-7));
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  ag::Variable w(Tensor({4}, std::vector<float>{0, 0, 0, 0}), true);
  Sgd opt({w}, 0.1f);
  w.mutable_grad() = Tensor({4}, std::vector<float>{3, 4, 0, 0});  // norm 5
  const double norm = opt.ClipGradNorm(1.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(w.grad().SquaredL2Norm(), 1.0, 1e-5);
}

TEST(OptimizerTest, ClipGradNormNoopBelowThreshold) {
  ag::Variable w(Tensor({2}, std::vector<float>{0, 0}), true);
  Sgd opt({w}, 0.1f);
  w.mutable_grad() = Tensor({2}, std::vector<float>{0.3f, 0.4f});
  opt.ClipGradNorm(10.0);
  EXPECT_NEAR(w.grad().SquaredL2Norm(), 0.25, 1e-6);
}

TEST(OptimizerDeathTest, RejectsFrozenParameters) {
  ag::Variable frozen(Tensor({2}), false);
  EXPECT_DEATH(Sgd({frozen}, 0.1f), "frozen");
}

/// Runs `steps` quadratic-loss steps on `w` with `opt`.
void RunQuadraticSteps(ag::Variable& w, Optimizer& opt, int steps) {
  const Tensor target({4}, std::vector<float>{1, 1, 1, 1});
  for (int s = 0; s < steps; ++s) {
    ag::Variable diff = ag::Sub(w, ag::Constant(target));
    ag::Backward(ag::Sum(ag::Mul(diff, diff)));
    opt.Step();
  }
}

/// Trains 3 steps, serialises the optimiser state, rebuilds a fresh
/// parameter + optimiser pair from the snapshot and trains both 2 more
/// steps: the restored run must match the uninterrupted one bit for bit
/// (this is the contract checkpoint resume depends on).
template <typename MakeOpt>
void ExpectStateRoundTripBitIdentical(MakeOpt make_opt) {
  ag::Variable w1(Tensor({4}, std::vector<float>{5, -3, 2, 8}), true);
  auto opt1 = make_opt(std::vector<ag::Variable>{w1});
  RunQuadraticSteps(w1, *opt1, 3);

  std::stringstream state;
  ASSERT_TRUE(opt1->SaveState(state).ok());
  ag::Variable w2(w1.value(), true);  // parameters restored separately
  auto opt2 = make_opt(std::vector<ag::Variable>{w2});
  ASSERT_TRUE(opt2->LoadState(state).ok());
  EXPECT_EQ(opt2->step_count(), 3);

  RunQuadraticSteps(w1, *opt1, 2);
  RunQuadraticSteps(w2, *opt2, 2);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(w1.value()[i], w2.value()[i]) << "element " << i;
  }
  EXPECT_EQ(opt1->step_count(), opt2->step_count());
}

TEST(OptimizerStateTest, AdamRoundTripContinuesBitIdentically) {
  ExpectStateRoundTripBitIdentical(
      [](auto params) { return std::make_unique<Adam>(params, 0.3f); });
}

TEST(OptimizerStateTest, SgdMomentumRoundTripContinuesBitIdentically) {
  ExpectStateRoundTripBitIdentical([](auto params) {
    return std::make_unique<Sgd>(params, 0.02f, 0.9f);
  });
}

TEST(OptimizerStateTest, PlainSgdRoundTripContinuesBitIdentically) {
  ExpectStateRoundTripBitIdentical(
      [](auto params) { return std::make_unique<Sgd>(params, 0.05f); });
}

TEST(OptimizerStateTest, AdaGradRoundTripContinuesBitIdentically) {
  ExpectStateRoundTripBitIdentical(
      [](auto params) { return std::make_unique<AdaGrad>(params, 0.5f); });
}

TEST(OptimizerStateTest, SlotShapeMismatchIsAllOrNothing) {
  ag::Variable w1(Tensor({4}, std::vector<float>{5, -3, 2, 8}), true);
  Adam opt1({w1}, 0.1f);
  RunQuadraticSteps(w1, opt1, 1);
  std::stringstream state;
  ASSERT_TRUE(opt1.SaveState(state).ok());

  ag::Variable w2(Tensor({5}), true);
  Adam opt2({w2}, 0.1f);
  const Status s = opt2.LoadState(state);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(opt2.step_count(), 0);  // nothing committed on error
}

TEST(OptimizerStateTest, TruncatedStateRejected) {
  ag::Variable w1(Tensor({4}, std::vector<float>{5, -3, 2, 8}), true);
  Adam opt1({w1}, 0.1f);
  RunQuadraticSteps(w1, opt1, 2);
  std::stringstream full;
  ASSERT_TRUE(opt1.SaveState(full).ok());
  const std::string bytes = full.str();

  ag::Variable w2(w1.value(), true);
  Adam opt2({w2}, 0.1f);
  // Cut the stream inside the second moment vector: the first was valid.
  std::stringstream truncated(bytes.substr(0, bytes.size() - 5));
  ASSERT_FALSE(opt2.LoadState(truncated).ok());
  EXPECT_EQ(opt2.step_count(), 0);
}

}  // namespace
}  // namespace sttr::nn
