#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "nn/layers.h"

namespace sttr::nn {
namespace {

/// Minimises f(w) = ||w - target||^2 with the given optimiser factory and
/// returns the final squared distance.
template <typename MakeOpt>
double MinimiseQuadratic(MakeOpt make_opt, int steps) {
  ag::Variable w(Tensor({4}, std::vector<float>{5, -3, 2, 8}), true);
  const Tensor target({4}, std::vector<float>{1, 1, 1, 1});
  auto opt = make_opt(std::vector<ag::Variable>{w});
  for (int s = 0; s < steps; ++s) {
    ag::Variable diff = ag::Sub(w, ag::Constant(target));
    ag::Backward(ag::Sum(ag::Mul(diff, diff)));
    opt->Step();
  }
  double dist = 0;
  for (size_t i = 0; i < 4; ++i) {
    dist += std::pow(static_cast<double>(w.value()[i]) - target[i], 2);
  }
  return dist;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  const double d = MinimiseQuadratic(
      [](auto params) { return std::make_unique<Sgd>(params, 0.05f); }, 200);
  EXPECT_LT(d, 1e-6);
}

TEST(SgdTest, MomentumConverges) {
  const double d = MinimiseQuadratic(
      [](auto params) {
        return std::make_unique<Sgd>(params, 0.02f, 0.9f);
      },
      200);
  EXPECT_LT(d, 1e-4);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  const double d = MinimiseQuadratic(
      [](auto params) { return std::make_unique<Adam>(params, 0.3f); }, 300);
  EXPECT_LT(d, 1e-3);
}

TEST(AdaGradTest, ConvergesOnQuadratic) {
  const double d = MinimiseQuadratic(
      [](auto params) { return std::make_unique<AdaGrad>(params, 1.0f); },
      400);
  EXPECT_LT(d, 1e-2);
}

TEST(OptimizerTest, StepZeroesGradients) {
  ag::Variable w(Tensor({2}, std::vector<float>{1, 1}), true);
  Sgd opt({w}, 0.1f);
  ag::Backward(ag::Sum(w));
  EXPECT_GT(w.grad().MaxAbs(), 0);
  opt.Step();
  EXPECT_EQ(w.grad().MaxAbs(), 0);
  EXPECT_EQ(opt.step_count(), 1);
}

TEST(OptimizerTest, SparseStepOnlyTouchesGatheredRows) {
  Rng rng(1);
  Embedding emb(6, 3, rng);
  const Tensor before = emb.table().value();
  Adam opt(emb.Parameters(), 0.1f);
  ag::Backward(ag::Sum(emb.Forward({2, 4})));
  opt.Step();
  const Tensor& after = emb.table().value();
  for (size_t r = 0; r < 6; ++r) {
    const bool touched = (r == 2 || r == 4);
    for (size_t c = 0; c < 3; ++c) {
      if (touched) {
        EXPECT_NE(before.at(r, c), after.at(r, c)) << r << "," << c;
      } else {
        EXPECT_EQ(before.at(r, c), after.at(r, c)) << r << "," << c;
      }
    }
  }
}

TEST(OptimizerTest, SparseGradClearedAfterStep) {
  Rng rng(2);
  Embedding emb(5, 2, rng);
  Adam opt(emb.Parameters(), 0.1f);
  ag::Backward(ag::Sum(emb.Forward({1})));
  opt.Step();
  EXPECT_EQ(emb.Parameters()[0].grad().MaxAbs(), 0.0);
  EXPECT_TRUE(emb.Parameters()[0].touched_rows().empty());
}

TEST(OptimizerTest, LazyAdamMatchesDenseAdamOnTouchedRows) {
  // A sparse (gather-based) gradient and a mathematically equal dense
  // gradient must produce the same update on the touched rows in step 1.
  Rng rng(3);
  Tensor init = Tensor::RandomNormal({4, 2}, rng);
  ag::Variable sparse(init, true);
  ag::Variable dense(init, true);
  Adam opt_sparse({sparse}, 0.1f);
  Adam opt_dense({dense}, 0.1f);

  ag::Backward(ag::Sum(ag::GatherRows(sparse, {1, 3})));
  // Equivalent dense gradient: ones on rows 1 and 3.
  Tensor& g = dense.mutable_grad();
  for (size_t c = 0; c < 2; ++c) {
    g.at(1, c) = 1.0f;
    g.at(3, c) = 1.0f;
  }
  opt_sparse.Step();
  opt_dense.Step();
  EXPECT_TRUE(sparse.value().AllClose(dense.value(), 1e-6, 1e-7));
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  ag::Variable w(Tensor({4}, std::vector<float>{0, 0, 0, 0}), true);
  Sgd opt({w}, 0.1f);
  w.mutable_grad() = Tensor({4}, std::vector<float>{3, 4, 0, 0});  // norm 5
  const double norm = opt.ClipGradNorm(1.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(w.grad().SquaredL2Norm(), 1.0, 1e-5);
}

TEST(OptimizerTest, ClipGradNormNoopBelowThreshold) {
  ag::Variable w(Tensor({2}, std::vector<float>{0, 0}), true);
  Sgd opt({w}, 0.1f);
  w.mutable_grad() = Tensor({2}, std::vector<float>{0.3f, 0.4f});
  opt.ClipGradNorm(10.0);
  EXPECT_NEAR(w.grad().SquaredL2Norm(), 0.25, 1e-6);
}

TEST(OptimizerDeathTest, RejectsFrozenParameters) {
  ag::Variable frozen(Tensor({2}), false);
  EXPECT_DEATH(Sgd({frozen}, 0.1f), "frozen");
}

}  // namespace
}  // namespace sttr::nn
