// Tests for the benchmark harness library itself (bench_util/sweep_util):
// the experiment drivers must be trustworthy before their outputs are.

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "bench/sweep_util.h"

namespace sttr::bench {
namespace {

TEST(BenchOptionsTest, ParsesAllFlags) {
  std::vector<const char*> argv = {"prog",           "--scale=tiny",
                                   "--seed=99",      "--epochs=3",
                                   "--negatives=50", "--out=/tmp/x",
                                   "--verbose"};
  const BenchOptions opts = BenchOptions::Parse(
      static_cast<int>(argv.size()), const_cast<char**>(argv.data()));
  EXPECT_EQ(opts.scale, synth::Scale::kTiny);
  EXPECT_EQ(opts.seed, 99u);
  EXPECT_EQ(opts.epochs, 3u);
  EXPECT_EQ(opts.eval_negatives, 50u);
  EXPECT_EQ(opts.out_prefix, "/tmp/x");
  EXPECT_TRUE(opts.verbose);
  EXPECT_EQ(opts.DeepConfig().num_epochs, 3u);
  EXPECT_EQ(opts.Eval().num_negatives, 50u);
}

TEST(BenchOptionsTest, DefaultsAreSaneForTheSuite) {
  std::vector<const char*> argv = {"prog"};
  const BenchOptions opts = BenchOptions::Parse(1, const_cast<char**>(argv.data()));
  EXPECT_EQ(opts.scale, synth::Scale::kSmall);
  EXPECT_EQ(opts.eval_negatives, 100u);  // the paper's protocol
}

TEST(BenchWorldTest, SeedOverrideChangesWorld) {
  BenchOptions a;
  a.scale = synth::Scale::kTiny;
  BenchOptions b = a;
  b.seed = 12345;
  const auto wa = MakeWorld("foursquare", a);
  const auto wb = MakeWorld("foursquare", b);
  bool differ = wa.world.dataset.num_checkins() !=
                wb.world.dataset.num_checkins();
  for (size_t i = 0;
       !differ && i < wa.world.dataset.num_checkins() &&
       i < wb.world.dataset.num_checkins();
       ++i) {
    differ = wa.world.dataset.checkins()[i].poi !=
             wb.world.dataset.checkins()[i].poi;
  }
  EXPECT_TRUE(differ);
}

TEST(RunMethodsTest, CollectsTimingAndMetrics) {
  BenchOptions opts;
  opts.scale = synth::Scale::kTiny;
  const auto ws = MakeWorld("foursquare", opts);
  const auto runs = RunMethods(ws.world.dataset, ws.split,
                               {"ItemPop", "CRCF"}, StTransRecConfig{},
                               opts.Eval(), /*verbose=*/false);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].name, "ItemPop");
  EXPECT_GE(runs[0].fit_seconds, 0.0);
  EXPECT_GT(runs[1].result.At(10).recall, 0.0);
}

TEST(SweepTest, RunsTinyParameterSweep) {
  BenchOptions opts;
  opts.scale = synth::Scale::kTiny;
  const auto ws = MakeWorld("foursquare", opts);
  StTransRecConfig base;
  base.embedding_dim = 4;
  base.hidden_dims = {8};
  base.num_epochs = 1;
  base.batch_size = 64;
  base.mmd_batch = 4;
  // Must complete without aborting and print a table for both points.
  RunParameterSweep(
      ws.world.dataset, ws.split, base, opts.Eval(), "alpha", {0.0, 0.1},
      [](double v, StTransRecConfig& cfg) { cfg.resample_alpha = v; }, {2},
      /*out_prefix=*/"", /*verbose=*/false);
  SUCCEED();
}

TEST(FormatMetricTest, FourDecimals) {
  EXPECT_EQ(FormatMetric(0.125), "0.1250");
  EXPECT_EQ(FormatMetric(0.0), "0.0000");
  EXPECT_EQ(FormatMetric(1.0), "1.0000");
  EXPECT_EQ(FormatMetric(0.33333333), "0.3333");
}

}  // namespace
}  // namespace sttr::bench
