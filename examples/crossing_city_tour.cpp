// Crossing-city tour planner: the scenario from the paper's introduction.
// A Phoenix user travels to Las Vegas for the first time; we train
// ST-TransRec on everyone's history, then build them a personalised
// shortlist of Las Vegas POIs, explained through the words that drove the
// match, and checked against what the traveller actually visited.
//
// Usage: crossing_city_tour [--scale=tiny|small] [--epochs=N] [--top=8]

#include <cstdio>
#include <unordered_set>

#include "core/st_transrec.h"
#include "data/split.h"
#include "data/synth/world_generator.h"
#include "util/flags.h"

using namespace sttr;

namespace {

void PrintPoiLine(const Dataset& data, PoiId poi, double score,
                  bool is_truth) {
  std::string words;
  for (WordId w : data.poi(poi).words) {
    if (!words.empty()) words += ", ";
    words += data.vocabulary().WordOf(w);
  }
  std::printf("  %c %.3f  poi %-5lld (%.4f, %.4f)  [%s]\n",
              is_truth ? '*' : ' ', score, static_cast<long long>(poi),
              data.poi(poi).location.lat, data.poi(poi).location.lon,
              words.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  STTR_CHECK_OK(flags.Parse(argc, argv));
  const auto scale = synth::ParseScale(flags.GetString("scale", "tiny"));
  const size_t top = static_cast<size_t>(flags.GetInt("top", 8));

  auto world = synth::GenerateWorld(synth::SynthWorldConfig::YelpLike(scale));
  const Dataset& data = world.dataset;
  const CrossCitySplit split = MakeCrossCitySplit(data, 0);
  std::printf("world: %zu users, %zu POIs across %zu cities; %zu travellers "
              "to recommend for\n",
              data.num_users(), data.num_pois(), data.num_cities(),
              split.test_users.size());

  StTransRecConfig cfg;
  if (flags.Has("epochs")) {
    cfg.num_epochs = static_cast<size_t>(flags.GetInt("epochs", 8));
  } else if (scale == synth::Scale::kTiny) {
    cfg.num_epochs = 4;
  }
  StTransRec model(cfg);
  STTR_CHECK_OK(model.Fit(data, split));
  std::printf("trained %s (%zu epochs, final loss %.4f)\n\n",
              model.name().c_str(), model.config().num_epochs,
              model.loss_history().back());

  // Plan tours for the first three travellers.
  size_t shown = 0;
  for (const auto& traveller : split.test_users) {
    if (shown++ == 3) break;
    const UserId u = traveller.user;
    std::unordered_set<PoiId> truth(traveller.ground_truth.begin(),
                                    traveller.ground_truth.end());

    std::printf("traveller #%lld from %s -> %s\n",
                static_cast<long long>(u),
                data.city(data.user(u).home_city).name.c_str(),
                data.city(0).name.c_str());

    // Their taste, read off their home-city history.
    std::printf("  home history: ");
    size_t n = 0;
    for (size_t idx : data.CheckinsOfUser(u)) {
      const CheckinRecord& rec = data.checkins()[idx];
      if (rec.city == 0) continue;
      if (n++ == 4) break;
      std::printf("%s%s", n > 1 ? " | " : "",
                  data.vocabulary()
                      .WordOf(data.poi(rec.poi).words.front())
                      .c_str());
    }
    std::printf("\n  shortlist ('*' = actually visited):\n");
    for (const auto& [poi, score] : model.RecommendTopK(data, 0, u, top)) {
      PrintPoiLine(data, poi, score, truth.count(poi) > 0);
    }
    std::printf("\n");
  }
  return 0;
}
