// Embedding inspector: after training, query the learned embedding space —
// for a topic word, list the nearest POIs in *each* city. Because words are
// shared across cities and the MMD loss aligns the city distributions, the
// same query word should surface semantically matching POIs on both sides;
// that is the transfer mechanism made visible.
//
// Usage: embedding_inspector [--scale=tiny|small] [--epochs=N]
//                            [--words=park,casino,museum]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/st_transrec.h"
#include "data/split.h"
#include "data/synth/world_generator.h"
#include "util/flags.h"
#include "util/string_util.h"

using namespace sttr;

namespace {

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  return dot / (std::sqrt(na * nb) + 1e-12);
}

void PrintNearestPois(const StTransRec& model, const Dataset& data,
                      const std::vector<float>& query, CityId city,
                      size_t top) {
  std::vector<std::pair<double, PoiId>> scored;
  for (PoiId v : data.PoisInCity(city)) {
    scored.emplace_back(Cosine(query, model.PoiEmbedding(v)), v);
  }
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<long>(
                                         std::min(top, scored.size())),
                    scored.end(), std::greater<>());
  for (size_t i = 0; i < top && i < scored.size(); ++i) {
    std::string words;
    for (WordId w : data.poi(scored[i].second).words) {
      if (!words.empty()) words += ", ";
      words += data.vocabulary().WordOf(w);
    }
    std::printf("      %.3f  poi %-5lld [%s]\n", scored[i].first,
                static_cast<long long>(scored[i].second), words.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  STTR_CHECK_OK(flags.Parse(argc, argv));
  const auto scale = synth::ParseScale(flags.GetString("scale", "tiny"));
  const auto queries =
      Split(flags.GetString("words", "park,casino,museum,sushi"), ',');

  auto world =
      synth::GenerateWorld(synth::SynthWorldConfig::FoursquareLike(scale));
  const Dataset& data = world.dataset;
  const CrossCitySplit split = MakeCrossCitySplit(data, 0);

  StTransRecConfig cfg;
  cfg.num_epochs = static_cast<size_t>(
      flags.GetInt("epochs", scale == synth::Scale::kTiny ? 5 : 8));
  StTransRec model(cfg);
  STTR_CHECK_OK(model.Fit(data, split));
  std::printf("trained %s; querying the shared word space\n\n",
              model.name().c_str());

  for (const std::string& q : queries) {
    const WordId w = data.vocabulary().IdOf(q);
    if (w < 0) {
      std::printf("'%s' is not in the vocabulary, skipping\n\n", q.c_str());
      continue;
    }
    const auto query_vec = model.WordEmbedding(w);
    std::printf("nearest POIs to word '%s':\n", q.c_str());
    for (const City& city : data.cities()) {
      std::printf("    in %s:\n", city.name.c_str());
      PrintNearestPois(model, data, query_vec, city.id, 3);
    }
    std::printf("\n");
  }
  return 0;
}
