// Quickstart: generate a synthetic crossing-city world, train ST-TransRec,
// evaluate with the paper's ranking protocol and print recommendations for
// one crossing-city test user.
//
// Usage: quickstart [--scale=tiny|small] [--epochs=N] [--seed=N]

#include <cstdio>

#include "core/st_transrec.h"
#include "data/split.h"
#include "data/synth/world_generator.h"
#include "eval/protocol.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  sttr::FlagParser flags;
  STTR_CHECK_OK(flags.Parse(argc, argv));
  const auto scale = sttr::synth::ParseScale(flags.GetString("scale", "tiny"));

  // 1. A four-city world in the shape of the Foursquare dataset.
  auto config = sttr::synth::SynthWorldConfig::FoursquareLike(scale);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 2023));
  sttr::synth::SynthWorld world = sttr::synth::GenerateWorld(config);
  const sttr::Dataset& data = world.dataset;

  const sttr::DatasetStats stats = data.ComputeStats(config.target_city);
  std::printf("world: %zu users, %zu POIs, %zu words, %zu check-ins\n",
              stats.num_users, stats.num_pois, stats.num_words,
              stats.num_checkins);
  std::printf("crossing-city: %zu users, %zu target check-ins\n",
              stats.num_crossing_users, stats.num_crossing_checkins);

  // 2. Crossing-city split: target-city check-ins of crossing users are
  //    held out as ground truth.
  const sttr::CrossCitySplit split =
      sttr::MakeCrossCitySplit(data, config.target_city);
  std::printf("split: %zu train check-ins, %zu test users\n",
              split.train.size(), split.test_users.size());

  // 3. Train the full model.
  sttr::StTransRecConfig model_cfg;
  model_cfg.num_epochs =
      static_cast<size_t>(flags.GetInt("epochs", scale == sttr::synth::Scale::kTiny ? 3 : 6));
  model_cfg.verbose = true;
  sttr::StTransRec model(model_cfg);
  sttr::Timer timer;
  STTR_CHECK_OK(model.Fit(data, split));
  std::printf("trained %s in %.1fs (final loss %.4f)\n",
              model.name().c_str(), timer.ElapsedSeconds(),
              model.loss_history().back());

  // 4. Evaluate with the paper's protocol (100 sampled negatives).
  sttr::EvalConfig eval_cfg;
  const sttr::EvalResult result =
      sttr::EvaluateRanking(data, split, model, eval_cfg);
  std::printf("\n%-8s %-10s %-10s %-10s %-10s\n", "k", "Recall", "Precision",
              "NDCG", "MAP");
  for (size_t k : eval_cfg.ks) {
    const sttr::RankingMetrics& m = result.At(k);
    std::printf("%-8zu %-10.4f %-10.4f %-10.4f %-10.4f\n", k, m.recall,
                m.precision, m.ndcg, m.map);
  }

  // 5. Show top-5 recommendations for the first test user.
  if (!split.test_users.empty()) {
    const sttr::UserId u = split.test_users.front().user;
    std::printf("\ntop-5 target-city POIs for crossing user #%lld:\n",
                static_cast<long long>(u));
    for (const auto& [poi, score] :
         model.RecommendTopK(data, split.target_city, u, 5)) {
      std::string words;
      for (sttr::WordId w : data.poi(poi).words) {
        if (!words.empty()) words += ", ";
        words += data.vocabulary().WordOf(w);
      }
      std::printf("  poi %-6lld score %.3f  [%s]\n",
                  static_cast<long long>(poi), score, words.c_str());
    }
  }
  return 0;
}
