// Bring-your-own-data workflow: export a dataset to the documented TSV
// interchange format, load it back (exactly what you would do with a
// converted real Foursquare/Yelp dump), train on the loaded copy and
// verify the evaluation matches training on the original.
//
// Usage: dataset_workflow [--dir=/tmp/sttr_dataset] [--scale=tiny]

#include <cstdio>
#include <filesystem>

#include "core/st_transrec.h"
#include "data/io.h"
#include "data/split.h"
#include "data/synth/world_generator.h"
#include "util/flags.h"

using namespace sttr;

int main(int argc, char** argv) {
  FlagParser flags;
  STTR_CHECK_OK(flags.Parse(argc, argv));
  const std::string dir = flags.GetString("dir", "/tmp/sttr_dataset");
  const auto scale = synth::ParseScale(flags.GetString("scale", "tiny"));

  std::filesystem::create_directories(dir);
  const auto paths = DatasetPaths::InDirectory(dir);

  // 1. Produce a dataset and write the interchange files.
  auto world =
      synth::GenerateWorld(synth::SynthWorldConfig::FoursquareLike(scale));
  STTR_CHECK_OK(SaveDataset(world.dataset, paths));
  std::printf("wrote %s/{cities,users,pois,checkins}.tsv\n", dir.c_str());

  // 2. Load it back as an external consumer would.
  auto loaded = LoadDataset(paths);
  STTR_CHECK(loaded.ok()) << loaded.status().ToString();
  std::printf("loaded: %zu users, %zu POIs, %zu check-ins, %zu words\n",
              loaded->num_users(), loaded->num_pois(),
              loaded->num_checkins(), loaded->vocabulary().size());

  // 3. A second round trip is an identity: the first load re-numbers word
  //    ids (unused vocabulary entries are not representable), after which
  //    the representation is a fixpoint.
  STTR_CHECK_OK(SaveDataset(*loaded, paths));
  auto reloaded = LoadDataset(paths);
  STTR_CHECK(reloaded.ok()) << reloaded.status().ToString();
  STTR_CHECK_EQ(reloaded->vocabulary().size(), loaded->vocabulary().size());
  std::printf("save(load(x)) round trip is stable (%zu words)\n",
              loaded->vocabulary().size());

  // 4. Train on the loaded copy — the normal workflow for external data.
  StTransRecConfig cfg;
  cfg.num_epochs = scale == synth::Scale::kTiny ? 3 : 8;
  EvalConfig ec;
  StTransRec model(cfg);
  const CrossCitySplit split = MakeCrossCitySplit(*loaded, 0);
  STTR_CHECK_OK(model.Fit(*loaded, split));
  const double recall =
      EvaluateRanking(*loaded, split, model, ec).At(10).recall;
  std::printf("trained on the TSV data: Recall@10 = %.4f over %zu test "
              "users\n",
              recall, split.test_users.size());
  return 0;
}
