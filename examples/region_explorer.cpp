// Region explorer: runs the spatial substrate on its own — grid indexing,
// Algorithm-1 region segmentation and density-based resampling — and prints
// a Figure-2-style report: regions found, their densities, and how the
// resampler rebalances sparse regions.
//
// Usage: region_explorer [--scale=tiny|small] [--grid=16] [--delta=0.1]
//                        [--alpha=0.1]

#include <algorithm>
#include <cstdio>

#include "data/split.h"
#include "data/synth/world_generator.h"
#include "geo/density_resampler.h"
#include "geo/grid.h"
#include "geo/region_segmentation.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace sttr;

int main(int argc, char** argv) {
  FlagParser flags;
  STTR_CHECK_OK(flags.Parse(argc, argv));
  const auto scale = synth::ParseScale(flags.GetString("scale", "small"));
  const size_t grid_n = static_cast<size_t>(flags.GetInt("grid", 16));
  const double delta = flags.GetDouble("delta", 0.1);
  const double alpha = flags.GetDouble("alpha", 0.1);

  auto world =
      synth::GenerateWorld(synth::SynthWorldConfig::FoursquareLike(scale));
  const Dataset& data = world.dataset;
  const CityId city = 0;
  std::printf("city: %s, %zu POIs\n", data.city(city).name.c_str(),
              data.PoisInCity(city).size());

  // Feed the target city's check-ins into the segmenter.
  GridIndex grid(data.city(city).box, grid_n, grid_n);
  RegionSegmenter segmenter(grid, delta);
  std::vector<int> checkin_cells;
  std::vector<PoiId> checkin_pois;
  for (const CheckinRecord& rec : data.checkins()) {
    if (rec.city != city) continue;
    const size_t cell = grid.CellOf(data.poi(rec.poi).location);
    segmenter.AddVisit(cell, rec.user);
    checkin_cells.push_back(static_cast<int>(cell));
    checkin_pois.push_back(rec.poi);
  }
  Rng rng(7);
  const RegionAssignment regions = segmenter.Segment(rng);
  std::printf("grid %zux%zu, delta=%.2f -> %zu uniformly accessible "
              "regions\n\n",
              grid_n, grid_n, delta, regions.num_regions());

  // Resample and report the density distribution before/after.
  std::vector<size_t> region_sizes(regions.num_regions());
  for (size_t r = 0; r < regions.num_regions(); ++r) {
    region_sizes[r] = regions.region_cells[r].size();
  }
  std::vector<int> checkin_regions(checkin_cells.size());
  for (size_t i = 0; i < checkin_cells.size(); ++i) {
    checkin_regions[i] =
        regions.cell_to_region[static_cast<size_t>(checkin_cells[i])];
  }
  DensityResampler resampler(region_sizes, checkin_regions, checkin_pois);

  // Top regions by raw check-ins.
  std::vector<size_t> order(regions.num_regions());
  for (size_t r = 0; r < order.size(); ++r) order[r] = r;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return resampler.stats()[a].num_checkins >
           resampler.stats()[b].num_checkins;
  });

  TextTable table({"region", "cells", "check-ins", "density", "deficit",
                   "P(draw region)"});
  for (size_t i = 0; i < order.size() && i < 10; ++i) {
    const size_t r = order[i];
    const RegionDensity& s = resampler.stats()[r];
    if (s.num_checkins == 0) continue;
    table.AddRow({std::to_string(r), std::to_string(s.num_cells),
                  std::to_string(s.num_checkins),
                  StrFormat("%.1f", s.density), std::to_string(s.deficit),
                  StrFormat("%.3f", resampler.RegionProbability(r))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("max density rho* = %.1f; total deficit sum n'_r = %zu\n",
              resampler.max_density(), resampler.TotalDeficit());

  const auto extra = resampler.SampleExtra(alpha, rng);
  std::printf("alpha=%.2f -> %zu synthetic check-ins drawn (Eq. 9)\n",
              alpha, extra.size());

  // Verify the rebalancing direction: the share of draws landing in
  // below-median-density regions should exceed their raw share.
  size_t extra_sparse = 0;
  std::vector<double> densities;
  for (const auto& s : resampler.stats()) {
    if (s.num_checkins > 0) densities.push_back(s.density);
  }
  std::nth_element(densities.begin(),
                   densities.begin() + densities.size() / 2,
                   densities.end());
  const double median = densities[densities.size() / 2];
  std::vector<char> poi_in_sparse(data.num_pois(), 0);
  for (size_t i = 0; i < checkin_pois.size(); ++i) {
    const auto& s = resampler.stats()[static_cast<size_t>(
        checkin_regions[i])];
    if (s.density <= median) {
      poi_in_sparse[static_cast<size_t>(checkin_pois[i])] = 1;
    }
  }
  for (int64_t v : extra) extra_sparse += poi_in_sparse[static_cast<size_t>(v)];
  if (!extra.empty()) {
    std::printf("%.0f%% of the synthetic draws land in below-median-density "
                "regions\n",
                100.0 * static_cast<double>(extra_sparse) /
                    static_cast<double>(extra.size()));
  }
  return 0;
}
