// Model persistence: train ST-TransRec once, save the parameters to disk,
// restore them into a fresh model and verify the two produce identical
// scores — the deploy-without-retraining workflow.
//
// Usage: save_load_models [--scale=tiny] [--path=/tmp/st_transrec.bin]

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/st_transrec.h"
#include "data/split.h"
#include "data/synth/world_generator.h"
#include "util/flags.h"

using namespace sttr;

int main(int argc, char** argv) {
  FlagParser flags;
  STTR_CHECK_OK(flags.Parse(argc, argv));
  const auto scale = synth::ParseScale(flags.GetString("scale", "tiny"));
  const std::string path =
      flags.GetString("path", "/tmp/st_transrec_params.bin");

  auto world =
      synth::GenerateWorld(synth::SynthWorldConfig::FoursquareLike(scale));
  const CrossCitySplit split = MakeCrossCitySplit(world.dataset, 0);

  StTransRecConfig cfg;
  cfg.num_epochs = scale == synth::Scale::kTiny ? 3 : 8;

  // Train and save.
  StTransRec trained(cfg);
  STTR_CHECK_OK(trained.Fit(world.dataset, split));
  {
    std::ofstream out(path, std::ios::binary);
    STTR_CHECK(out.good()) << "cannot open " << path;
    STTR_CHECK_OK(trained.Save(out));
  }
  std::printf("saved trained parameters to %s\n", path.c_str());

  // Restore into a fresh model (same config + data, no training).
  StTransRec restored(cfg);
  STTR_CHECK_OK(restored.Prepare(world.dataset, split));
  {
    std::ifstream in(path, std::ios::binary);
    STTR_CHECK_OK(restored.Load(in));
  }

  // Verify identical scoring.
  double max_diff = 0;
  const UserId u = split.test_users.front().user;
  for (PoiId v : world.dataset.PoisInCity(0)) {
    max_diff = std::max(max_diff,
                        std::fabs(trained.Score(u, v) - restored.Score(u, v)));
  }
  std::printf("max |score(trained) - score(restored)| over %zu POIs: %.2e\n",
              world.dataset.PoisInCity(0).size(), max_diff);
  STTR_CHECK_LT(max_diff, 1e-12);
  std::printf("round trip OK: the restored model is bit-identical\n");
  return 0;
}
