// Model persistence: train ST-TransRec once, save the parameters to disk,
// restore them into a fresh model and verify the two produce identical
// scores — the deploy-without-retraining workflow. Part two demonstrates
// crash-safe checkpointing: a training run "killed" halfway is resumed from
// its checkpoint directory and lands on exactly the same model as a run
// that was never interrupted.
//
// Usage: save_load_models [--scale=tiny] [--path=/tmp/st_transrec.bin]
//                         [--ckpt_dir=/tmp/st_transrec_ckpt]

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/st_transrec.h"
#include "data/split.h"
#include "data/synth/world_generator.h"
#include "util/flags.h"

using namespace sttr;

int main(int argc, char** argv) {
  FlagParser flags;
  STTR_CHECK_OK(flags.Parse(argc, argv));
  const auto scale = synth::ParseScale(flags.GetString("scale", "tiny"));
  const std::string path =
      flags.GetString("path", "/tmp/st_transrec_params.bin");

  auto world =
      synth::GenerateWorld(synth::SynthWorldConfig::FoursquareLike(scale));
  const CrossCitySplit split = MakeCrossCitySplit(world.dataset, 0);

  StTransRecConfig cfg;
  cfg.num_epochs = scale == synth::Scale::kTiny ? 3 : 8;

  // Train and save.
  StTransRec trained(cfg);
  STTR_CHECK_OK(trained.Fit(world.dataset, split));
  {
    std::ofstream out(path, std::ios::binary);
    STTR_CHECK(out.good()) << "cannot open " << path;
    STTR_CHECK_OK(trained.Save(out));
  }
  std::printf("saved trained parameters to %s\n", path.c_str());

  // Restore into a fresh model (same config + data, no training).
  StTransRec restored(cfg);
  STTR_CHECK_OK(restored.Prepare(world.dataset, split));
  {
    std::ifstream in(path, std::ios::binary);
    STTR_CHECK_OK(restored.Load(in));
  }

  // Verify identical scoring.
  double max_diff = 0;
  const UserId u = split.test_users.front().user;
  for (PoiId v : world.dataset.PoisInCity(0)) {
    max_diff = std::max(max_diff,
                        std::fabs(trained.Score(u, v) - restored.Score(u, v)));
  }
  std::printf("max |score(trained) - score(restored)| over %zu POIs: %.2e\n",
              world.dataset.PoisInCity(0).size(), max_diff);
  STTR_CHECK_LT(max_diff, 1e-12);
  std::printf("round trip OK: the restored model is bit-identical\n");

  // -- Crash-safe checkpointing ---------------------------------------------
  // Simulate a crash: train the same config with checkpointing on but an
  // epoch budget cut in half, then Resume() a fresh model from the
  // checkpoint directory with the full budget. The resumed model restores
  // parameters, optimizer moments, RNG streams and loss history, so it
  // finishes on the same trajectory as `trained`.
  const std::string ckpt_dir =
      flags.GetString("ckpt_dir", "/tmp/st_transrec_ckpt");
  auto killed_cfg = cfg;
  killed_cfg.num_epochs = cfg.num_epochs / 2;
  killed_cfg.checkpoint_dir = ckpt_dir;
  StTransRec killed(killed_cfg);
  STTR_CHECK_OK(killed.Fit(world.dataset, split));
  std::printf("\n\"crashed\" after %zu/%zu epochs; checkpoints in %s\n",
              killed.loss_history().size(), cfg.num_epochs, ckpt_dir.c_str());

  auto resume_cfg = cfg;
  resume_cfg.checkpoint_dir = ckpt_dir;
  StTransRec resumed(resume_cfg);
  STTR_CHECK_OK(resumed.Resume(world.dataset, split));
  std::printf("resumed and trained the remaining %zu epochs\n",
              cfg.num_epochs - killed_cfg.num_epochs);

  double resume_diff = 0;
  for (PoiId v : world.dataset.PoisInCity(0)) {
    resume_diff = std::max(
        resume_diff, std::fabs(trained.Score(u, v) - resumed.Score(u, v)));
  }
  std::printf("max |score(uninterrupted) - score(resumed)|: %.2e\n",
              resume_diff);
  STTR_CHECK_LT(resume_diff, 1e-12);
  std::printf("kill-and-resume OK: identical to the uninterrupted run\n");
  return 0;
}
